"""Processor model, stream descriptors, and benchmark kernels."""

from repro.cpu.kernels import (
    COPY,
    DAXPY,
    DOT,
    FILL,
    FIR4,
    STENCIL3,
    HYDRO,
    KERNELS,
    PAPER_KERNELS,
    SCALE,
    SWAP,
    TRIAD,
    VAXPY,
    Kernel,
    get_kernel,
)
from repro.cpu.processor import MATCHED_ACCESS_INTERVAL, StreamProcessor
from repro.cpu.streams import (
    Alignment,
    Direction,
    StreamDescriptor,
    StreamSpec,
    place_streams,
)

__all__ = [
    "COPY",
    "DAXPY",
    "DOT",
    "FILL",
    "FIR4",
    "STENCIL3",
    "HYDRO",
    "KERNELS",
    "PAPER_KERNELS",
    "SCALE",
    "SWAP",
    "TRIAD",
    "VAXPY",
    "Kernel",
    "get_kernel",
    "MATCHED_ACCESS_INTERVAL",
    "StreamProcessor",
    "Alignment",
    "Direction",
    "StreamDescriptor",
    "StreamSpec",
    "place_streams",
]
