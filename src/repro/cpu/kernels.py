"""Benchmark kernels (Figure 4 of the paper, plus extras).

Each kernel declares the streams its inner loop touches, in the order
the processor touches them each iteration.  The paper's four kernels:

* ``copy``  — y[i] <- x[i]                       (1 read, 1 write)
* ``daxpy`` — y[i] <- a*x[i] + y[i]              (2 reads, 1 write; y is
  read-modify-write, so its read- and write-streams share a vector)
* ``hydro`` — x[i] <- q + y[i]*(r*zx[i+10] + t*zx[i+11])  (3 reads,
  1 write; following Section 4.1 the two offset zx accesses are modeled
  as two independent equal-length read-streams)
* ``vaxpy`` — y[i] <- a[i]*x[i] + y[i]           (3 reads, 1 write)

Extras beyond the paper (used by examples and ablation benches):
``fill``, ``scale``, ``swap``, ``dot``, ``triad`` (STREAM-style),
``fir4`` and ``stencil3`` (multi-offset reads over one vector, the
access shape the compiler front end emits for filters and stencils).
Scalar operands (the a, q, r, t constants) live in registers and
generate no memory traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from repro.errors import StreamError
from repro.cpu.streams import Direction, StreamSpec


@dataclass(frozen=True)
class Kernel:
    """An inner loop, described by its per-iteration stream accesses.

    Attributes:
        name: Kernel name.
        expression: Human-readable statement of the loop body.
        streams: Streams in the order the processor accesses them each
            iteration (reads in operand order, then writes).
    """

    name: str
    expression: str
    streams: Tuple[StreamSpec, ...]

    def __post_init__(self) -> None:
        names = [s.name for s in self.streams]
        if len(set(names)) != len(names):
            raise StreamError(f"kernel {self.name}: duplicate stream names")
        if not self.streams:
            raise StreamError(f"kernel {self.name}: no streams")

    @property
    def num_read_streams(self) -> int:
        """The paper's s_r."""
        return sum(1 for s in self.streams if s.direction is Direction.READ)

    @property
    def num_write_streams(self) -> int:
        """The paper's s_w."""
        return sum(1 for s in self.streams if s.direction is Direction.WRITE)

    @property
    def num_streams(self) -> int:
        """The paper's s = s_r + s_w."""
        return len(self.streams)

    def access_order(self, length: int) -> Iterator[Tuple[int, StreamSpec]]:
        """Yield (iteration, stream) pairs in natural program order."""
        for i in range(length):
            for spec in self.streams:
                yield i, spec


def _rd(name: str, vector: str = "") -> StreamSpec:
    return StreamSpec(name=name, vector=vector or name, direction=Direction.READ)


def _wr(name: str, vector: str = "") -> StreamSpec:
    return StreamSpec(name=name, vector=vector or name, direction=Direction.WRITE)


COPY = Kernel(
    name="copy",
    expression="y[i] <- x[i]",
    streams=(_rd("x"), _wr("y")),
)

DAXPY = Kernel(
    name="daxpy",
    expression="y[i] <- a*x[i] + y[i]",
    streams=(_rd("x"), _rd("y.rd", "y"), _wr("y.wr", "y")),
)

HYDRO = Kernel(
    name="hydro",
    expression="x[i] <- q + y[i]*(r*zx[i+10] + t*zx[i+11])",
    streams=(_rd("zx10"), _rd("zx11"), _rd("y"), _wr("x")),
)

VAXPY = Kernel(
    name="vaxpy",
    expression="y[i] <- a[i]*x[i] + y[i]",
    streams=(_rd("a"), _rd("x"), _rd("y.rd", "y"), _wr("y.wr", "y")),
)

FILL = Kernel(
    name="fill",
    expression="y[i] <- c",
    streams=(_wr("y"),),
)

SCALE = Kernel(
    name="scale",
    expression="x[i] <- a*x[i]",
    streams=(_rd("x.rd", "x"), _wr("x.wr", "x")),
)

SWAP = Kernel(
    name="swap",
    expression="x[i] <-> y[i]",
    streams=(_rd("x.rd", "x"), _rd("y.rd", "y"), _wr("x.wr", "x"), _wr("y.wr", "y")),
)

DOT = Kernel(
    name="dot",
    expression="s <- s + x[i]*y[i]",
    streams=(_rd("x"), _rd("y")),
)

TRIAD = Kernel(
    name="triad",
    expression="z[i] <- x[i] + a*y[i]",
    streams=(_rd("x"), _rd("y"), _wr("z")),
)

FIR4 = Kernel(
    name="fir4",
    expression="y[i] <- c0*x[i] + c1*x[i+1] + c2*x[i+2] + c3*x[i+3]",
    streams=(
        StreamSpec("x+0", "x", Direction.READ, offset=0),
        StreamSpec("x+1", "x", Direction.READ, offset=1),
        StreamSpec("x+2", "x", Direction.READ, offset=2),
        StreamSpec("x+3", "x", Direction.READ, offset=3),
        _wr("y"),
    ),
)

STENCIL3 = Kernel(
    name="stencil3",
    expression="u[i] <- a*v[i] + b*v[i+1] + c*v[i+2]",
    streams=(
        StreamSpec("v+0", "v", Direction.READ, offset=0),
        StreamSpec("v+1", "v", Direction.READ, offset=1),
        StreamSpec("v+2", "v", Direction.READ, offset=2),
        _wr("u"),
    ),
)

#: The paper's benchmark suite (Figure 4), in presentation order.
PAPER_KERNELS: Dict[str, Kernel] = {
    k.name: k for k in (COPY, DAXPY, HYDRO, VAXPY)
}

#: All kernels shipped with the library.
KERNELS: Dict[str, Kernel] = {
    k.name: k
    for k in (
        COPY, DAXPY, HYDRO, VAXPY, FILL, SCALE, SWAP, DOT, TRIAD,
        FIR4, STENCIL3,
    )
}


def get_kernel(name: str) -> Kernel:
    """Look up a kernel by name.

    Raises:
        StreamError: If no kernel with that name exists.
    """
    try:
        return KERNELS[name]
    except KeyError:
        raise StreamError(
            f"unknown kernel {name!r}; available: {sorted(KERNELS)}"
        ) from None
