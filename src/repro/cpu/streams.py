"""Stream (vector) descriptors and data placement.

A *stream* is the unit the SMC schedules: a base address, a stride (in
64-bit elements), a length, and a direction.  Following the paper's
footnote, a read-modify-write vector constitutes two streams — a
read-stream and a write-stream over the same addresses — so kernels
tag each stream with the *vector* it traverses and placement assigns
one base per vector.

Placement implements the two layouts Section 4.2 simulates:

* **aligned** — every vector's base maps to the same RDRAM bank, the
  worst case: the MSU incurs a bank conflict whenever it switches
  FIFOs.
* **staggered** — bases are offset so vectors start in different,
  maximally separated banks (vector *k* of *n* starts at bank
  ``k * num_banks // n``), the favorable case.

Section 4.1's assumptions are honored: vectors are aligned to
cacheline boundaries, are a multiple of the cacheline size in length,
and distinct vectors share no DRAM pages (each vector gets its own
bank-aligned region).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.errors import ConfigurationError, StreamError
from repro.memsys.config import ELEMENT_BYTES, Interleaving, MemorySystemConfig


class Direction(enum.Enum):
    """Whether the processor reads or writes a stream."""

    READ = "read"
    WRITE = "write"


class Alignment(enum.Enum):
    """Relative placement of vector base addresses (Section 4.2)."""

    ALIGNED = "aligned"
    STAGGERED = "staggered"


@dataclass(frozen=True)
class StreamSpec:
    """A stream as declared by a kernel, before placement.

    A subscript of the form ``v[s*i + c]`` in the loop body becomes a
    stream over vector ``v`` with ``stride_factor`` s and ``offset`` c;
    the hand-written paper kernels all use the default s=1, c=0 (the
    Section 4.1 simplification), while the compiler front end emits
    the general form (e.g. hydro's ``zx[i+10]`` / ``zx[i+11]``).

    Attributes:
        name: Unique stream name within the kernel (e.g. ``"y.rd"``).
        vector: Vector identifier; streams sharing a vector share a
            base address (read-modify-write, offset reads).
        direction: READ or WRITE.
        offset: Constant element offset from the vector base (c).
        stride_factor: Index coefficient (s); the placed stream's
            stride is ``s`` times the computation's stride.
    """

    name: str
    vector: str
    direction: Direction
    offset: int = 0
    stride_factor: int = 1


@dataclass(frozen=True)
class StreamDescriptor:
    """A placed stream: what the compiler transmits to the SMC.

    This is the run-time information Section 3 describes the compiler
    sending to the hardware: base address, stride, number of elements,
    and whether the stream is read or written.

    Attributes:
        name: Stream name.
        base: Byte address of element 0; must be element-aligned.
        stride: Distance between consecutive elements, in 64-bit words.
        length: Number of elements.
        direction: READ or WRITE.
    """

    name: str
    base: int
    stride: int
    length: int
    direction: Direction

    def __post_init__(self) -> None:
        if self.base % ELEMENT_BYTES:
            raise StreamError(
                f"stream {self.name}: base {self.base:#x} not aligned to "
                f"{ELEMENT_BYTES}-byte elements"
            )
        if self.stride <= 0:
            raise StreamError(f"stream {self.name}: stride must be positive")
        if self.length <= 0:
            raise StreamError(f"stream {self.name}: length must be positive")

    def element_address(self, index: int) -> int:
        """Byte address of element ``index``.

        Raises:
            StreamError: If ``index`` is outside the stream.
        """
        if not 0 <= index < self.length:
            raise StreamError(
                f"stream {self.name}: element {index} outside 0..{self.length - 1}"
            )
        return self.base + index * self.stride * ELEMENT_BYTES

    @property
    def footprint_bytes(self) -> int:
        """Bytes from the base through the last element, inclusive."""
        return ((self.length - 1) * self.stride + 1) * ELEMENT_BYTES

    @property
    def is_read(self) -> bool:
        return self.direction is Direction.READ


def place_streams(
    specs: Iterable[StreamSpec],
    config: MemorySystemConfig,
    length: int,
    stride: int = 1,
    alignment: Alignment = Alignment.STAGGERED,
) -> List[StreamDescriptor]:
    """Assign base addresses to a kernel's streams.

    Each distinct vector receives a region aligned to a full
    bank-rotation boundary (num_banks * page_bytes), guaranteeing that
    distinct vectors share no pages.  ALIGNED placement leaves every
    base at the start of its region (all in bank 0); STAGGERED offsets
    vector *k* by *k* interleave units (cachelines for CLI, pages for
    PI) so consecutive vectors begin in different banks.

    Args:
        specs: Stream declarations in kernel order.
        config: Memory-system configuration (supplies the address map
            granularities and capacity check).
        length: Elements per stream.
        stride: Stride in elements, shared by all streams (Section 4.1
            models all vectors with equal stride, length and size).
        alignment: ALIGNED or STAGGERED placement.

    Returns:
        Placed descriptors, in the order of ``specs``.

    Raises:
        ConfigurationError: If the placement exceeds device capacity.
    """
    specs = list(specs)
    num_banks = config.geometry.num_banks
    rotation = num_banks * config.geometry.page_bytes
    max_factor = max((spec.stride_factor for spec in specs), default=1)
    max_offset = max((spec.offset for spec in specs), default=0)
    footprint = (
        (length - 1) * stride * max_factor + max_offset + 1
    ) * ELEMENT_BYTES
    if config.interleaving is Interleaving.CACHELINE:
        stagger_unit = config.cacheline_bytes
    else:
        stagger_unit = config.geometry.page_bytes
    num_vectors = len({spec.vector for spec in specs})
    max_stagger = stagger_unit * (num_banks - 1)
    region = -(-(footprint + max_stagger) // rotation) * rotation

    def stagger(index: int) -> int:
        """Offset spreading vector bases evenly across the banks."""
        if alignment is Alignment.ALIGNED:
            return 0
        return (index * num_banks // num_vectors) * stagger_unit

    vectors: Dict[str, int] = {}
    for spec in specs:
        if spec.vector not in vectors:
            index = len(vectors)
            vectors[spec.vector] = index * region + stagger(index)

    total = len(vectors) * region
    if total > config.geometry.capacity_bytes:
        raise ConfigurationError(
            f"placement needs {total} bytes but the device holds "
            f"{config.geometry.capacity_bytes}"
        )

    return [
        StreamDescriptor(
            name=spec.name,
            base=vectors[spec.vector] + spec.offset * stride * ELEMENT_BYTES,
            stride=stride * spec.stride_factor,
            length=length,
            direction=spec.direction,
        )
        for spec in specs
    ]
