"""In-order, bandwidth-matched processor model.

Section 4.1: "We model the processor as a generator of only loads and
stores of stream elements.  All non-stream accesses are assumed to hit
in cache, and all computation is assumed to be infinitely fast." and
"the CPU can consume data items at the memory's maximum rate of
supply".

The processor walks the kernel's accesses in natural program order —
one element of each stream per iteration — and can complete one 64-bit
element access every ``access_interval`` interface-clock cycles.  At
the Direct RDRAM peak of 4 bytes/cycle, an 8-byte element every 2
cycles exactly matches peak bandwidth.  A read retires by popping the
head of the corresponding FIFO (the memory-mapped head register of
Section 3); a write retires by pushing into the write FIFO.  If the
FIFO is not ready, the processor stalls and retries every cycle.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Tuple

from repro.cpu.kernels import Kernel
from repro.cpu.streams import Direction
from repro.obs.core import Instrumentation

#: Cycles per element access at which CPU bandwidth equals the memory's
#: peak bandwidth (8-byte element / 4 bytes-per-cycle).
MATCHED_ACCESS_INTERVAL = 2


class StreamPort(Protocol):
    """What the processor needs from the stream buffer unit."""

    def cpu_can_pop(self, stream_index: int) -> bool:
        """True if the head of the read FIFO holds valid data."""

    def cpu_pop(self, stream_index: int) -> None:
        """Dequeue one element from a read FIFO."""

    def cpu_can_push(self, stream_index: int) -> bool:
        """True if the write FIFO can accept one element."""

    def cpu_push(self, stream_index: int) -> None:
        """Enqueue one element into a write FIFO."""


class StreamProcessor:
    """Generates the kernel's element accesses in natural order.

    Args:
        kernel: The inner loop being executed.
        length: Vector length in elements (the paper's L_s).
        access_interval: Minimum cycles between successive element
            accesses; 2 models the paper's matched-bandwidth CPU.
    """

    def __init__(
        self,
        kernel: Kernel,
        length: int,
        access_interval: int = MATCHED_ACCESS_INTERVAL,
    ) -> None:
        self.kernel = kernel
        self.length = length
        self.access_interval = access_interval
        self._schedule: List[Tuple[int, Direction]] = [
            (stream_index, spec.direction)
            for __ in range(length)
            for stream_index, spec in enumerate(kernel.streams)
        ]
        self._position = 0
        self._next_attempt = 0
        self._blocked_since: Optional[int] = None
        self.stall_cycles = 0
        self.first_element_cycle: Optional[int] = None
        self.last_retire_cycle: Optional[int] = None
        #: Optional instrumentation; records retire counters and one
        #: "cpu" span per blocked interval (a FIFO-not-ready stall).
        self.obs: Optional[Instrumentation] = None

    @property
    def done(self) -> bool:
        """True once every access in the loop has retired."""
        return self._position >= len(self._schedule)

    @property
    def accesses_retired(self) -> int:
        """Element accesses completed so far."""
        return self._position

    def tick(self, cycle: int, port: StreamPort) -> bool:
        """Attempt to retire the next access at ``cycle``.

        The processor retires at most one element access per call and
        honors the pacing interval.  A blocked access is retried on
        every visited cycle; blocked spans are accumulated into
        :attr:`stall_cycles` from the cycle the block began, so the
        count is exact even when the simulation engine skips over
        cycles in which no component can act.

        Returns:
            True if an access retired this cycle.
        """
        if self.done or cycle < self._next_attempt:
            return False
        stream_index, direction = self._schedule[self._position]
        if direction is Direction.READ:
            ready = port.cpu_can_pop(stream_index)
        else:
            ready = port.cpu_can_push(stream_index)
        if not ready:
            if self._blocked_since is None:
                self._blocked_since = cycle
            return False
        if self._blocked_since is not None:
            self.stall_cycles += cycle - self._blocked_since
            if self.obs is not None and cycle > self._blocked_since:
                self.obs.tracer.add_span(
                    "cpu",
                    "stall:read"
                    if direction is Direction.READ
                    else "stall:write",
                    self._blocked_since,
                    cycle,
                    stream=stream_index,
                )
            self._blocked_since = None
        if direction is Direction.READ:
            port.cpu_pop(stream_index)
        else:
            port.cpu_push(stream_index)
        if self.obs is not None:
            self.obs.counters.incr("cpu.retires")
        if self.first_element_cycle is None:
            self.first_element_cycle = cycle
        self.last_retire_cycle = cycle
        self._position += 1
        self._next_attempt = cycle + self.access_interval
        return True

    @property
    def next_attempt_cycle(self) -> Optional[int]:
        """Next cycle at which the processor can act on its own, or
        None when it is blocked (it must be woken by a FIFO change) or
        done."""
        if self.done or self._blocked_since is not None:
            return None
        return self._next_attempt
