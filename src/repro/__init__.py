"""repro — reproduction of "Access Order and Effective Bandwidth for
Streams on a Direct Rambus Memory" (Hong, McKee, Salinas, Klenke,
Aylor, Wulf; HPCA 1999).

The package models a single Direct RDRAM device at the cycle level,
two memory organizations (cacheline-interleaved/closed-page and
page-interleaved/open-page), a traditional natural-order cacheline
controller, and the paper's Stream Memory Controller (SMC), together
with the analytic performance bounds of Section 5 and an experiment
harness regenerating every table and figure.

Quickstart::

    from repro import RunSpec, simulate
    spec = RunSpec(kernel="daxpy", organization="pi",
                   length=1024, fifo_depth=64)
    print(simulate(spec).percent_of_peak)

:func:`simulate` is the single simulation entry point.  It runs on a
selectable engine — ``engine="event"`` (the discrete-event kernel),
``"batch"`` (a bit-identical vectorized fast path), or ``"auto"`` (the
default: batch whenever the spec supports it).  ``simulate_kernel`` is
a deprecated keyword-style wrapper kept for existing callers.
"""

from repro.cache import (
    CacheConfig,
    CacheModel,
    CachedNaturalOrderController,
)
from repro.compiler import (
    choose_fifo_depth,
    compile_loop,
    detect_streams,
    simulate_loop,
)
from repro.analytic import (
    CacheBound,
    SmcBound,
    natural_order_bound,
    single_stream_fill_bound,
    smc_bound,
)
from repro.core import (
    IndexedStreamDescriptor,
    build_gather_system,
    simulate_gather,
    BankAwarePolicy,
    MemorySchedulingUnit,
    RoundRobinPolicy,
    SchedulingPolicy,
    SmcSystem,
    SpeculativePrechargePolicy,
    StreamBufferUnit,
    build_smc_system,
)
from repro.cpu import (
    KERNELS,
    PAPER_KERNELS,
    Alignment,
    Direction,
    Kernel,
    StreamDescriptor,
    StreamProcessor,
    get_kernel,
    place_streams,
)
from repro.errors import (
    CompileError,
    ConfigurationError,
    ExecutionError,
    ObservabilityError,
    ProtocolError,
    ReproError,
    SchedulingError,
    StreamError,
)
from repro.memsys import (
    AddressMap,
    Interleaving,
    Location,
    MemorySystemConfig,
    PagePolicy,
)
from repro.fpm import FpmMemorySystem, run_fpm
from repro.obs import Instrumentation, StallAttribution, attribute_stalls
from repro.naturalorder import NaturalOrderController
from repro.rdram import (
    ChannelGeometry,
    RambusChannel,
    RefreshEngine,
    make_memory,
    DRAM_FAMILIES,
    PEAK_BANDWIDTH_BYTES_PER_SEC,
    RdramDevice,
    RdramGeometry,
    RdramTiming,
    audit_trace,
)
from repro.sim import (
    ENGINES,
    EventScheduler,
    ResultBuilder,
    RunSpec,
    Simulation,
    SimulationResult,
    Sweep,
    TraceMetrics,
    bank_imbalance,
    default_engine,
    list_engines,
    measure_trace,
    pivot,
    run_smc,
    set_default_engine,
    simulate,
    simulate_kernel,
    sweep,
)
from repro.exec import ResultCache, execution, run_specs
from repro.experiments.registry import get_experiment, list_experiments

__version__ = "1.0.0"

__all__ = [
    "CacheConfig",
    "CacheModel",
    "CachedNaturalOrderController",
    "choose_fifo_depth",
    "compile_loop",
    "detect_streams",
    "simulate_loop",
    "CacheBound",
    "SmcBound",
    "natural_order_bound",
    "single_stream_fill_bound",
    "smc_bound",
    "IndexedStreamDescriptor",
    "build_gather_system",
    "simulate_gather",
    "BankAwarePolicy",
    "MemorySchedulingUnit",
    "RoundRobinPolicy",
    "SchedulingPolicy",
    "SmcSystem",
    "SpeculativePrechargePolicy",
    "StreamBufferUnit",
    "build_smc_system",
    "KERNELS",
    "PAPER_KERNELS",
    "Alignment",
    "Direction",
    "Kernel",
    "StreamDescriptor",
    "StreamProcessor",
    "get_kernel",
    "place_streams",
    "CompileError",
    "ConfigurationError",
    "ExecutionError",
    "ObservabilityError",
    "ProtocolError",
    "ReproError",
    "SchedulingError",
    "StreamError",
    "AddressMap",
    "Interleaving",
    "Location",
    "MemorySystemConfig",
    "PagePolicy",
    "FpmMemorySystem",
    "run_fpm",
    "Instrumentation",
    "StallAttribution",
    "attribute_stalls",
    "NaturalOrderController",
    "ChannelGeometry",
    "RambusChannel",
    "RefreshEngine",
    "make_memory",
    "DRAM_FAMILIES",
    "PEAK_BANDWIDTH_BYTES_PER_SEC",
    "RdramDevice",
    "RdramGeometry",
    "RdramTiming",
    "audit_trace",
    "ENGINES",
    "EventScheduler",
    "ResultBuilder",
    "RunSpec",
    "Simulation",
    "SimulationResult",
    "Sweep",
    "TraceMetrics",
    "bank_imbalance",
    "default_engine",
    "list_engines",
    "measure_trace",
    "pivot",
    "run_smc",
    "set_default_engine",
    "simulate",
    "simulate_kernel",
    "sweep",
    "ResultCache",
    "execution",
    "run_specs",
    "get_experiment",
    "list_experiments",
    "__version__",
]
