"""The shared name -> entry registry behind every policy table.

The address-mapping, page-policy, engine, and scheduler registries all
follow the same protocol: entries register under a short name, callers
test membership and look entries up like a dict, listings come back
sorted (or in registration order for ordered registries like the
engines), and resolving an unknown name raises a
:class:`~repro.errors.ConfigurationError` that enumerates what *is*
registered.  This module is the single implementation of that
protocol; the per-kind modules instantiate it with their historical
error-message spellings so existing callers (and tests matching those
messages) see no change:

    >>> from repro.registry import Registry
    >>> WIDGETS: Registry[type] = Registry("widget")
    >>> @WIDGETS.register
    ... class Frob:
    ...     name = "frob"
    >>> "frob" in WIDGETS and WIDGETS["frob"] is Frob
    True

Class entries register through :meth:`Registry.register` (a decorator
reading the class's ``name`` attribute); value entries — the engine
registry maps names to description strings — through
:meth:`Registry.add`.  A registry equals the tuple of its names in
registration order, preserving the historical ``ENGINES ==
("event", "batch", "auto")`` contract.
"""

from __future__ import annotations

from typing import (
    Dict,
    Generic,
    Iterator,
    List,
    Optional,
    Tuple,
    TypeVar,
)

from repro.errors import ConfigurationError

E = TypeVar("E")


class Registry(Generic[E]):
    """One named policy table: an ordered name -> entry mapping.

    Args:
        kind: Human-readable entry kind ("address mapping", "page
            policy", ...), used in duplicate-registration errors.
        class_label: Spelling used when a registered class lacks a
            usable name (defaults to ``"{kind} class"``).
        unknown_template: :meth:`unknown_error` message template with
            ``{name}`` (the offending spelling) and ``{names}`` (the
            registered names, joined) placeholders.
        default_name: The base class's placeholder name; registering
            a class still carrying it (or no name at all) is an error.
        sort_listing: Whether :meth:`names` (and the ``{names}`` in
            :meth:`unknown_error`) sort alphabetically; ordered
            registries (the engines) keep registration order instead.
    """

    def __init__(
        self,
        kind: str,
        *,
        class_label: Optional[str] = None,
        unknown_template: Optional[str] = None,
        default_name: str = "base",
        sort_listing: bool = True,
    ) -> None:
        self.kind = kind
        self.class_label = class_label or f"{kind} class"
        self.default_name = default_name
        self.sort_listing = sort_listing
        self._unknown_template = unknown_template or (
            "unknown " + kind + " {name!r}; registered: {names}"
        )
        self._entries: Dict[str, E] = {}

    # -- mapping protocol ----------------------------------------------
    # Iteration and membership are over *names*, in registration
    # order, exactly as the historical plain-dict registries behaved.

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __getitem__(self, name: str) -> E:
        # KeyError (not ConfigurationError) on a miss: historical
        # callers wrap lookups in try/except KeyError to attach their
        # own error message; resolve() raises the friendly error.
        return self._entries[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Registry):
            return self._entries == other._entries
        if isinstance(other, (tuple, list)):
            return tuple(self._entries) == tuple(other)
        return NotImplemented

    # Registries are mutable singletons; identity hashing keeps them
    # usable as dict keys (e.g. in test parametrization) despite the
    # sequence-comparing __eq__.
    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Registry({self.kind!r}, names={list(self._entries)})"

    def get(self, name: str, default: Optional[E] = None) -> Optional[E]:
        """The entry under ``name``, or ``default``."""
        return self._entries.get(name, default)

    def keys(self) -> Tuple[str, ...]:
        """Registered names, in registration order."""
        return tuple(self._entries)

    def values(self) -> Tuple[E, ...]:
        """Registered entries, in registration order."""
        return tuple(self._entries.values())

    def items(self) -> Tuple[Tuple[str, E], ...]:
        """(name, entry) pairs, in registration order."""
        return tuple(self._entries.items())

    def names(self) -> List[str]:
        """Registered names for listings (sorted unless ordered)."""
        if self.sort_listing:
            return sorted(self._entries)
        return list(self._entries)

    # -- registration ---------------------------------------------------

    def add(self, name: str, entry: E) -> E:
        """Register ``entry`` under an explicit ``name``.

        Raises:
            ConfigurationError: If the name is empty, the default
                placeholder, or already registered.
        """
        if not name or name == self.default_name:
            raise ConfigurationError(
                f"{self.class_label} {type(entry).__name__} needs a "
                "non-default name"
            )
        if name in self._entries:
            raise ConfigurationError(
                f"{self.kind} {name!r} registered twice"
            )
        self._entries[name] = entry
        return entry

    def register(self, cls: E) -> E:
        """Class decorator registering ``cls`` under its ``name``."""
        name = getattr(cls, "name", None)
        if not name or name == self.default_name:
            raise ConfigurationError(
                f"{self.class_label} "
                f"{getattr(cls, '__name__', type(cls).__name__)} "
                "needs a non-default name"
            )
        if name in self._entries:
            raise ConfigurationError(
                f"{self.kind} {name!r} registered twice"
            )
        self._entries[name] = cls
        return cls

    # -- resolution -----------------------------------------------------

    def resolve(self, name: str) -> E:
        """The entry under ``name``, or the kind's unknown-name error.

        Raises:
            ConfigurationError: If nothing is registered under
                ``name`` (the message lists the registered names).
        """
        try:
            return self._entries[name]
        except KeyError:
            raise self.unknown_error(name) from None

    def unknown_error(self, name: object) -> ConfigurationError:
        """The error a miss on ``name`` should raise (not raised here)."""
        return ConfigurationError(
            self._unknown_template.format(
                name=name, names=", ".join(self.names())
            )
        )
