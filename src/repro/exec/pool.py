"""Sweep-point execution: serial, pooled, and cached.

:func:`run_specs` is the one entry point.  Give it a list of
:class:`~repro.sim.runner.RunSpec` and it returns the matching
:class:`~repro.sim.results.SimulationResult` list *in input order*,
regardless of backend:

* cache-first — points already in the active/given
  :class:`~repro.exec.cache.ResultCache` are never re-simulated;
* ``workers > 1`` fans the remaining points out over a process pool,
  streaming per-point progress back as completions arrive;
* a worker crash (segfault, OOM-kill, ``os._exit``) breaks the pool;
  the unfinished points are resubmitted to a fresh pool, once per
  point by default, before :class:`~repro.errors.ExecutionError` is
  raised.

Specs cross the process boundary as their
:meth:`~repro.sim.runner.RunSpec.to_dict` form and results return as
:meth:`~repro.sim.results.SimulationResult.to_dict` payloads, so no
simulator object graph is ever pickled.
"""

from __future__ import annotations

import dataclasses
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.errors import ExecutionError
from repro.exec import context as _context
from repro.exec.cache import ResultCache
from repro.exec.stats import SweepStats
from repro.obs.ledger import LedgerWriter
from repro.sim import runner as _runner
from repro.sim.results import SimulationResult
from repro.sim.runner import RunSpec


@dataclass(frozen=True)
class ProgressEvent:
    """One completed sweep point, reported as it lands.

    Attributes:
        index: Position of the point in the input spec list.
        done: Points completed so far (including this one).
        total: Total points in the batch.
        spec: The point's specification.
        result: The point's result.
        cached: True if the result came from the cache.
    """

    index: int
    done: int
    total: int
    spec: RunSpec
    result: SimulationResult
    cached: bool


ProgressCallback = Callable[[ProgressEvent], None]

# Test hooks: set REPRO_EXEC_CRASH_KERNEL=<kernel name> to make worker
# processes die (os._exit) when they pick up that kernel, simulating a
# segfault.  If REPRO_EXEC_CRASH_ONCE names a file path, the crash
# happens only while the file is absent (it is created on the way
# down), so exactly one worker dies and the retry path is exercised.
_CRASH_KERNEL_VAR = "REPRO_EXEC_CRASH_KERNEL"
_CRASH_ONCE_VAR = "REPRO_EXEC_CRASH_ONCE"


def _maybe_crash(spec: RunSpec) -> None:
    target = os.environ.get(_CRASH_KERNEL_VAR)
    if not target or spec.kernel != target:
        return
    sentinel = os.environ.get(_CRASH_ONCE_VAR)
    if sentinel:
        try:
            fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return  # already crashed once; behave this time
        os.close(fd)
    os._exit(73)


def _worker_run(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Process-pool worker: dict in, dict out.

    The result rides back under ``"result"`` with the simulation's
    wall time alongside, so the parent can feed per-spec timing into
    the sweep-level metrics without a second clock across the process
    boundary.
    """
    spec = RunSpec.from_dict(payload)
    _maybe_crash(spec)
    started = time.perf_counter()
    result = _runner.simulate(spec).to_dict()
    return {
        "result": result,
        "wall_s": time.perf_counter() - started,
        "worker": os.getpid(),
    }


def run_specs(
    specs: Iterable[RunSpec],
    *,
    workers: Optional[int] = None,
    cache: Union[ResultCache, str, "os.PathLike[str]", None] = None,
    progress: Optional[ProgressCallback] = None,
    retries: int = 1,
    stats: Optional["SweepStats"] = None,
    ledger: Optional[LedgerWriter] = None,
) -> List[SimulationResult]:
    """Execute a batch of run specifications.

    Args:
        specs: The points to simulate.
        workers: Pool size; None falls back to the active
            :func:`~repro.exec.context.execution` context, and values
            <= 1 run serially in-process.
        cache: Result cache (or its directory path); None falls back
            to the active context's cache.  Hits skip simulation;
            fresh results are stored.
        progress: Callback receiving a :class:`ProgressEvent` per
            completed point, in completion order.
        retries: How many times a point may be involved in a worker
            crash and still be resubmitted.
        stats: Sweep-level metrics accumulator
            (:class:`~repro.exec.stats.SweepStats`); None falls back
            to the active context's.  Receives every completed point
            with its cache status and (for fresh runs) wall time.
        ledger: Append-only run ledger
            (:class:`~repro.obs.ledger.LedgerWriter`); None falls
            back to the active context's.  Receives one event per
            lifecycle transition of every point.  Observation only —
            results, cache keys, and cache contents are untouched.

    Returns:
        Results in the same order as ``specs``.

    Raises:
        ExecutionError: When crashes exhaust the retry budget.
        ConfigurationError: When ``workers > 1`` and a spec is not
            serializable for transport.
    """
    specs = list(specs)
    # Worker processes do not inherit the parent's ambient engine
    # default (set_default_engine), so pin it onto "auto" specs before
    # they are serialized for transport.  Cache keys are unaffected —
    # the engine is excluded from RunSpec.canonical_key.
    ambient = _runner.default_engine()
    if ambient != "auto":
        specs = [
            dataclasses.replace(spec, engine=ambient)
            if spec.engine == "auto"
            else spec
            for spec in specs
        ]
    if workers is None:
        workers = _context.active_workers()
    cache = _context.coerce_cache(cache)
    if cache is None:
        cache = _context.active_cache()
    if stats is None:
        stats = _context.active_stats()
    if ledger is None:
        ledger = _context.active_ledger()

    total = len(specs)
    pooled = workers is not None and workers > 1
    if stats is not None:
        stats.begin_batch(total, workers if pooled else 1)
    batch = (
        ledger.begin_batch(total, workers if pooled else 1)
        if ledger is not None
        else 0
    )
    keys = (
        [spec.canonical_key() for spec in specs]
        if ledger is not None
        else []
    )
    dispatched_at: Dict[int, float] = {}

    def note(event: str, index: int, **fields: object) -> Optional[float]:
        if ledger is None:
            return None
        return ledger.record(
            event, batch=batch, index=index, key=keys[index], **fields
        )

    results: List[Optional[SimulationResult]] = [None] * total
    pending: Dict[int, RunSpec] = {}
    done = 0

    try:
        for index, spec in enumerate(specs):
            note("queued", index, label=spec.describe())
            hit = cache.get(spec) if cache is not None else None
            if hit is not None:
                results[index] = hit
                done += 1
                note("cache_hit", index)
                if stats is not None:
                    stats.note_point(cached=True)
                if progress is not None:
                    progress(
                        ProgressEvent(index, done, total, spec, hit, True)
                    )
            else:
                pending[index] = spec

        def dispatched(index: int) -> None:
            stamp = note("dispatched", index)
            if stamp is not None:
                dispatched_at[index] = stamp

        def landed(
            index: int,
            result: SimulationResult,
            wall_s: Optional[float] = None,
            worker: Optional[object] = None,
        ) -> None:
            nonlocal done
            results[index] = result
            del pending[index]
            done += 1
            if ledger is not None:
                # The worker's start time is reconstructed on the
                # parent's clock: landing time minus the in-worker
                # wall time, clamped so it never precedes dispatch.
                now = ledger.now()
                note(
                    "started",
                    index,
                    worker=worker,
                    t=max(
                        dispatched_at.get(index, 0.0),
                        now - (wall_s or 0.0),
                    ),
                )
                note("completed", index, worker=worker, wall_s=wall_s)
            if cache is not None:
                cache.put(specs[index], result)
            if stats is not None:
                stats.note_point(cached=False, wall_s=wall_s)
            if progress is not None:
                progress(
                    ProgressEvent(
                        index, done, total, specs[index], result, False
                    )
                )

        if not pending:
            return results  # fully warm

        if pooled:
            _run_pooled(pending, workers, retries, landed, dispatched, note)
        else:
            for index in sorted(pending):
                dispatched(index)
                started = time.perf_counter()
                result = _runner.simulate(specs[index])
                landed(
                    index,
                    result,
                    time.perf_counter() - started,
                    worker="main",
                )
        return results
    finally:
        if stats is not None:
            stats.end_batch()


def _run_pooled(
    pending: Dict[int, RunSpec],
    workers: int,
    retries: int,
    landed: Callable[..., None],
    dispatched: Optional[Callable[[int], None]] = None,
    note: Optional[Callable[..., Optional[float]]] = None,
) -> None:
    """Drain ``pending`` through process pools, retrying after crashes."""
    # Serialize up front so unserializable specs fail fast and clearly.
    payloads = {index: spec.to_dict() for index, spec in pending.items()}
    attempts = {index: 0 for index in pending}
    while pending:
        crash: Optional[BaseException] = None
        with ProcessPoolExecutor(
            max_workers=min(workers, len(pending))
        ) as pool:
            futures = {}
            for index in sorted(pending):
                if dispatched is not None:
                    dispatched(index)
                futures[pool.submit(_worker_run, payloads[index])] = index
            for future in as_completed(futures):
                index = futures[future]
                try:
                    payload = future.result()
                except BrokenProcessPool as error:
                    crash = error
                    break  # every remaining future is equally broken
                landed(
                    index,
                    SimulationResult.from_dict(payload["result"]),
                    payload.get("wall_s"),
                    payload.get("worker"),
                )
        if crash is None:
            continue  # pending is empty; loop exits
        # We cannot tell which in-flight point killed the worker, so
        # every unfinished point is charged one attempt and resubmitted.
        exhausted = _charge_crash(pending, attempts, retries)
        if note is not None:
            for index in sorted(pending):
                if attempts[index] > retries:
                    note("failed", index, attempts=attempts[index])
                else:
                    note("retried", index, attempt=attempts[index])
        if exhausted:
            labels = ", ".join(spec.describe() for spec in exhausted)
            raise ExecutionError(
                f"worker pool crashed {retries + 1} times while running "
                f"{len(exhausted)} sweep point(s): {labels}"
            ) from crash


def _charge_crash(
    pending: Dict[int, RunSpec],
    attempts: Dict[int, int],
    retries: int,
) -> Sequence[RunSpec]:
    """Charge an attempt to every unfinished point; return the exhausted."""
    exhausted = []
    for index in sorted(pending):
        attempts[index] += 1
        if attempts[index] > retries:
            exhausted.append(pending[index])
    return exhausted
