"""Sweep execution: process-pool fan-out and a content-addressed result cache.

The paper's evaluation is a large simulation grid; this package makes
walking it cheap.  :func:`run_specs` executes a batch of
:class:`~repro.sim.runner.RunSpec` points — serially or across a
process pool — returning results in input order, with per-point
progress and crash retry.  :class:`ResultCache` stores every
:class:`~repro.sim.results.SimulationResult` on disk under a content
hash of the spec plus a simulator-version salt, so repeated points
are never re-simulated.  :func:`execution` installs both ambiently
for whole experiment runs.

    >>> from repro.exec import ResultCache, execution, run_specs
    >>> from repro.sim.runner import RunSpec
    >>> with execution(workers=4, cache=ResultCache("/tmp/repro-cache")):
    ...     results = run_specs([RunSpec(kernel="copy", length=128)])
    ... # doctest: +SKIP
"""

from repro.exec.cache import ResultCache, default_salt
from repro.exec.context import (
    ExecutionContext,
    active_cache,
    active_ledger,
    active_stats,
    active_workers,
    execution,
)
from repro.exec.pool import ProgressEvent, run_specs

__all__ = [
    "ResultCache",
    "default_salt",
    "ExecutionContext",
    "active_cache",
    "active_ledger",
    "active_stats",
    "active_workers",
    "execution",
    "ProgressEvent",
    "run_specs",
]
