"""Sweep-level execution metrics: fleet observability for run_specs.

:class:`SweepStats` accumulates what the process-pool backend knows
about a sweep as it runs — points completed, cache hits, per-spec wall
time, worker utilization — into a
:class:`~repro.obs.metrics.MetricsRegistry`, renders a live progress
line while batches drain, and produces the end-of-sweep summary the
``repro-experiments`` CLI prints.

Install one through the ambient execution context and every
:func:`~repro.exec.pool.run_specs` batch inside the block reports into
it::

    from repro.exec import execution
    from repro.exec.stats import SweepStats

    stats = SweepStats(stream=sys.stderr)
    with execution(workers=4, cache="~/.cache/repro", stats=stats):
        figure7.run()
    print(stats.summary())

Metric names (all under the ``sweep.`` prefix): ``sweep.specs_total``
and ``sweep.cache_hits`` counters, a ``sweep.batches`` counter, a
``sweep.workers`` gauge, and the ``sweep.spec_wall_seconds`` histogram
whose p50/p90/p99 the summary reports.
"""

from __future__ import annotations

import time
from typing import IO, Optional

from repro.obs.metrics import MetricsRegistry

#: Wall-time histogram bounds: 1 ms to 60 s, roughly log-spaced — sim
#: points run milliseconds to minutes depending on length and refresh.
WALL_TIME_BOUNDS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class SweepStats:
    """Accumulates sweep execution metrics across run_specs batches.

    Args:
        registry: Metrics registry to report into; a fresh one by
            default.
        stream: Optional text stream for the live progress line
            (typically ``sys.stderr``); None disables live output.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        stream: Optional[IO[str]] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.stream = stream
        self.workers_used = 1
        self._specs = self.registry.counter(
            "sweep.specs_total", help="sweep points completed"
        )
        self._hits = self.registry.counter(
            "sweep.cache_hits", help="points served from the result cache"
        )
        self._batches = self.registry.counter(
            "sweep.batches", help="run_specs batches executed"
        )
        self._workers = self.registry.gauge(
            "sweep.workers", help="process-pool size of the last batch"
        )
        self._wall = self.registry.histogram(
            "sweep.spec_wall_seconds",
            bounds=WALL_TIME_BOUNDS,
            help="per-spec simulation wall time, seconds",
        )
        self._started: Optional[float] = None
        self._finished: Optional[float] = None
        self._busy_seconds = 0.0
        self._batch_total = 0
        self._batch_done = 0
        self._line_width = 0

    # -- recording hooks (called by repro.exec.pool) --------------------

    def begin_batch(self, total: int, workers: int) -> None:
        """Mark the start of one run_specs batch of ``total`` points."""
        if self._started is None:
            self._started = time.perf_counter()
        self._finished = None
        self._batches.inc()
        self._workers.set(float(workers))
        self.workers_used = max(self.workers_used, workers)
        self._batch_total = total
        self._batch_done = 0

    def note_point(
        self, cached: bool, wall_s: Optional[float] = None
    ) -> None:
        """Record one completed point (a cache hit or a fresh run)."""
        if self._started is None:  # tolerate use without begin_batch
            self._started = time.perf_counter()
        self._specs.inc()
        self._batch_done += 1
        if cached:
            self._hits.inc()
        elif wall_s is not None:
            self._wall.observe(wall_s)
            self._busy_seconds += wall_s
        self._emit_progress()

    def end_batch(self) -> None:
        """Mark the end of a batch; clears the live progress line."""
        self._finished = time.perf_counter()
        self._clear_progress()

    # -- derived quantities ---------------------------------------------

    @property
    def specs(self) -> int:
        """Points completed so far (hits and fresh runs)."""
        return int(self._specs.value)

    @property
    def cache_hits(self) -> int:
        """Points served from the result cache."""
        return int(self._hits.value)

    @property
    def elapsed(self) -> float:
        """Wall seconds from the first batch start (0.0 before it)."""
        if self._started is None:
            return 0.0
        end = self._finished if self._finished is not None else time.perf_counter()
        return max(0.0, end - self._started)

    @property
    def specs_per_sec(self) -> float:
        """Completed points per wall second."""
        elapsed = self.elapsed
        return self.specs / elapsed if elapsed > 0 else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of points served from the cache."""
        return self.cache_hits / self.specs if self.specs else 0.0

    @property
    def worker_utilization(self) -> float:
        """Simulation-busy seconds over available worker-seconds.

        Below 1.0 means workers idled (startup, stragglers, cache-hit
        phases); serial runs with negligible overhead approach 1.0.
        """
        available = self.elapsed * max(1, self.workers_used)
        return self._busy_seconds / available if available > 0 else 0.0

    # -- rendering ------------------------------------------------------

    def progress_line(self) -> str:
        """One-line live status for the current batch."""
        line = (
            f"sweep: {self._batch_done}/{self._batch_total} specs"
            f" ({self.cache_hits} cached, {self.specs_per_sec:.1f}/s)"
        )
        if self.workers_used > 1:
            line += f" [{self.workers_used} workers]"
        return line

    def summary(self) -> str:
        """End-of-sweep report (total, hits, elapsed, specs/sec)."""
        parts = [
            f"sweep summary: {self.specs} specs",
            f"{self.cache_hits} cache hits"
            + (f" ({self.cache_hit_rate:.0%})" if self.specs else ""),
            f"{self.elapsed:.1f}s elapsed",
            f"{self.specs_per_sec:.1f} specs/s",
        ]
        if self.workers_used > 1:
            parts.append(
                f"{self.workers_used} workers at "
                f"{self.worker_utilization:.0%} utilization"
            )
        if self._wall.count:
            parts.append(
                f"per-spec wall p50={self._wall.p50 * 1000:.0f}ms "
                f"p90={self._wall.p90 * 1000:.0f}ms "
                f"p99={self._wall.p99 * 1000:.0f}ms"
            )
        return ", ".join(parts)

    def _emit_progress(self) -> None:
        if self.stream is None:
            return
        line = self.progress_line()
        pad = max(0, self._line_width - len(line))
        self.stream.write("\r" + line + " " * pad)
        self.stream.flush()
        self._line_width = len(line)

    def _clear_progress(self) -> None:
        if self.stream is None or self._line_width == 0:
            return
        self.stream.write("\r" + " " * self._line_width + "\r")
        self.stream.flush()
        self._line_width = 0
