"""Ambient execution settings for sweeps and experiments.

The experiment harness is many layers deep — CLI over experiment
modules over :class:`~repro.sim.sweep.Sweep` over
:func:`~repro.sim.runner.simulate` — and threading ``workers=`` /
``cache=`` through every signature would couple all of them to the
execution backend.  Instead, :func:`execution` installs an ambient
:class:`ExecutionContext`; :func:`repro.exec.pool.run_specs` picks up
the worker count and cache from it, and
:func:`repro.sim.runner.simulate` consults the cache directly, so any
code path that simulates a previously seen point gets the stored
result.

    >>> from repro.exec import execution
    >>> with execution(workers=4, cache="~/.cache/repro"):
    ...     figure7.run()        # doctest: +SKIP
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional, Union

from repro.exec.cache import ResultCache
from repro.exec.stats import SweepStats
from repro.obs.ledger import LedgerWriter


@dataclass
class ExecutionContext:
    """Ambient sweep-execution settings.

    Attributes:
        workers: Process-pool size for sweep fan-out; None or <= 1
            means in-process serial execution.
        cache: Result cache consulted and filled by every simulation.
        stats: Optional sweep-level metrics accumulator; every
            :func:`~repro.exec.pool.run_specs` batch inside the
            context reports into it.
        ledger: Optional append-only run ledger
            (:class:`~repro.obs.ledger.LedgerWriter`); every batch in
            the context writes its lifecycle events to it.
    """

    workers: Optional[int] = None
    cache: Optional[ResultCache] = None
    stats: Optional[SweepStats] = None
    ledger: Optional[LedgerWriter] = None


_STACK: List[ExecutionContext] = []


def coerce_cache(
    cache: Union[ResultCache, str, "os.PathLike[str]", None]
) -> Optional[ResultCache]:
    """Accept a ResultCache, a directory path, or None."""
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


def coerce_ledger(
    ledger: Union[LedgerWriter, str, "os.PathLike[str]", None]
) -> Optional[LedgerWriter]:
    """Accept a LedgerWriter, a JSONL file path, or None."""
    if ledger is None or isinstance(ledger, LedgerWriter):
        return ledger
    return LedgerWriter(ledger)


@contextmanager
def execution(
    workers: Optional[int] = None,
    cache: Union[ResultCache, str, "os.PathLike[str]", None] = None,
    stats: Optional[SweepStats] = None,
    ledger: Union[LedgerWriter, str, "os.PathLike[str]", None] = None,
) -> Iterator[ExecutionContext]:
    """Install an ambient execution context for the enclosed block.

    Contexts nest; the innermost one wins.  ``cache`` may be a
    :class:`~repro.exec.cache.ResultCache` or a directory path;
    ``stats`` a :class:`~repro.exec.stats.SweepStats` collecting
    sweep-level metrics across every batch in the block; ``ledger`` a
    :class:`~repro.obs.ledger.LedgerWriter` (or a JSONL file path)
    receiving one event per spec lifecycle transition.  A ledger
    opened here from a path is closed when the block exits.
    """
    opened = ledger is not None and not isinstance(ledger, LedgerWriter)
    writer = coerce_ledger(ledger)
    context = ExecutionContext(
        workers=workers, cache=coerce_cache(cache), stats=stats,
        ledger=writer,
    )
    _STACK.append(context)
    try:
        yield context
    finally:
        _STACK.remove(context)
        if opened and writer is not None:
            writer.close()


def current() -> Optional[ExecutionContext]:
    """The innermost active context, or None."""
    return _STACK[-1] if _STACK else None


def active_cache() -> Optional[ResultCache]:
    """The active context's result cache, or None."""
    context = current()
    return context.cache if context else None


def active_workers() -> Optional[int]:
    """The active context's worker count, or None."""
    context = current()
    return context.workers if context else None


def active_stats() -> Optional[SweepStats]:
    """The active context's sweep-stats accumulator, or None."""
    context = current()
    return context.stats if context else None


def active_ledger() -> Optional[LedgerWriter]:
    """The active context's run-ledger writer, or None."""
    context = current()
    return context.ledger if context else None
