"""Content-addressed on-disk cache of simulation results.

Every cache entry is addressed by the SHA-256 of the run's
:meth:`~repro.sim.runner.RunSpec.canonical_key` prefixed with a
*simulator-version salt*.  Because the key is derived purely from the
content of the spec (and specs normalize on construction), any
experiment, benchmark, or sweep that re-simulates a previously seen
point — however it spelled the parameters — hits the same entry.

Layout on disk (one JSON file per result, sharded by key prefix)::

    <root>/objects/<key[:2]>/<key>.json

Each file stores the salt, the full spec dict, and the result dict,
so entries are self-describing and auditable with a text editor.

Invalidation is by salt: changing the salt changes every key, so a
new simulator version simply stops seeing the old entries (they can
be removed with :meth:`ResultCache.clear`).  The default salt is the
repro package version — bump ``repro.__version__`` whenever a change
alters simulated outcomes.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.errors import ConfigurationError
from repro.sim.results import SimulationResult
from repro.sim.runner import RunSpec


def default_salt() -> str:
    """The package-version salt new caches use."""
    from repro import __version__

    return f"repro-{__version__}"


class ResultCache:
    """Content-addressed store of :class:`SimulationResult` records.

    Attributes:
        root: Cache directory (created lazily on first store).
        salt: Simulator-version salt folded into every key.
        hits, misses, stores: Lookup statistics for this instance.
    """

    def __init__(
        self,
        root: Union[str, "os.PathLike[str]"],
        salt: Optional[str] = None,
    ) -> None:
        self.root = Path(root).expanduser()
        self.salt = default_salt() if salt is None else salt
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # -- addressing -----------------------------------------------------

    def key_for(self, spec: RunSpec) -> str:
        """The content hash addressing ``spec`` under this salt.

        Raises:
            ConfigurationError: If the spec is not serializable (e.g.
                it holds a custom policy instance).
        """
        material = f"{self.salt}\n{spec.canonical_key()}"
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def path_for(self, spec: RunSpec) -> Path:
        """Where ``spec``'s result lives (whether or not it exists)."""
        key = self.key_for(spec)
        return self.root / "objects" / key[:2] / f"{key}.json"

    # -- lookup / store -------------------------------------------------

    def get(self, spec: RunSpec) -> Optional[SimulationResult]:
        """The stored result for ``spec``, or None.

        Unserializable specs and corrupt or truncated entries read as
        misses (a corrupt entry is overwritten by the next store).
        """
        try:
            path = self.path_for(spec)
        except ConfigurationError:
            return None
        try:
            payload = json.loads(path.read_text())
            result = SimulationResult.from_dict(payload["result"])
        except (OSError, ValueError, KeyError, ConfigurationError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, spec: RunSpec, result: SimulationResult) -> bool:
        """Store ``result`` under ``spec``; False if uncacheable."""
        try:
            path = self.path_for(spec)
            payload = {
                "salt": self.salt,
                "spec": spec.to_dict(),
                "result": result.to_dict(),
            }
        except ConfigurationError:
            return False
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=1))
        os.replace(tmp, path)
        self.stores += 1
        return True

    # -- maintenance ----------------------------------------------------

    def _entries(self) -> Iterator[Path]:
        objects = self.root / "objects"
        if objects.is_dir():
            yield from objects.glob("*/*.json")

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self._entries():
            path.unlink()
            removed += 1
        return removed

    def __repr__(self) -> str:
        return (
            f"ResultCache({str(self.root)!r}, salt={self.salt!r}, "
            f"hits={self.hits}, misses={self.misses}, stores={self.stores})"
        )
