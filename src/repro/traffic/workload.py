"""Synthetic multi-client request generation.

Models an open-loop population of clients: arrivals form a merged
Poisson process (exponential inter-arrival gaps at the aggregate
rate), each arrival is attributed to a uniformly chosen client, and
the client picks a cacheline from its private Zipf-distributed hot
set — or, with probability ``1 - hot_fraction``, from the whole
address space.  Everything is drawn from seeded PRNGs in a fixed
order, so a workload is bit-reproducible per seed.

Zipf hot sets concentrate traffic: with exponent ``s``, the k-th
hottest line of a client's set is drawn with weight ``1/k^s``, so a
handful of lines (and therefore banks) absorb most of a hot client's
traffic — the contention pattern bank-budget regulation exists to
contain.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass
from itertools import accumulate
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.memsys.address import AddressMapping
from repro.rdram.packets import BusDirection


@dataclass(frozen=True)
class Request:
    """One client's cacheline request.

    Attributes:
        arrival: Interface-clock cycle the request enters the system.
        client: Issuing client's index.
        address: Cacheline-aligned byte address.
        direction: READ or WRITE.
    """

    arrival: int
    client: int
    address: int
    direction: BusDirection


@dataclass(frozen=True)
class TrafficWorkload:
    """Parameters of one synthetic client population.

    Attributes:
        clients: Number of concurrent clients.
        requests: Total requests offered over the run.
        mean_gap: Mean cycles between successive arrivals (aggregate
            Poisson rate is ``1 / mean_gap`` requests per cycle).
        zipf_s: Zipf exponent of each client's hot-set distribution
            (larger = more skewed; 0 = uniform over the hot set).
        hot_lines: Cachelines in each client's private hot set.
        hot_fraction: Probability a request targets the client's hot
            set rather than a uniformly random line.
        write_fraction: Fraction of requests that are writes.
        seed: PRNG seed; workloads are bit-reproducible per seed.
    """

    clients: int = 1024
    requests: int = 2048
    mean_gap: float = 4.0
    zipf_s: float = 1.2
    hot_lines: int = 64
    hot_fraction: float = 0.9
    write_fraction: float = 0.25
    seed: int = 1

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ConfigurationError("need at least one client")
        if self.requests < 1:
            raise ConfigurationError("need at least one request")
        if self.mean_gap <= 0:
            raise ConfigurationError("mean_gap must be positive")
        if self.zipf_s < 0:
            raise ConfigurationError("zipf_s must be non-negative")
        if self.hot_lines < 1:
            raise ConfigurationError("need at least one hot line")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ConfigurationError("hot_fraction must be in [0, 1]")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ConfigurationError("write_fraction must be in [0, 1]")


def _zipf_cdf(hot_lines: int, s: float) -> List[float]:
    """Cumulative Zipf weights for ranks 1..hot_lines."""
    weights = [1.0 / (rank ** s) for rank in range(1, hot_lines + 1)]
    total = sum(weights)
    return [w / total for w in accumulate(weights)]


def _client_hot_set(
    seed: int, client: int, hot_lines: int, total_lines: int
) -> Tuple[int, ...]:
    """A client's private hot set, deterministic per (seed, client)."""
    rng = random.Random(seed * 1_000_003 + client * 7_919 + 17)
    return tuple(rng.randrange(total_lines) for _ in range(hot_lines))


def generate_requests(
    workload: TrafficWorkload, mapping: AddressMapping
) -> List[Request]:
    """Draw the workload's full request list, sorted by arrival.

    Args:
        workload: Population parameters.
        mapping: The system's address mapping; its capacity bounds the
            address space and its config fixes the cacheline size.

    Returns:
        ``workload.requests`` requests in arrival order.
    """
    line_bytes = mapping.config.cacheline_bytes
    total_lines = mapping.capacity_bytes // line_bytes
    hot_lines = min(workload.hot_lines, total_lines)
    rng = random.Random(workload.seed)
    cdf = _zipf_cdf(hot_lines, workload.zipf_s)
    hot_sets: Dict[int, Tuple[int, ...]] = {}
    requests: List[Request] = []
    clock = 0.0
    for _ in range(workload.requests):
        clock += rng.expovariate(1.0 / workload.mean_gap)
        client = rng.randrange(workload.clients)
        if rng.random() < workload.hot_fraction:
            hot = hot_sets.get(client)
            if hot is None:
                hot = _client_hot_set(
                    workload.seed, client, hot_lines, total_lines
                )
                hot_sets[client] = hot
            # bisect can land one past the end when rounding leaves
            # cdf[-1] marginally below 1.0; clamp to the coldest rank.
            rank = min(bisect.bisect_left(cdf, rng.random()), hot_lines - 1)
            line = hot[rank]
        else:
            line = rng.randrange(total_lines)
        direction = (
            BusDirection.WRITE
            if rng.random() < workload.write_fraction
            else BusDirection.READ
        )
        requests.append(
            Request(
                arrival=int(clock),
                client=client,
                address=line * line_bytes,
                direction=direction,
            )
        )
    return requests
