"""Open-loop traffic driver over the channel fabric.

Wires the synthetic workload into the shared simulation kernel as
components:

* an :class:`ArrivalPump` that releases requests into per-channel
  queues at their Poisson arrival cycles (open loop — arrivals do not
  wait for service), and
* one :class:`ChannelServer` per channel, each serving its queue FCFS
  against that channel's private memory model — channels are
  independent kernel components, exactly as independent memory
  controllers would be.

Each completed request's latency (arrival to last DATA packet end)
feeds an :class:`~repro.obs.metrics.Histogram`, so the run reports
interpolated p50/p90/p99; byte tallies are kept per bank, per channel
and per client.  An optional :class:`BankBudgetRegulator` enforces
per-client bank budgets per time window (Sullivan-style bandwidth
regulation): a client over budget on a bank has its requests deferred
to the next window, bounding the bank share any one client can take.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.memsys.address import get_address_mapping
from repro.memsys.config import MemorySystemConfig, MemoryTopology
from repro.memsys.pagemanager import make_page_manager
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.rdram.channel import make_memory
from repro.rdram.fabric import MemoryFabric
from repro.rdram.timing import DATA_PACKET_BYTES
from repro.sim.kernel import Simulation
from repro.traffic.workload import Request, TrafficWorkload, generate_requests

#: Latency histogram bucket bounds, in interface-clock cycles.
LATENCY_BUCKETS = (
    8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
    2048.0, 4096.0, 8192.0, 16384.0, 32768.0, 65536.0,
)


class BankBudgetRegulator:
    """Per-client, per-bank byte budgets over fixed time windows.

    Args:
        window_cycles: Window length; budgets reset at each boundary.
        budget_bytes: Bytes one client may move through one bank per
            window; requests beyond it are deferred to the next
            window.
    """

    def __init__(self, window_cycles: int = 1024, budget_bytes: int = 256) -> None:
        if window_cycles <= 0:
            raise ConfigurationError("window_cycles must be positive")
        if budget_bytes <= 0:
            raise ConfigurationError("budget_bytes must be positive")
        self.window_cycles = window_cycles
        self.budget_bytes = budget_bytes
        self.deferrals = 0
        self._window = 0
        self._spent: Dict[Tuple[int, int], int] = {}

    def _roll(self, cycle: int) -> None:
        window = cycle // self.window_cycles
        if window != self._window:
            self._window = window
            self._spent.clear()

    def allows(self, client: int, bank: int, nbytes: int, cycle: int) -> bool:
        """True if the client may move ``nbytes`` through ``bank`` now."""
        self._roll(cycle)
        return (
            self._spent.get((client, bank), 0) + nbytes <= self.budget_bytes
        )

    def charge(self, client: int, bank: int, nbytes: int, cycle: int) -> None:
        """Debit a served request against its client's bank budget."""
        self._roll(cycle)
        key = (client, bank)
        self._spent[key] = self._spent.get(key, 0) + nbytes

    def next_window_start(self, cycle: int) -> int:
        """First cycle of the window after the one holding ``cycle``."""
        return (cycle // self.window_cycles + 1) * self.window_cycles


class ArrivalPump:
    """Releases requests into per-channel queues at their arrival cycles."""

    def __init__(
        self, requests: List[Request], servers: List["ChannelServer"], mapping
    ) -> None:
        self._pending: Deque[Request] = deque(
            sorted(requests, key=lambda request: request.arrival)
        )
        self._servers = servers
        self._mapping = mapping

    @property
    def done(self) -> bool:
        return not self._pending

    def tick(self, cycle: int) -> Tuple[()]:
        while self._pending and self._pending[0].arrival <= cycle:
            request = self._pending.popleft()
            channel = self._mapping.channel_of(request.address)
            self._servers[channel].enqueue(request)
        return ()

    @property
    def next_action_cycle(self) -> Optional[int]:
        return self._pending[0].arrival if self._pending else None


class ChannelServer:
    """Serves one channel's queue FCFS against its private memory.

    One server per channel; each is an independent kernel component,
    so service on one channel never blocks another.  A request
    occupies the server from issue until its last DATA packet ends
    (one transaction in flight per channel), which is what makes the
    per-window budget accounting of the regulator meaningful.
    """

    def __init__(
        self,
        index: int,
        memory,
        mapping,
        config: MemorySystemConfig,
        latency: Histogram,
        bank_offset: int,
        regulator: Optional[BankBudgetRegulator] = None,
    ) -> None:
        self.index = index
        self.memory = memory
        self.mapping = mapping
        self.config = config
        self.latency = latency
        self.bank_offset = bank_offset
        self.regulator = regulator
        self.queue: Deque[Request] = deque()
        self.completed = 0
        self.last_data_end = 0
        self.bank_bytes: Dict[int, int] = {}
        self.client_bytes: Dict[int, int] = {}
        self.client_bank_bytes: Dict[Tuple[int, int], int] = {}
        self._busy_until = 0
        self._blocked_until: Optional[int] = None

    def enqueue(self, request: Request) -> None:
        self.queue.append(request)
        self._blocked_until = None

    @property
    def idle(self) -> bool:
        return not self.queue

    def _pick(self, cycle: int) -> Optional[Request]:
        """The first queued request the regulator admits (FCFS)."""
        if self.regulator is None:
            return self.queue.popleft() if self.queue else None
        line_bytes = self.config.cacheline_bytes
        for position, request in enumerate(self.queue):
            bank = self.mapping.decompose(request.address).bank
            if self.regulator.allows(request.client, bank, line_bytes, cycle):
                del self.queue[position]
                return request
            self.regulator.deferrals += 1
        return None

    def tick(self, cycle: int) -> Tuple[()]:
        if not self.queue or cycle < self._busy_until:
            return ()
        request = self._pick(cycle)
        if request is None:
            # Every queued client is over budget: sleep to the next
            # window boundary, when budgets reset.
            self._blocked_until = self.regulator.next_window_start(cycle)
            return ()
        self._blocked_until = None
        line_bytes = self.config.cacheline_bytes
        packets = self.config.packets_per_cacheline
        page_manager = self.memory.page_manager
        plans = page_manager is not None and page_manager.plans_precharge
        data_end = cycle
        first_bank = None
        for offset in range(packets):
            location = self.mapping.decompose(
                request.address + offset * DATA_PACKET_BYTES
            )
            if first_bank is None:
                first_bank = location.bank
            outcome = self.memory.issue_access(
                location.bank - self.bank_offset,
                location.row,
                location.column,
                cycle,
                request.direction,
                precharge=plans and offset == packets - 1,
            )
            data_end = outcome.access.data.end
            self.bank_bytes[location.bank] = (
                self.bank_bytes.get(location.bank, 0) + DATA_PACKET_BYTES
            )
        self._busy_until = data_end
        self.last_data_end = max(self.last_data_end, data_end)
        self.completed += 1
        self.latency.observe(float(data_end - request.arrival))
        self.client_bytes[request.client] = (
            self.client_bytes.get(request.client, 0) + line_bytes
        )
        if first_bank is not None:
            pair = (request.client, first_bank)
            self.client_bank_bytes[pair] = (
                self.client_bank_bytes.get(pair, 0) + line_bytes
            )
        if self.regulator is not None and first_bank is not None:
            self.regulator.charge(request.client, first_bank, line_bytes, cycle)
        return ()

    @property
    def next_action_cycle(self) -> Optional[int]:
        if not self.queue:
            return None
        if self._blocked_until is not None:
            return self._blocked_until
        return self._busy_until


@dataclass(frozen=True)
class TrafficResult:
    """Outcome of one open-loop traffic run.

    Attributes:
        organization: Human-readable memory organization summary.
        channels: Channel count.
        clients: Client population size.
        requests: Requests offered (all are eventually served).
        cycles: Cycle of the last DATA packet end.
        p50_latency: Interpolated median request latency, in cycles.
        p90_latency: Interpolated 90th-percentile latency.
        p99_latency: Interpolated 99th-percentile latency.
        total_bytes: Bytes moved across all channels.
        channel_bytes: Bytes moved per channel, in channel order.
        bank_bytes: Bytes moved per global bank index.
        client_bytes: Bytes served per client index.
        client_bank_bytes: Bytes served per (client, bank) pair — the
            quantity the bank-budget regulator caps per window.
        regulated: Whether a bank-budget regulator was active.
        deferrals: Regulator deferral decisions (0 unregulated).
    """

    organization: str
    channels: int
    clients: int
    requests: int
    cycles: int
    p50_latency: float
    p90_latency: float
    p99_latency: float
    total_bytes: int
    channel_bytes: Tuple[int, ...]
    bank_bytes: Dict[int, int] = field(default_factory=dict)
    client_bytes: Dict[int, int] = field(default_factory=dict)
    client_bank_bytes: Dict[Tuple[int, int], int] = field(default_factory=dict)
    regulated: bool = False
    deferrals: int = 0

    @property
    def channel_shares(self) -> Tuple[float, ...]:
        """Each channel's fraction of the bytes moved."""
        if self.total_bytes <= 0:
            return tuple(0.0 for _ in self.channel_bytes)
        return tuple(b / self.total_bytes for b in self.channel_bytes)

    def bank_share(self, bank: int) -> float:
        """One bank's fraction of the bytes moved."""
        if self.total_bytes <= 0:
            return 0.0
        return self.bank_bytes.get(bank, 0) / self.total_bytes

    @property
    def max_client_bank_rate(self) -> float:
        """Worst (client, bank) pair's bytes per cycle over the run.

        This is what regulation bounds: with a regulator of budget
        ``B`` over window ``W``, no client can sustain more than
        ``B / W`` bytes per cycle through any one bank.
        """
        if self.cycles <= 0 or not self.client_bank_bytes:
            return 0.0
        return max(self.client_bank_bytes.values()) / self.cycles

    def client_bank_share(self) -> Dict[int, float]:
        """Each client's fraction of the bytes served."""
        if self.total_bytes <= 0:
            return {client: 0.0 for client in self.client_bytes}
        return {
            client: served / self.total_bytes
            for client, served in self.client_bytes.items()
        }

    def summary(self) -> str:
        """One-line human-readable result."""
        shares = "/".join(f"{s:.0%}" for s in self.channel_shares)
        return (
            f"{self.organization}: {self.requests} reqs from "
            f"{self.clients} clients in {self.cycles} cyc; latency "
            f"p50={self.p50_latency:.0f} p90={self.p90_latency:.0f} "
            f"p99={self.p99_latency:.0f}; channel shares {shares}"
            + (f"; {self.deferrals} deferrals" if self.regulated else "")
        )


def run_traffic(
    config: Optional[MemorySystemConfig] = None,
    workload: Optional[TrafficWorkload] = None,
    *,
    channels: int = 1,
    devices: int = 1,
    regulator: Optional[BankBudgetRegulator] = None,
    registry: Optional[MetricsRegistry] = None,
    max_cycles: Optional[int] = None,
) -> TrafficResult:
    """Drive an open-loop multi-client workload through the fabric.

    Args:
        config: Memory organization (defaults to the paper's CLI
            system).  Its topology may be set directly, or via the
            ``channels``/``devices`` arguments.
        workload: Client population (defaults to
            :class:`~repro.traffic.workload.TrafficWorkload`).
        channels: Channel count, applied to ``config`` when its
            topology is the default.
        devices: Devices per channel, applied the same way.
        regulator: Optional per-client bank-budget regulator.
        registry: Metrics registry receiving the latency histogram
            (``traffic.latency_cycles``); a private one is used when
            omitted.
        max_cycles: Watchdog override.

    Returns:
        The run's latency and bandwidth-share accounting.
    """
    import dataclasses

    config = config or MemorySystemConfig.cli()
    if (channels, devices) != (1, 1):
        if not config.topology.single:
            raise ConfigurationError(
                "pass the topology either on the config or as "
                "channels=/devices=, not both"
            )
        config = dataclasses.replace(
            config,
            topology=MemoryTopology(
                channels=channels, devices_per_channel=devices
            ),
        )
    workload = workload or TrafficWorkload()
    if regulator is not None and regulator.budget_bytes < config.cacheline_bytes:
        raise ConfigurationError(
            f"regulator budget ({regulator.budget_bytes} B) is smaller than "
            f"one cacheline ({config.cacheline_bytes} B); no request could "
            "ever be admitted"
        )
    registry = registry or MetricsRegistry()
    mapping = get_address_mapping(config)
    memory = make_memory(
        timing=config.timing,
        geometry=config.geometry,
        record_trace=False,
        topology=config.topology if not config.topology.single else None,
        page_manager=(
            make_page_manager(config) if config.topology.channels == 1 else None
        ),
        page_manager_factory=lambda: make_page_manager(config),
    )
    channel_memories = (
        memory.channel_memories
        if isinstance(memory, MemoryFabric)
        else [memory]
    )
    banks_per_channel = (
        memory.geometry.banks_per_channel
        if isinstance(memory, MemoryFabric)
        else memory.geometry.num_banks
    )
    latency = registry.histogram(
        "traffic.latency_cycles",
        bounds=LATENCY_BUCKETS,
        help="request latency (arrival to last DATA packet end), cycles",
    )
    servers = [
        ChannelServer(
            index=index,
            memory=channel_memory,
            mapping=mapping,
            config=config,
            latency=latency,
            bank_offset=index * banks_per_channel,
            regulator=regulator,
        )
        for index, channel_memory in enumerate(channel_memories)
    ]
    pump = ArrivalPump(generate_requests(workload, mapping), servers, mapping)
    if max_cycles is None:
        max_cycles = 50_000 + 600 * workload.requests
    Simulation(
        [pump, *servers],
        done=lambda sim: pump.done and all(server.idle for server in servers),
        max_cycles=max_cycles,
        label=(
            f"traffic: {workload.clients} clients over "
            f"{config.topology.describe()}"
        ),
    ).run()
    bank_bytes: Dict[int, int] = {}
    client_bytes: Dict[int, int] = {}
    client_bank_bytes: Dict[Tuple[int, int], int] = {}
    for server in servers:
        for bank, moved in server.bank_bytes.items():
            bank_bytes[bank] = bank_bytes.get(bank, 0) + moved
        for client, served in server.client_bytes.items():
            client_bytes[client] = client_bytes.get(client, 0) + served
        for pair, served in server.client_bank_bytes.items():
            client_bank_bytes[pair] = client_bank_bytes.get(pair, 0) + served
    channel_bytes = tuple(m.bytes_transferred for m in channel_memories)
    return TrafficResult(
        organization=config.describe(),
        channels=config.topology.channels,
        clients=workload.clients,
        requests=workload.requests,
        cycles=max(server.last_data_end for server in servers),
        p50_latency=latency.p50,
        p90_latency=latency.p90,
        p99_latency=latency.p99,
        total_bytes=sum(channel_bytes),
        channel_bytes=channel_bytes,
        bank_bytes=bank_bytes,
        client_bytes=client_bytes,
        client_bank_bytes=client_bank_bytes,
        regulated=regulator is not None,
        deferrals=regulator.deferrals if regulator is not None else 0,
    )
