"""Open-loop traffic driver over the channel fabric.

Wires the synthetic workload into the shared simulation kernel as
components:

* an :class:`ArrivalPump` that releases requests into per-channel
  queues at their Poisson arrival cycles (open loop — arrivals do not
  wait for service), and
* one :class:`ChannelServer` per channel, each serving its queue FCFS
  against that channel's private memory model — channels are
  independent kernel components, exactly as independent memory
  controllers would be.

Each completed request's latency (arrival to last DATA packet end)
feeds an :class:`~repro.obs.metrics.Histogram`, so the run reports
interpolated p50/p90/p99; byte tallies are kept per bank, per channel
and per client.  An optional :class:`BankBudgetRegulator` enforces
per-client bank budgets per time window (Sullivan-style bandwidth
regulation): a client over budget on a bank has its requests deferred
to the next window, bounding the bank share any one client can take.

Every request's latency is additionally *attributed*: the per-request
analogue of the seven-bucket DATA-bus stall attribution
(:mod:`repro.obs.attribution`).  Each channel memory carries an
:class:`~repro.obs.core.Instrumentation` whose
:class:`~repro.obs.core.DataBusGap` records — the same single source
of truth the closed-loop attribution partitions — are classified per
request into :data:`COMPONENTS`, and the components sum *exactly* to
the measured latency (an :class:`~repro.errors.ObservabilityError`
otherwise, so the accounting can never silently drift).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Mapping, Optional, Tuple, Union

from repro.errors import ConfigurationError, ObservabilityError
from repro.memsys.address import get_address_mapping
from repro.memsys.config import MemorySystemConfig, MemoryTopology
from repro.memsys.pagemanager import make_page_manager
from repro.obs.core import DataBusGap, Instrumentation
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.rdram.channel import make_memory
from repro.rdram.fabric import MemoryFabric
from repro.rdram.refresh import DEFAULT_INTERVAL_CYCLES, RefreshEngine
from repro.rdram.timing import DATA_PACKET_BYTES
from repro.sim.kernel import BackgroundComponent, Simulation
from repro.traffic.scheduling import Scheduler, make_scheduler
from repro.traffic.workload import Request, TrafficWorkload, generate_requests

#: Latency histogram bucket bounds, in interface-clock cycles.
LATENCY_BUCKETS = (
    8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
    2048.0, 4096.0, 8192.0, 16384.0, 32768.0, 65536.0,
)

#: Per-request latency components, in reporting order.  For every
#: served request they sum *exactly* to its measured latency:
#:
#: ``queue_wait``
#:     Arrival to service start (FCFS queueing plus regulator holds).
#: ``bank_busy``
#:     Service cycles below the bank-readiness bound — precharge,
#:     activate, and t_RCD of the banks the request touched.
#: ``refresh_blocked``
#:     Bank/bus wait cycles covered by a background refresh span
#:     (only nonzero when ``run_traffic(refresh=...)`` is enabled).
#: ``bus_contention``
#:     Write-to-read turnaround plus COL command-bus occupancy.
#: ``pipeline``
#:     The fixed command-to-data delay of each COL issued.
#: ``transfer``
#:     DATA packets of the request on the bus (t_PACK each).
COMPONENTS = (
    "queue_wait",
    "bank_busy",
    "refresh_blocked",
    "bus_contention",
    "pipeline",
    "transfer",
)


def _active_ledger():
    """The ambient run-ledger writer, if an execution() context set one.

    Imported lazily: the exec layer depends on obs, not the other way
    around, and plain traffic runs should not pay the import.
    """
    from repro.exec.context import active_ledger

    return active_ledger()


class BankBudgetRegulator:
    """Per-client, per-bank byte budgets over fixed time windows.

    Args:
        window_cycles: Window length; budgets reset at each boundary.
        budget_bytes: Bytes one client may move through one bank per
            window; requests beyond it are deferred to the next
            window.
    """

    def __init__(self, window_cycles: int = 1024, budget_bytes: int = 256) -> None:
        if window_cycles <= 0:
            raise ConfigurationError("window_cycles must be positive")
        if budget_bytes <= 0:
            raise ConfigurationError("budget_bytes must be positive")
        self.window_cycles = window_cycles
        self.budget_bytes = budget_bytes
        self.deferrals = 0
        self._window = 0
        self._spent: Dict[Tuple[int, int], int] = {}

    def _roll(self, cycle: int) -> None:
        window = cycle // self.window_cycles
        if window != self._window:
            self._window = window
            self._spent.clear()

    def allows(self, client: int, bank: int, nbytes: int, cycle: int) -> bool:
        """True if the client may move ``nbytes`` through ``bank`` now."""
        self._roll(cycle)
        return (
            self._spent.get((client, bank), 0) + nbytes <= self.budget_bytes
        )

    def charge(self, client: int, bank: int, nbytes: int, cycle: int) -> None:
        """Debit a served request against its client's bank budget."""
        self._roll(cycle)
        key = (client, bank)
        self._spent[key] = self._spent.get(key, 0) + nbytes

    def next_window_start(self, cycle: int) -> int:
        """First cycle of the window after the one holding ``cycle``."""
        return (cycle // self.window_cycles + 1) * self.window_cycles


class ArrivalPump:
    """Releases requests into per-channel queues at their arrival cycles."""

    def __init__(
        self, requests: List[Request], servers: List["ChannelServer"], mapping
    ) -> None:
        self._pending: Deque[Request] = deque(
            sorted(requests, key=lambda request: request.arrival)
        )
        self._servers = servers
        self._mapping = mapping

    @property
    def done(self) -> bool:
        return not self._pending

    def tick(self, cycle: int) -> Tuple[()]:
        while self._pending and self._pending[0].arrival <= cycle:
            request = self._pending.popleft()
            channel = self._mapping.channel_of(request.address)
            self._servers[channel].enqueue(request)
        return ()

    @property
    def next_action_cycle(self) -> Optional[int]:
        return self._pending[0].arrival if self._pending else None


class ChannelServer:
    """Serves one channel's queue against its private memory.

    One server per channel; each is an independent kernel component,
    so service on one channel never blocks another.  A request
    occupies the server from issue until its last DATA packet ends
    (one transaction in flight per channel), which is what makes the
    per-window budget accounting of the regulator meaningful.

    *Which* pending request is served next is delegated to the
    server's :class:`~repro.traffic.scheduling.Scheduler` (FCFS by
    default — the historical behavior, byte-identical).  Schedulers
    may carry reordering state, so each server owns its own instance.
    """

    def __init__(
        self,
        index: int,
        memory,
        mapping,
        config: MemorySystemConfig,
        latency: Histogram,
        bank_offset: int,
        regulator: Optional[BankBudgetRegulator] = None,
        obs: Optional[Instrumentation] = None,
        component_hists: Optional[Mapping[str, Histogram]] = None,
        window: Optional[int] = None,
        scheduler: Optional[Scheduler] = None,
    ) -> None:
        self.index = index
        self.memory = memory
        self.mapping = mapping
        self.config = config
        self.latency = latency
        self.bank_offset = bank_offset
        self.regulator = regulator
        self.scheduler = scheduler if scheduler is not None else make_scheduler("fcfs")
        self.queue: Deque[Request] = deque()
        self.completed = 0
        self.last_data_end = 0
        self.bank_bytes: Dict[int, int] = {}
        self.client_bytes: Dict[int, int] = {}
        self.client_bank_bytes: Dict[Tuple[int, int], int] = {}
        self._busy_until = 0
        self._blocked_until: Optional[int] = None
        # Latency attribution: the channel memory's instrumentation
        # (its DataBusGap records are the source of truth), optional
        # shared per-component histograms, and an optional telemetry
        # window for per-(channel, bank) heatmap series.
        self.obs = obs
        self.component_hists = component_hists
        self.window = window
        self.component_cycles: Dict[str, int] = {
            name: 0 for name in COMPONENTS
        }
        self.busy_cycles = 0
        self._refresh_spans: List[Tuple[int, int]] = []
        self._span_idx = 0
        self._refresh_idx = 0
        self._win_bank_bytes: Dict[Tuple[int, int], int] = {}
        self._win_busy: Dict[int, int] = {}

    def enqueue(self, request: Request) -> None:
        self.queue.append(request)
        self._blocked_until = None

    @property
    def idle(self) -> bool:
        return not self.queue

    def _pick(self, cycle: int) -> Optional[Request]:
        """The request the scheduler serves next (regulator-admitted)."""
        return self.scheduler.pick(self, cycle)

    def _sync_refresh_spans(self) -> None:
        """Pull new refresh spans out of the shared tracer."""
        if self.obs is None:
            return
        spans = self.obs.tracer.spans
        while self._span_idx < len(spans):
            span = spans[self._span_idx]
            self._span_idx += 1
            if span.track == "refresh" and span.name.startswith("refresh"):
                self._refresh_spans.append((span.start, span.end))

    def _classify_gap(
        self, lo: int, gap: DataBusGap, comps: Dict[str, int]
    ) -> None:
        """Partition ``[lo, gap.end)`` into latency components.

        Mirrors :func:`repro.obs.attribution.classify_stall_intervals`
        front to back: leading turnaround, then refresh-covered
        cycles, then the bank-readiness bound, then the COL bus, and
        the remainder is the fixed command-to-data pipeline (the
        request was issued at service start, so there is no
        controller-idle bucket here).
        """
        cursor, hi = lo, gap.end
        if cursor >= hi:
            return
        lead = min(max(gap.turnaround_until, cursor), hi)
        if lead > cursor:
            comps["bus_contention"] += lead - cursor
            cursor = lead
        spans = self._refresh_spans
        while cursor < hi:
            nxt = hi
            for bound in (gap.bank_until, gap.colbus_until):
                if cursor < bound < nxt:
                    nxt = bound
            while (
                self._refresh_idx < len(spans)
                and spans[self._refresh_idx][1] <= cursor
            ):
                self._refresh_idx += 1
            in_refresh = False
            if self._refresh_idx < len(spans):
                start, end = spans[self._refresh_idx]
                if start <= cursor:
                    in_refresh = True
                    if end < nxt:
                        nxt = end
                elif start < nxt:
                    nxt = start
            if in_refresh:
                name = "refresh_blocked"
            elif cursor < gap.bank_until:
                name = "bank_busy"
            elif cursor < gap.colbus_until:
                name = "bus_contention"
            else:
                name = "pipeline"
            comps[name] += nxt - cursor
            cursor = nxt

    def _note_window(self, bank: int, start: int, end: int) -> None:
        """Tally one DATA packet into the telemetry windows."""
        window = self.window
        assert window is not None
        self._win_bank_bytes[(start // window, bank)] = (
            self._win_bank_bytes.get((start // window, bank), 0)
            + DATA_PACKET_BYTES
        )
        cursor = start
        while cursor < end:
            index = cursor // window
            edge = min(end, (index + 1) * window)
            self._win_busy[index] = (
                self._win_busy.get(index, 0) + edge - cursor
            )
            cursor = edge

    def finalize_windows(
        self, registry: MetricsRegistry, end_cycle: int
    ) -> None:
        """Emit the per-window heatmap series into ``registry``.

        One dense ``traffic.bank_bytes{channel=,bank=}`` series per
        bank the channel touched, plus a
        ``traffic.channel_busy_cycles{channel=}`` occupancy series —
        all windows from 0 through the run's end, zeros included, so
        heatmap columns align across banks and channels.
        """
        window = self.window
        if not window:
            return
        last = max(end_cycle - 1, 0) // window
        for bank in sorted({bank for _, bank in self._win_bank_bytes}):
            series = registry.series(
                "traffic.bank_bytes",
                help="bytes moved per telemetry window",
                channel=self.index,
                bank=bank,
            )
            for index in range(last + 1):
                series.sample(
                    float(index * window),
                    float(self._win_bank_bytes.get((index, bank), 0)),
                )
        busy = registry.series(
            "traffic.channel_busy_cycles",
            help="DATA-bus busy cycles per telemetry window",
            channel=self.index,
        )
        for index in range(last + 1):
            busy.sample(
                float(index * window), float(self._win_busy.get(index, 0))
            )

    def tick(self, cycle: int) -> Tuple[()]:
        if not self.queue or cycle < self._busy_until:
            return ()
        request = self._pick(cycle)
        if request is None:
            # Every queued client is over budget: sleep to the next
            # window boundary, when budgets reset.
            self._blocked_until = self.regulator.next_window_start(cycle)
            return ()
        self._blocked_until = None
        line_bytes = self.config.cacheline_bytes
        packets = self.config.packets_per_cacheline
        page_manager = self.memory.page_manager
        plans = page_manager is not None and page_manager.plans_precharge
        data_end = cycle
        first_bank = None
        mark = len(self.obs.gaps) if self.obs is not None else 0
        transfer = 0
        for offset in range(packets):
            location = self.mapping.decompose(
                request.address + offset * DATA_PACKET_BYTES
            )
            if first_bank is None:
                first_bank = location.bank
            outcome = self.memory.issue_access(
                location.bank - self.bank_offset,
                location.row,
                location.column,
                cycle,
                request.direction,
                precharge=plans and offset == packets - 1,
            )
            data = outcome.access.data
            data_end = data.end
            transfer += data.end - data.start
            self.busy_cycles += data.end - data.start
            if self.window:
                self._note_window(location.bank, data.start, data.end)
            self.bank_bytes[location.bank] = (
                self.bank_bytes.get(location.bank, 0) + DATA_PACKET_BYTES
            )
        if self.obs is not None:
            comps = dict.fromkeys(COMPONENTS, 0)
            comps["queue_wait"] = cycle - request.arrival
            comps["transfer"] = transfer
            self._sync_refresh_spans()
            for gap in self.obs.gaps[mark:]:
                self._classify_gap(max(gap.start, cycle), gap, comps)
            latency = data_end - request.arrival
            accounted = sum(comps.values())
            if accounted != latency:
                raise ObservabilityError(
                    f"latency attribution drifted on channel "
                    f"{self.index}: components sum to {accounted} but "
                    f"the request took {latency} cycles "
                    f"(client {request.client}, arrival "
                    f"{request.arrival})"
                )
            for name, spent in comps.items():
                self.component_cycles[name] += spent
                if self.component_hists is not None:
                    self.component_hists[name].observe(float(spent))
        self._busy_until = data_end
        self.last_data_end = max(self.last_data_end, data_end)
        self.completed += 1
        self.latency.observe(float(data_end - request.arrival))
        self.client_bytes[request.client] = (
            self.client_bytes.get(request.client, 0) + line_bytes
        )
        if first_bank is not None:
            pair = (request.client, first_bank)
            self.client_bank_bytes[pair] = (
                self.client_bank_bytes.get(pair, 0) + line_bytes
            )
        if self.regulator is not None and first_bank is not None:
            self.regulator.charge(request.client, first_bank, line_bytes, cycle)
        return ()

    @property
    def next_action_cycle(self) -> Optional[int]:
        if not self.queue:
            return None
        if self._blocked_until is not None:
            return self._blocked_until
        return self._busy_until


@dataclass(frozen=True)
class TrafficResult:
    """Outcome of one open-loop traffic run.

    Attributes:
        organization: Human-readable memory organization summary.
        channels: Channel count.
        clients: Client population size.
        requests: Requests offered (all are eventually served).
        cycles: Cycle of the last DATA packet end.
        p50_latency: Interpolated median request latency, in cycles.
        p90_latency: Interpolated 90th-percentile latency.
        p99_latency: Interpolated 99th-percentile latency.
        total_bytes: Bytes moved across all channels.
        channel_bytes: Bytes moved per channel, in channel order.
        bank_bytes: Bytes moved per global bank index.
        client_bytes: Bytes served per client index.
        client_bank_bytes: Bytes served per (client, bank) pair — the
            quantity the bank-budget regulator caps per window.
        regulated: Whether a bank-budget regulator was active.
        deferrals: Regulator deferral decisions (0 unregulated).
        component_cycles: Total cycles per latency component (see
            :data:`COMPONENTS`); their sum equals the sum of every
            request's measured latency, exactly.
        channel_busy_cycles: DATA-bus busy cycles per channel, in
            channel order.
        refreshes: Background refreshes issued across all channels
            (0 unless ``run_traffic(refresh=...)`` was enabled).
        scheduler: Registry name of the request scheduler the
            channels ran (``fcfs`` is the historical default).
    """

    organization: str
    channels: int
    clients: int
    requests: int
    cycles: int
    p50_latency: float
    p90_latency: float
    p99_latency: float
    total_bytes: int
    channel_bytes: Tuple[int, ...]
    bank_bytes: Dict[int, int] = field(default_factory=dict)
    client_bytes: Dict[int, int] = field(default_factory=dict)
    client_bank_bytes: Dict[Tuple[int, int], int] = field(default_factory=dict)
    regulated: bool = False
    deferrals: int = 0
    component_cycles: Dict[str, int] = field(default_factory=dict)
    channel_busy_cycles: Tuple[int, ...] = ()
    refreshes: int = 0
    scheduler: str = "fcfs"

    @property
    def channel_shares(self) -> Tuple[float, ...]:
        """Each channel's fraction of the bytes moved."""
        if self.total_bytes <= 0:
            return tuple(0.0 for _ in self.channel_bytes)
        return tuple(b / self.total_bytes for b in self.channel_bytes)

    def bank_share(self, bank: int) -> float:
        """One bank's fraction of the bytes moved."""
        if self.total_bytes <= 0:
            return 0.0
        return self.bank_bytes.get(bank, 0) / self.total_bytes

    @property
    def max_client_bank_rate(self) -> float:
        """Worst (client, bank) pair's bytes per cycle over the run.

        This is what regulation bounds: with a regulator of budget
        ``B`` over window ``W``, no client can sustain more than
        ``B / W`` bytes per cycle through any one bank.
        """
        if self.cycles <= 0 or not self.client_bank_bytes:
            return 0.0
        return max(self.client_bank_bytes.values()) / self.cycles

    def client_bank_share(self) -> Dict[int, float]:
        """Each client's fraction of the bytes served."""
        if self.total_bytes <= 0:
            return {client: 0.0 for client in self.client_bytes}
        return {
            client: served / self.total_bytes
            for client, served in self.client_bytes.items()
        }

    @property
    def channel_utilization(self) -> Tuple[float, ...]:
        """Each channel's DATA-bus busy fraction over the run."""
        if self.cycles <= 0 or not self.channel_busy_cycles:
            return tuple(0.0 for _ in self.channel_bytes)
        return tuple(b / self.cycles for b in self.channel_busy_cycles)

    def mean_component_cycles(self) -> Dict[str, float]:
        """Mean cycles per request spent in each latency component."""
        if self.requests <= 0:
            return {name: 0.0 for name in self.component_cycles}
        return {
            name: spent / self.requests
            for name, spent in self.component_cycles.items()
        }

    def component_shares(self) -> Dict[str, float]:
        """Each component's fraction of the total request latency."""
        total = sum(self.component_cycles.values())
        if total <= 0:
            return {name: 0.0 for name in self.component_cycles}
        return {
            name: spent / total
            for name, spent in self.component_cycles.items()
        }

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form; the inverse of :meth:`from_dict`."""
        return {
            "organization": self.organization,
            "channels": self.channels,
            "clients": self.clients,
            "requests": self.requests,
            "cycles": self.cycles,
            "p50_latency": self.p50_latency,
            "p90_latency": self.p90_latency,
            "p99_latency": self.p99_latency,
            "total_bytes": self.total_bytes,
            "channel_bytes": list(self.channel_bytes),
            "bank_bytes": {str(k): v for k, v in self.bank_bytes.items()},
            "client_bytes": {
                str(k): v for k, v in self.client_bytes.items()
            },
            "client_bank_bytes": {
                f"{client}:{bank}": v
                for (client, bank), v in self.client_bank_bytes.items()
            },
            "regulated": self.regulated,
            "deferrals": self.deferrals,
            "component_cycles": dict(self.component_cycles),
            "channel_busy_cycles": list(self.channel_busy_cycles),
            "refreshes": self.refreshes,
            "scheduler": self.scheduler,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TrafficResult":
        """Rebuild a result from its :meth:`to_dict` form."""
        def pair(text: str) -> Tuple[int, int]:
            client, _, bank = text.partition(":")
            return int(client), int(bank)

        return cls(
            organization=str(data["organization"]),
            channels=int(data["channels"]),  # type: ignore[arg-type]
            clients=int(data["clients"]),  # type: ignore[arg-type]
            requests=int(data["requests"]),  # type: ignore[arg-type]
            cycles=int(data["cycles"]),  # type: ignore[arg-type]
            p50_latency=float(data["p50_latency"]),  # type: ignore[arg-type]
            p90_latency=float(data["p90_latency"]),  # type: ignore[arg-type]
            p99_latency=float(data["p99_latency"]),  # type: ignore[arg-type]
            total_bytes=int(data["total_bytes"]),  # type: ignore[arg-type]
            channel_bytes=tuple(data["channel_bytes"]),  # type: ignore[arg-type]
            bank_bytes={
                int(k): int(v)
                for k, v in (data.get("bank_bytes") or {}).items()  # type: ignore[union-attr]
            },
            client_bytes={
                int(k): int(v)
                for k, v in (data.get("client_bytes") or {}).items()  # type: ignore[union-attr]
            },
            client_bank_bytes={
                pair(k): int(v)
                for k, v in (
                    data.get("client_bank_bytes") or {}
                ).items()  # type: ignore[union-attr]
            },
            regulated=bool(data.get("regulated", False)),
            deferrals=int(data.get("deferrals", 0)),  # type: ignore[arg-type]
            component_cycles={
                str(k): int(v)
                for k, v in (
                    data.get("component_cycles") or {}
                ).items()  # type: ignore[union-attr]
            },
            channel_busy_cycles=tuple(
                data.get("channel_busy_cycles") or ()  # type: ignore[arg-type]
            ),
            refreshes=int(data.get("refreshes", 0)),  # type: ignore[arg-type]
            scheduler=str(data.get("scheduler", "fcfs")),
        )

    def summary(self) -> str:
        """One-line human-readable result."""
        shares = "/".join(f"{s:.0%}" for s in self.channel_shares)
        text = (
            f"{self.organization}: {self.requests} reqs from "
            f"{self.clients} clients in {self.cycles} cyc; latency "
            f"p50={self.p50_latency:.0f} p90={self.p90_latency:.0f} "
            f"p99={self.p99_latency:.0f}; channel shares {shares}"
        )
        if self.channel_busy_cycles:
            util = "/".join(
                f"{u:.0%}" for u in self.channel_utilization
            )
            text += f"; util {util}"
        if self.regulated:
            text += f"; {self.deferrals} deferrals"
        return text


def run_traffic(
    config: Optional[MemorySystemConfig] = None,
    workload: Optional[TrafficWorkload] = None,
    *,
    channels: int = 1,
    devices: int = 1,
    regulator: Optional[BankBudgetRegulator] = None,
    registry: Optional[MetricsRegistry] = None,
    max_cycles: Optional[int] = None,
    telemetry_window: Optional[int] = None,
    refresh: Union[bool, int] = False,
    scheduler: Union[str, Scheduler, None] = None,
) -> TrafficResult:
    """Drive an open-loop multi-client workload through the fabric.

    Args:
        config: Memory organization (defaults to the paper's CLI
            system).  Its topology may be set directly, or via the
            ``channels``/``devices`` arguments.
        workload: Client population (defaults to
            :class:`~repro.traffic.workload.TrafficWorkload`).
        channels: Channel count, applied to ``config`` when its
            topology is the default.
        devices: Devices per channel, applied the same way.
        regulator: Optional per-client bank-budget regulator.
        registry: Metrics registry receiving the latency histogram
            (``traffic.latency_cycles``) and the per-component
            attribution histograms
            (``traffic.latency_component_cycles{component=...}``); a
            private one is used when omitted.
        max_cycles: Watchdog override.
        telemetry_window: Sampling window, in cycles; when set, dense
            per-(channel, bank) byte series and per-channel occupancy
            series land in ``registry`` (heatmap-ready).  None (the
            default) disables window sampling — runs pay nothing.
        refresh: Enable per-channel background refresh engines; pass
            True for the retention-window default cadence or an
            integer interval in cycles.  Refresh interference shows up
            in the ``refresh_blocked`` latency component.
        scheduler: Request-scheduling strategy: a registry name
            (``fcfs``, ``frfcfs``, ``mars`` — each channel gets its
            own instance) or a prebuilt
            :class:`~repro.traffic.scheduling.Scheduler` (single
            channel only; schedulers carry per-channel state).  None
            means FCFS, the historical behavior.

    Returns:
        The run's latency, attribution, and bandwidth-share
        accounting.
    """
    import dataclasses

    config = config or MemorySystemConfig.cli()
    if telemetry_window is not None and telemetry_window <= 0:
        raise ConfigurationError(
            f"telemetry window must be positive, got {telemetry_window}"
        )
    if (channels, devices) != (1, 1):
        if not config.topology.single:
            raise ConfigurationError(
                "pass the topology either on the config or as "
                "channels=/devices=, not both"
            )
        config = dataclasses.replace(
            config,
            topology=MemoryTopology(
                channels=channels, devices_per_channel=devices
            ),
        )
    workload = workload or TrafficWorkload()
    if regulator is not None and regulator.budget_bytes < config.cacheline_bytes:
        raise ConfigurationError(
            f"regulator budget ({regulator.budget_bytes} B) is smaller than "
            f"one cacheline ({config.cacheline_bytes} B); no request could "
            "ever be admitted"
        )
    # Not `registry or ...`: an empty registry is falsy but still the
    # caller's registry, and the metrics must land in it.
    registry = MetricsRegistry() if registry is None else registry
    if scheduler is None:
        scheduler = "fcfs"
    if isinstance(scheduler, str):
        scheduler_name = scheduler
        make_scheduler(scheduler_name)  # fail fast on unknown names
        scheduler_for = lambda index: make_scheduler(scheduler_name)  # noqa: E731
    else:
        scheduler_name = scheduler.name
        instance = scheduler
        if config.topology.channels > 1:
            raise ConfigurationError(
                "a prebuilt scheduler instance cannot be shared across "
                f"{config.topology.channels} channels (schedulers carry "
                "per-channel state); pass the registry name instead"
            )
        scheduler_for = lambda index: instance  # noqa: E731
    mapping = get_address_mapping(config)
    memory = make_memory(
        timing=config.timing,
        geometry=config.geometry,
        record_trace=False,
        topology=config.topology if not config.topology.single else None,
        page_manager=(
            make_page_manager(config) if config.topology.channels == 1 else None
        ),
        page_manager_factory=lambda: make_page_manager(config),
    )
    # Attach the mapping so stateful mappings (dream) are fed every
    # issued access; static mappings cost one branch per access.
    memory.mapping = mapping
    channel_memories = (
        memory.channel_memories
        if isinstance(memory, MemoryFabric)
        else [memory]
    )
    banks_per_channel = (
        memory.geometry.banks_per_channel
        if isinstance(memory, MemoryFabric)
        else memory.geometry.num_banks
    )
    latency = registry.histogram(
        "traffic.latency_cycles",
        bounds=LATENCY_BUCKETS,
        help="request latency (arrival to last DATA packet end), cycles",
    )
    component_hists = {
        name: registry.histogram(
            "traffic.latency_component_cycles",
            bounds=LATENCY_BUCKETS,
            help="per-request latency attribution, cycles per component",
            component=name,
        )
        for name in COMPONENTS
    }
    # One Instrumentation per channel memory: its DataBusGap records
    # drive the per-request attribution, and (with refresh enabled)
    # the refresh engine writes its spans into the same tracer.
    channel_obs = [Instrumentation() for _ in channel_memories]
    for channel_memory, obs in zip(channel_memories, channel_obs):
        channel_memory.obs = obs
    refresh_engines: List[RefreshEngine] = []
    if refresh:
        interval = (
            DEFAULT_INTERVAL_CYCLES if refresh is True else int(refresh)
        )
        for channel_memory, obs in zip(channel_memories, channel_obs):
            engine = RefreshEngine(channel_memory, interval=interval)
            engine.obs = obs
            refresh_engines.append(engine)
    servers = [
        ChannelServer(
            index=index,
            memory=channel_memory,
            mapping=mapping,
            config=config,
            latency=latency,
            bank_offset=index * banks_per_channel,
            regulator=regulator,
            obs=channel_obs[index],
            component_hists=component_hists,
            window=telemetry_window,
            scheduler=scheduler_for(index),
        )
        for index, channel_memory in enumerate(channel_memories)
    ]
    pump = ArrivalPump(generate_requests(workload, mapping), servers, mapping)
    if max_cycles is None:
        max_cycles = 50_000 + 600 * workload.requests
    ledger = _active_ledger()
    ledger_batch = 0
    ledger_key = (
        f"traffic/{config.describe()}/{workload.clients}c"
        f"/{workload.requests}r/seed{workload.seed}"
    )
    if scheduler_name != "fcfs":
        # Historical keys stay unchanged for the default scheduler.
        ledger_key += f"/sched-{scheduler_name}"
    if ledger is not None:
        ledger_batch = ledger.begin_batch(1, 1)
        for event in ("queued", "dispatched", "started"):
            ledger.record(
                event,
                batch=ledger_batch,
                index=0,
                key=ledger_key,
                label=(
                    f"traffic {workload.clients} clients over "
                    f"{config.topology.describe()}"
                ),
                worker="main",
            )
    wall_started = time.perf_counter()
    Simulation(
        [
            pump,
            *servers,
            *(BackgroundComponent(engine) for engine in refresh_engines),
        ],
        done=lambda sim: pump.done and all(server.idle for server in servers),
        max_cycles=max_cycles,
        label=(
            f"traffic: {workload.clients} clients over "
            f"{config.topology.describe()}"
        ),
    ).run()
    if ledger is not None:
        ledger.record(
            "completed",
            batch=ledger_batch,
            index=0,
            key=ledger_key,
            worker="main",
            wall_s=time.perf_counter() - wall_started,
        )
    bank_bytes: Dict[int, int] = {}
    client_bytes: Dict[int, int] = {}
    client_bank_bytes: Dict[Tuple[int, int], int] = {}
    for server in servers:
        for bank, moved in server.bank_bytes.items():
            bank_bytes[bank] = bank_bytes.get(bank, 0) + moved
        for client, served in server.client_bytes.items():
            client_bytes[client] = client_bytes.get(client, 0) + served
        for pair, served in server.client_bank_bytes.items():
            client_bank_bytes[pair] = client_bank_bytes.get(pair, 0) + served
    channel_bytes = tuple(m.bytes_transferred for m in channel_memories)
    cycles = max(server.last_data_end for server in servers)
    component_cycles = {name: 0 for name in COMPONENTS}
    for server in servers:
        for name, spent in server.component_cycles.items():
            component_cycles[name] += spent
        server.finalize_windows(registry, cycles)
    return TrafficResult(
        organization=config.describe(),
        channels=config.topology.channels,
        clients=workload.clients,
        requests=workload.requests,
        cycles=cycles,
        p50_latency=latency.p50,
        p90_latency=latency.p90,
        p99_latency=latency.p99,
        total_bytes=sum(channel_bytes),
        channel_bytes=channel_bytes,
        bank_bytes=bank_bytes,
        client_bytes=client_bytes,
        client_bank_bytes=client_bank_bytes,
        regulated=regulator is not None,
        deferrals=regulator.deferrals if regulator is not None else 0,
        component_cycles=component_cycles,
        channel_busy_cycles=tuple(
            server.busy_cycles for server in servers
        ),
        refreshes=sum(
            engine.refreshes_issued for engine in refresh_engines
        ),
        scheduler=scheduler_name,
    )
