"""Open-loop multi-client traffic layer.

The paper drives the memory system with a handful of compute-kernel
streams; production memory systems serve thousands of concurrent
request sources.  This package generates that load — synthetic
clients with Zipf-distributed hot sets and seeded Poisson arrivals —
and drives it through the channel fabric as kernel components,
reporting latency percentiles, per-bank/per-channel bandwidth shares,
and (optionally) the effect of per-client bank-budget regulation.
"""

from repro.traffic.workload import Request, TrafficWorkload, generate_requests
from repro.traffic.driver import (
    COMPONENTS,
    BankBudgetRegulator,
    TrafficResult,
    run_traffic,
)

__all__ = [
    "BankBudgetRegulator",
    "COMPONENTS",
    "Request",
    "TrafficResult",
    "TrafficWorkload",
    "generate_requests",
    "run_traffic",
]
