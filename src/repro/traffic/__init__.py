"""Open-loop multi-client traffic layer.

The paper drives the memory system with a handful of compute-kernel
streams; production memory systems serve thousands of concurrent
request sources.  This package generates that load — synthetic
clients with Zipf-distributed hot sets and seeded Poisson arrivals —
and drives it through the channel fabric as kernel components,
reporting latency percentiles, per-bank/per-channel bandwidth shares,
and (optionally) the effect of per-client bank-budget regulation.
Request-scheduling policy is pluggable through the
:data:`~repro.traffic.scheduling.SCHEDULERS` registry (FCFS,
first-ready FCFS, and MARS-style batch reordering built in).
"""

from repro.traffic.workload import Request, TrafficWorkload, generate_requests
from repro.traffic.driver import (
    COMPONENTS,
    BankBudgetRegulator,
    TrafficResult,
    run_traffic,
)
from repro.traffic.scheduling import (
    SCHEDULERS,
    Scheduler,
    list_schedulers,
    make_scheduler,
    register_scheduler,
)

__all__ = [
    "BankBudgetRegulator",
    "COMPONENTS",
    "Request",
    "SCHEDULERS",
    "Scheduler",
    "TrafficResult",
    "TrafficWorkload",
    "generate_requests",
    "list_schedulers",
    "make_scheduler",
    "register_scheduler",
    "run_traffic",
]
