"""Request-scheduling strategies (the scheduler registry).

The order a channel serves its pending requests used to be hard-coded
FCFS inside :class:`~repro.traffic.driver.ChannelServer`.  This module
makes the decision a first-class strategy with the same
register/list/factory shape as the address-mapping and page-policy
registries (all built on :mod:`repro.registry`): a
:class:`Scheduler` owns the pick, the server calls it in exactly one
place, and configurations select one by registry name.

Built-in schedulers:

* **fcfs** — first-come first-served: the historical behavior,
  byte-identical to the pre-registry server (including the regulator
  scan order and deferral accounting).
* **frfcfs** — first-ready FCFS: within a bounded window at the head
  of the queue, the oldest request whose target row is already open
  in its bank goes first; with no ready request, plain FCFS.
* **mars** — MARS-style batch reordering: requests in the window are
  grouped by (bank, row); the server keeps draining the batch it last
  served (page hits back to back), otherwise starts the largest
  batch.  A starvation age cap bounds the reordering: once the oldest
  request has waited ``age_cap`` cycles the scheduler reverts to
  strict FCFS until it drains.

Schedulers may carry per-channel state (``mars`` remembers its active
batch), so each :class:`~repro.traffic.driver.ChannelServer` owns one
instance — build them through :func:`make_scheduler`, once per server.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Tuple, Type

from repro.errors import ConfigurationError
from repro.registry import Registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.traffic.driver import ChannelServer
    from repro.traffic.workload import Request


class Scheduler:
    """Base strategy picking the next request a channel serves.

    One scheduler instance serves one channel for one run; any
    reordering state lives on the instance.

    Attributes:
        name: Registry name; also the ``scheduler`` spelling selecting
            it in :func:`~repro.traffic.driver.run_traffic`.
    """

    name = "base"

    def pick(self, server: "ChannelServer", cycle: int) -> Optional["Request"]:
        """Remove and return the request to serve now, or None.

        None means either the queue is empty or (with a regulator
        attached) every queued client is over budget; the server then
        sleeps to the next regulator window.
        """
        raise NotImplementedError

    def _first_admitted(
        self,
        server: "ChannelServer",
        positions: Iterable[int],
        cycle: int,
    ) -> Optional["Request"]:
        """Serve the first position the regulator admits.

        With no regulator the first position wins outright.  Rejected
        candidates count a regulator deferral each, matching the
        historical FCFS accounting.
        """
        regulator = server.regulator
        if regulator is None:
            for position in positions:
                request = server.queue[position]
                del server.queue[position]
                return request
            return None
        line_bytes = server.config.cacheline_bytes
        for position in positions:
            request = server.queue[position]
            bank = server.mapping.decompose(request.address).bank
            if regulator.allows(request.client, bank, line_bytes, cycle):
                del server.queue[position]
                return request
            regulator.deferrals += 1
        return None


#: Registry of scheduling strategies by name (see :mod:`repro.registry`).
SCHEDULERS: Registry[Type[Scheduler]] = Registry(
    "scheduler",
    class_label="scheduler class",
    unknown_template=(
        "unknown scheduler {name!r}; registered schedulers: {names}"
    ),
)


def register_scheduler(cls: Type[Scheduler]) -> Type[Scheduler]:
    """Class decorator adding a scheduler to the registry by its name."""
    return SCHEDULERS.register(cls)


def list_schedulers() -> List[str]:
    """Registered scheduler names, sorted."""
    return SCHEDULERS.names()


def make_scheduler(name: str, **params) -> Scheduler:
    """Instantiate the named scheduler (one instance per channel).

    Keyword arguments are forwarded to the scheduler's constructor
    (e.g. ``make_scheduler("mars", window=16, age_cap=256)``).

    Raises:
        ConfigurationError: If no scheduler is registered under
            ``name`` (the message lists the registered names).
    """
    cls = SCHEDULERS.resolve(name)
    return cls(**params)


@register_scheduler
class FcfsScheduler(Scheduler):
    """First-come first-served: the historical server behavior."""

    name = "fcfs"

    def pick(self, server: "ChannelServer", cycle: int) -> Optional["Request"]:
        # Byte-identical to the pre-registry ChannelServer._pick: the
        # no-regulator fast path pops the head, the regulated path
        # scans in arrival order counting a deferral per rejection.
        if server.regulator is None:
            return server.queue.popleft() if server.queue else None
        line_bytes = server.config.cacheline_bytes
        for position, request in enumerate(server.queue):
            bank = server.mapping.decompose(request.address).bank
            if server.regulator.allows(
                request.client, bank, line_bytes, cycle
            ):
                del server.queue[position]
                return request
            server.regulator.deferrals += 1
        return None


@register_scheduler
class FrFcfsScheduler(Scheduler):
    """First-ready FCFS: oldest open-row hit in the window goes first.

    Args:
        window: Queue positions eligible for reordering; requests
            beyond it are served in arrival order only.
    """

    name = "frfcfs"

    def __init__(self, window: int = 16) -> None:
        if window < 1:
            raise ConfigurationError(
                f"reorder window must be at least 1, got {window}"
            )
        self.window = window

    def _row_hit(
        self, server: "ChannelServer", request: "Request", cycle: int
    ) -> bool:
        location = server.mapping.decompose(request.address)
        local = location.bank - server.bank_offset
        server.memory.sync_bank(local, cycle)
        return server.memory.bank(local).open_row == location.row

    def pick(self, server: "ChannelServer", cycle: int) -> Optional["Request"]:
        if not server.queue:
            return None
        window = min(self.window, len(server.queue))
        hits = [
            position
            for position in range(window)
            if self._row_hit(server, server.queue[position], cycle)
        ]
        ready = set(hits)
        order = hits + [
            position
            for position in range(len(server.queue))
            if position not in ready
        ]
        return self._first_admitted(server, order, cycle)


@register_scheduler
class MarsScheduler(Scheduler):
    """MARS-style batching: group the window by (bank, row), drain
    batches back to back, bounded by a starvation age cap.

    Requests in the reorder window are grouped by their target
    (bank, row).  The scheduler keeps serving the batch it served
    last — turning a hot row's requests into consecutive page hits —
    and when that batch drains, starts the largest remaining one.
    Fairness is bounded: once the oldest queued request has waited
    ``age_cap`` cycles, the scheduler serves strictly in arrival
    order until the backlog clears.

    Args:
        window: Queue positions eligible for batching.
        age_cap: Cycles the oldest request may wait before the
            scheduler reverts to FCFS.
    """

    name = "mars"

    def __init__(self, window: int = 32, age_cap: int = 512) -> None:
        if window < 1:
            raise ConfigurationError(
                f"reorder window must be at least 1, got {window}"
            )
        if age_cap < 1:
            raise ConfigurationError(
                f"starvation age cap must be at least 1, got {age_cap}"
            )
        self.window = window
        self.age_cap = age_cap
        self._active_batch: Optional[Tuple[int, int]] = None

    def pick(self, server: "ChannelServer", cycle: int) -> Optional["Request"]:
        if not server.queue:
            return None
        if cycle - server.queue[0].arrival >= self.age_cap:
            request = self._first_admitted(
                server, range(len(server.queue)), cycle
            )
            if request is not None:
                location = server.mapping.decompose(request.address)
                self._active_batch = (location.bank, location.row)
            return request
        window = min(self.window, len(server.queue))
        batches: dict = {}
        for position in range(window):
            location = server.mapping.decompose(
                server.queue[position].address
            )
            batches.setdefault(
                (location.bank, location.row), []
            ).append(position)
        if self._active_batch in batches:
            chosen = self._active_batch
        else:
            # Largest batch; ties break toward the older batch head.
            chosen = max(
                batches,
                key=lambda key: (len(batches[key]), -batches[key][0]),
            )
        preferred = set(batches[chosen])
        order = batches[chosen] + [
            position
            for position in range(len(server.queue))
            if position not in preferred
        ]
        request = self._first_admitted(server, order, cycle)
        if request is not None:
            location = server.mapping.decompose(request.address)
            self._active_batch = (location.bank, location.row)
        return request
