"""SMC vs natural order on the fast-page-mode system.

Replays the Section 3 comparison on the serial FPM memory: the
natural-order processor touches one element of each stream per
iteration (thrashing the open rows whenever streams share a bank),
while the SMC's MSU services one FIFO at a time in bursts of up to the
FIFO depth, turning almost every access into a page hit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.errors import ConfigurationError
from repro.cpu.kernels import Kernel
from repro.cpu.streams import Alignment, StreamDescriptor
from repro.fpm.device import FpmGeometry, FpmMemorySystem
from repro.memsys.config import ELEMENT_BYTES
from repro.sim.kernel import Simulation, TransactionPump


@dataclass(frozen=True)
class FpmResult:
    """Outcome of one FPM run.

    Attributes:
        kernel: Kernel name.
        scheme: "natural-order" or "smc".
        total_ns: Time to complete every access.
        accesses: Word accesses performed.
        page_hit_rate: Fraction of accesses that hit an open row.
        percent_of_attainable: Delivered fraction of the all-hits
            bandwidth (the paper's §3 "attainable bandwidth").
    """

    kernel: str
    scheme: str
    total_ns: float
    accesses: int
    page_hit_rate: float
    percent_of_attainable: float


def _place(kernel: Kernel, geometry: FpmGeometry, length: int, stride: int,
           alignment: Alignment) -> List[StreamDescriptor]:
    """Vector placement for the FPM system.

    Staggered: vector k starts in bank k mod num_banks (its own page
    run); aligned: every vector starts in bank 0's page space, so
    natural-order accesses thrash a single open row.
    """
    rotation = geometry.num_banks * geometry.page_bytes
    footprint = ((length - 1) * stride + 1) * ELEMENT_BYTES
    region = -(-footprint // rotation) * rotation
    vectors = {}
    placed = []
    for spec in kernel.streams:
        if spec.vector not in vectors:
            index = len(vectors)
            offset = (
                (index % geometry.num_banks) * geometry.page_bytes
                if alignment is Alignment.STAGGERED
                else 0
            )
            vectors[spec.vector] = index * region + offset
        placed.append(
            StreamDescriptor(
                name=spec.name,
                base=vectors[spec.vector] + spec.offset * stride * ELEMENT_BYTES,
                stride=stride * spec.stride_factor,
                length=length,
                direction=spec.direction,
            )
        )
    return placed


def run_fpm(
    kernel: Kernel,
    scheme: str = "smc",
    length: int = 1024,
    fifo_depth: int = 32,
    stride: int = 1,
    alignment: Alignment = Alignment.ALIGNED,
    memory: Optional[FpmMemorySystem] = None,
) -> FpmResult:
    """Run one kernel on the FPM system under a given scheme.

    Args:
        kernel: The inner loop.
        scheme: "natural-order" (element accesses in program order) or
            "smc" (round-robin FIFO bursts of up to ``fifo_depth``).
        length: Vector length in elements.
        fifo_depth: SMC burst size, in elements.
        stride: Stride in elements.
        alignment: ALIGNED puts every vector in bank 0's pages (the
            worst case the paper's §3 hardware faced); STAGGERED gives
            each vector its own starting bank.
        memory: A pre-built memory system (defaults to the paper's
            2-bank, 1 KB-page configuration).

    Returns:
        The run's bandwidth accounting.
    """
    if scheme not in ("natural-order", "smc"):
        raise ConfigurationError(f"unknown scheme {scheme!r}")
    memory = memory or FpmMemorySystem()
    memory.reset()
    descriptors = _place(kernel, memory.geometry, length, stride, alignment)
    if scheme == "natural-order":
        addresses = (
            descriptor.element_address(index)
            for index in range(length)
            for descriptor in descriptors
        )
    else:
        addresses = _smc_access_order(descriptors, length, fifo_depth)
    # The FPM memory is serial (one access at a time, float-ns clock),
    # so each simulation-kernel step is simply the next access; the
    # real elapsed time accumulates inside the memory model.
    elapsed = _Elapsed()
    pump = TransactionPump(_access_steps(memory, addresses, elapsed))
    Simulation(
        [pump],
        done=lambda sim: pump.done,
        max_cycles=length * max(len(descriptors), 1) + 16,
        label=f"fpm-{scheme}: kernel={kernel.name}",
    ).run()
    accesses = memory.accesses
    attainable_ns = accesses * memory.timing.t_pc_ns
    now = elapsed.ns
    return FpmResult(
        kernel=kernel.name,
        scheme=scheme,
        total_ns=now,
        accesses=accesses,
        page_hit_rate=memory.page_hits / accesses if accesses else 0.0,
        percent_of_attainable=100.0 * attainable_ns / now if now else 0.0,
    )


class _Elapsed:
    """Mutable float-ns clock shared with the access generator."""

    __slots__ = ("ns",)

    def __init__(self) -> None:
        self.ns = 0.0


def _smc_access_order(
    descriptors: List[StreamDescriptor], length: int, fifo_depth: int
) -> Iterator[int]:
    """Addresses in the MSU's round-robin burst order."""
    cursors = [0] * len(descriptors)
    while any(c < length for c in cursors):
        for which, descriptor in enumerate(descriptors):
            burst_end = min(cursors[which] + fifo_depth, length)
            while cursors[which] < burst_end:
                yield descriptor.element_address(cursors[which])
                cursors[which] += 1


def _access_steps(
    memory: FpmMemorySystem, addresses: Iterator[int], elapsed: _Elapsed
) -> Iterator[int]:
    """One simulation-kernel step per FPM access, in order."""
    for step, address in enumerate(addresses):
        yield step
        elapsed.ns = memory.access(address, elapsed.ns)
