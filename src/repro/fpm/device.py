"""Fast-page-mode DRAM system: the SMC's proof-of-concept substrate.

Section 3: "We built two experimental versions of an SMC system ...
The memory system consisted of two banks of 1 Mbit x 36 fast-page
mode components with 1 Kbyte pages.  We found that an SMC
significantly improves the effective memory bandwidth, exploiting
over 90% of the attainable bandwidth for long-vector computations."

This package models that earlier memory system with Figure 1's
fast-page-mode timings so the SMC-vs-natural-order comparison can be
replayed on the technology the SMC was invented for.  Unlike the
packetized, pipelined Direct RDRAM, an FPM system is serial: one
access at a time, a page hit costing the page-mode cycle time t_PC
and a page miss the full random cycle time t_RC.  Timing here is in
nanoseconds — FPM parts are asynchronous.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.rdram.timing import DRAM_FAMILIES, ClassicDramTiming


@dataclass(frozen=True)
class FpmGeometry:
    """Geometry of the experimental system's memory.

    Defaults match the paper's proof-of-concept hardware: two banks
    with 1 Kbyte pages, 8-byte words.

    Attributes:
        num_banks: Interleaved banks.
        page_bytes: DRAM page size per bank.
        word_bytes: Bus transfer granularity.
    """

    num_banks: int = 2
    page_bytes: int = 1024
    word_bytes: int = 8

    def __post_init__(self) -> None:
        if min(self.num_banks, self.page_bytes, self.word_bytes) <= 0:
            raise ConfigurationError("geometry fields must be positive")


class FpmMemorySystem:
    """Serial fast-page-mode memory with page-interleaved banks.

    Each bank holds one open row; an access hitting it costs t_PC,
    anything else costs t_RC (which includes the precharge and row
    access of the asynchronous part).  Banks are page-interleaved:
    consecutive pages alternate banks, so distinct vectors can occupy
    distinct banks, and each bank remembers its own open row — the
    property the SMC's batching exploits.

    Args:
        timing: Figure 1 family entry (fast-page-mode by default).
        geometry: Bank/page layout.
    """

    def __init__(
        self,
        timing: Optional[ClassicDramTiming] = None,
        geometry: Optional[FpmGeometry] = None,
    ) -> None:
        self.timing = timing or DRAM_FAMILIES["fast-page-mode"]
        self.geometry = geometry or FpmGeometry()
        self._open_rows: List[Optional[int]] = [None] * self.geometry.num_banks
        self.accesses = 0
        self.page_hits = 0
        self.page_misses = 0

    def locate(self, address: int) -> tuple:
        """(bank, row) of a byte address under page interleaving."""
        page = address // self.geometry.page_bytes
        return page % self.geometry.num_banks, page // self.geometry.num_banks

    def access(self, address: int, now_ns: float) -> float:
        """Perform one word access; returns its completion time.

        The system is serial: the caller passes the previous access's
        completion time as ``now_ns``.
        """
        bank, row = self.locate(address)
        self.accesses += 1
        if self._open_rows[bank] == row:
            self.page_hits += 1
            return now_ns + self.timing.t_pc_ns
        self.page_misses += 1
        self._open_rows[bank] = row
        return now_ns + self.timing.t_rc_ns

    def reset(self) -> None:
        """Close all pages and clear statistics."""
        self._open_rows = [None] * self.geometry.num_banks
        self.accesses = 0
        self.page_hits = 0
        self.page_misses = 0

    @property
    def attainable_bandwidth_bytes_per_sec(self) -> float:
        """All-hits bandwidth: one word per page-mode cycle."""
        return self.geometry.word_bytes / (self.timing.t_pc_ns * 1e-9)
