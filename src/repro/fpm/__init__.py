"""Fast-page-mode substrate: the Section 3 proof-of-concept system."""

from repro.fpm.device import FpmGeometry, FpmMemorySystem
from repro.fpm.smc import FpmResult, run_fpm

__all__ = ["FpmGeometry", "FpmMemorySystem", "FpmResult", "run_fpm"]
