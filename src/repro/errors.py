"""Exception hierarchy for the repro package.

All errors raised by this library derive from :class:`ReproError`, so
callers can catch one type to handle any library failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A configuration object violates the paper's modeling assumptions.

    Raised, for example, when the cacheline size is not an integer
    multiple of the DATA packet size, or when the RDRAM page size is not
    an integer multiple of the cacheline size (Section 4.1).
    """


class ProtocolError(ReproError):
    """A command was issued in violation of the RDRAM timing protocol.

    The device model refuses illegal commands instead of silently
    mis-timing them; the protocol auditor raises this when replaying a
    trace that breaks a datasheet constraint.
    """


class SchedulingError(ReproError):
    """The memory controller reached an inconsistent scheduling state.

    For example, an MSU asked to service a FIFO whose stream is already
    exhausted, or a simulation that can no longer make forward progress
    (deadlock watchdog).
    """


class StreamError(ReproError):
    """A stream descriptor is malformed or used inconsistently.

    Raised for non-positive lengths or strides, misaligned base
    addresses, or reading past the end of a stream.
    """


class ObservabilityError(ReproError):
    """The instrumentation layer was misused or its accounting broke.

    Raised when a trace-dependent feature is requested for a run built
    without trace recording, when an exported trace file cannot be
    parsed, or when stall attribution fails to account for every cycle
    of a run (which would indicate an instrumentation bug).
    """


class ExecutionError(ReproError):
    """The sweep-execution backend could not complete a batch of runs.

    Raised when a worker process crashes repeatedly on the same sweep
    points (exhausting the retry budget), or when the process pool
    cannot be (re)started at all.
    """


class CompileError(ReproError):
    """A loop could not be compiled into stream descriptors.

    Raised by the compiler front end for syntax errors, non-linear or
    non-affine subscripts, indirect (gather/scatter) accesses, and
    references to the loop index outside a subscript.
    """
