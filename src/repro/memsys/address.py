"""Address decomposition strategies (the address-mapping registry).

A physical byte address is decomposed into a device location: (bank,
row, column), where *column* counts DATA packets within the open row.
Each decomposition is a registered, named strategy — a subclass of
:class:`AddressMapping` — and configurations select one by registry
name through the ``interleaving`` field.  Built-in mappings:

* **cli** — cacheline interleaving: successive cachelines map to
  successive banks, so a unit-stride stream cycles through all banks
  and a bank holds every eighth line of the stream.
* **pi** — page interleaving: a whole RDRAM page maps to one bank;
  successive pages map to successive banks, so a unit-stride stream
  stays in one bank for a full page and crossing a page boundary means
  switching banks.
* **swizzle** — page interleaving with the bank XOR-permuted by the
  row, so vertically aligned pages of different vectors (the aligned
  placement the paper identifies as pathological) spread across banks
  instead of all colliding in one.
* **dream** — DReAM-style *stateful* swizzle whose permutation evolves
  online: per-bank hit counters accumulate and the bank permutation
  re-arranges at epoch boundaries when traffic concentrates (see
  :class:`DreamInterleaving`).

Every mapping is an exact bijection between byte addresses and
(bank, row, column, byte-offset) tuples; the property-based tests
round-trip all registered mappings over random geometries.  To add a
mapping, subclass :class:`AddressMapping`, implement
``_decompose``/``_compose``, and decorate with
:func:`register_mapping` — consumers pick it up by name with no
further wiring (see ``docs/architecture.md``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Type

from repro.errors import ConfigurationError
from repro.memsys.config import MemorySystemConfig, MemoryTopology
from repro.rdram.timing import DATA_PACKET_BYTES
from repro.registry import Registry


@dataclass(frozen=True, order=True)
class Location:
    """A DATA-packet-granularity location on the RDRAM device.

    Attributes:
        bank: Bank index.
        row: Row (page) index within the bank.
        column: DATA-packet index within the row.
    """

    bank: int
    row: int
    column: int


class AddressMapping:
    """Base class: bidirectional byte-address <-> device-location map.

    Subclasses implement :meth:`_decompose` and :meth:`_compose` on
    pre-validated values; range checks and the doubled-bank even/odd
    permutation live here so every registered mapping shares them.

    Args:
        config: The memory-system configuration (geometry and line
            size; the ``interleaving`` field is what *selected* this
            mapping but is not re-read here).
    """

    #: Registry name; also the ``interleaving`` spelling selecting it.
    name = "base"

    #: True when the mapping carries online monitoring state: the
    #: device model feeds it every issued access through
    #: :meth:`observe_access` and it may re-arrange its bijection at
    #: epoch boundaries.  Stateful mappings are routed to the event
    #: kernel (the batch engine precomputes access plans, which a
    #: mid-run re-arrangement would invalidate).
    stateful = False

    def __init__(self, config: MemorySystemConfig) -> None:
        self.config = config
        self.remap_events = 0
        geometry = config.geometry
        self._num_banks = geometry.num_banks
        self._page_bytes = geometry.page_bytes
        self._rows = geometry.rows_per_bank
        self._line_bytes = config.cacheline_bytes
        self._packets_per_page = geometry.packets_per_page
        self._packets_per_line = config.packets_per_cacheline
        self._lines_per_page = geometry.page_bytes // config.cacheline_bytes
        self._capacity = geometry.capacity_bytes
        # On double-bank cores, adjacent banks share sense amps, so a
        # naive interleave (bank = index mod n) would make every pair
        # of consecutive lines/pages collide.  Permute the bank order
        # to visit all even banks first, then all odd banks, so
        # consecutive interleave units land two banks apart.
        if geometry.doubled_banks:
            evens = list(range(0, self._num_banks, 2))
            odds = list(range(1, self._num_banks, 2))
            self._bank_order = evens + odds
        else:
            self._bank_order = list(range(self._num_banks))
        self._bank_rank = [0] * self._num_banks
        for rank, bank in enumerate(self._bank_order):
            self._bank_rank[bank] = rank

    @property
    def capacity_bytes(self) -> int:
        """Total mappable bytes."""
        return self._capacity

    def decompose(self, address: int) -> Location:
        """Map a byte address to its device location.

        Raises:
            ConfigurationError: If the address is outside the device.
        """
        if not 0 <= address < self._capacity:
            raise ConfigurationError(
                f"address {address:#x} outside device capacity "
                f"{self._capacity:#x}"
            )
        return self._decompose(address)

    def compose(self, location: Location, byte_offset: int = 0) -> int:
        """Map a device location (plus a byte offset within its DATA
        packet) back to the byte address.

        Raises:
            ConfigurationError: If any coordinate is out of range.
        """
        if not 0 <= location.bank < self._num_banks:
            raise ConfigurationError(f"bank {location.bank} out of range")
        if not 0 <= location.row < self._rows:
            raise ConfigurationError(f"row {location.row} out of range")
        if not 0 <= location.column < self._packets_per_page:
            raise ConfigurationError(f"column {location.column} out of range")
        if not 0 <= byte_offset < DATA_PACKET_BYTES:
            raise ConfigurationError(f"byte offset {byte_offset} out of range")
        return self._compose(location, byte_offset)

    def bank_of(self, address: int) -> int:
        """Bank holding ``address`` (convenience for placement logic)."""
        return self.decompose(address).bank

    # -- topology hooks -------------------------------------------------
    # Single-channel mappings put everything on channel 0; the
    # channel-striping composition overrides these.

    @property
    def channels(self) -> int:
        """Independent channels this mapping spreads addresses over."""
        return 1

    def channel_of(self, address: int) -> int:
        """Channel holding ``address``."""
        return 0

    def channel_of_bank(self, bank: int) -> int:
        """Channel owning a global bank index."""
        return 0

    # -- online-monitoring hooks ----------------------------------------
    # Static mappings ignore these; a mapping with ``stateful = True``
    # receives every access the device model issues and may re-arrange
    # its (still bijective) address map at epoch boundaries.

    def observe_access(self, bank: int, row: int, now: int) -> int:
        """Feed one issued access to the mapping's monitor state.

        Called from :func:`repro.rdram.device.perform_access` when the
        mapping is attached to the memory model and ``stateful``.

        Returns:
            Number of re-arrangement (remap) events this observation
            triggered; static mappings return 0.
        """
        return 0

    # -- strategy hooks -------------------------------------------------

    def _decompose(self, address: int) -> Location:
        raise NotImplementedError

    def _compose(self, location: Location, byte_offset: int) -> int:
        raise NotImplementedError


#: Registry of mapping strategies by name (see :mod:`repro.registry`).
MAPPINGS: Registry[Type[AddressMapping]] = Registry(
    "address mapping",
    class_label="mapping class",
    unknown_template=(
        "unknown address mapping {name!r}; registered mappings: {names}"
    ),
)


def register_mapping(cls: Type[AddressMapping]) -> Type[AddressMapping]:
    """Class decorator adding a mapping to the registry by its name."""
    return MAPPINGS.register(cls)


def list_mappings() -> List[str]:
    """Registered mapping names, sorted."""
    return MAPPINGS.names()


class ChannelStriping(AddressMapping):
    """A channel-selector stage composed over a per-channel mapping.

    Successive cachelines rotate round-robin across channels; within
    its channel, each line is placed by the wrapped per-channel
    mapping (cli, pi, swizzle, or any registered strategy), unchanged.
    Locations use *global* bank indices — channel ``c``'s local bank
    ``b`` is global index ``c * banks_per_channel + b`` — mirroring
    how :class:`~repro.rdram.channel.RambusChannel` globalizes device
    banks, so controllers stay topology-agnostic.

    The composition is an exact bijection whenever the wrapped mapping
    is one: the (channel, local-line) split is a pure divmod of the
    line index, inverted in :meth:`_compose`.
    """

    name = "channel-striping"

    def __init__(self, config: MemorySystemConfig, base: AddressMapping) -> None:
        channels = config.topology.channels
        self.config = config
        self.base = base
        self._channels = channels
        self.banks_per_channel = base._num_banks
        self._num_banks = channels * base._num_banks
        self._page_bytes = base._page_bytes
        self._rows = base._rows
        self._line_bytes = base._line_bytes
        self._packets_per_page = base._packets_per_page
        self._packets_per_line = base._packets_per_line
        self._lines_per_page = base._lines_per_page
        self._capacity = channels * base._capacity
        self._bank_order = list(range(self._num_banks))
        self._bank_rank = list(range(self._num_banks))
        self.remap_events = 0
        # Statefulness is inherited from the wrapped mapping: the
        # selector stage itself is a pure divmod.
        self.stateful = base.stateful

    @property
    def channels(self) -> int:
        return self._channels

    def observe_access(self, bank: int, row: int, now: int) -> int:
        # Channel memories issue local bank indices, which are exactly
        # the wrapped mapping's bank space.
        events = self.base.observe_access(bank, row, now)
        self.remap_events = self.base.remap_events
        return events

    def channel_of(self, address: int) -> int:
        if not 0 <= address < self._capacity:
            raise ConfigurationError(
                f"address {address:#x} outside capacity {self._capacity:#x}"
            )
        return (address // self._line_bytes) % self._channels

    def channel_of_bank(self, bank: int) -> int:
        if not 0 <= bank < self._num_banks:
            raise ConfigurationError(f"bank {bank} out of range")
        return bank // self.banks_per_channel

    def _decompose(self, address: int) -> Location:
        line, offset = divmod(address, self._line_bytes)
        channel = line % self._channels
        local = self.base._decompose(
            (line // self._channels) * self._line_bytes + offset
        )
        return Location(
            bank=channel * self.banks_per_channel + local.bank,
            row=local.row,
            column=local.column,
        )

    def _compose(self, location: Location, byte_offset: int) -> int:
        channel, local_bank = divmod(location.bank, self.banks_per_channel)
        local_address = self.base._compose(
            Location(bank=local_bank, row=location.row, column=location.column),
            byte_offset,
        )
        line, offset = divmod(local_address, self._line_bytes)
        return (line * self._channels + channel) * self._line_bytes + offset


def get_address_mapping(config: MemorySystemConfig) -> AddressMapping:
    """Instantiate the mapping the configuration names.

    With a non-default :class:`~repro.memsys.config.MemoryTopology`,
    the named per-channel mapping is built over one channel's geometry
    (all its devices' banks) and, for multiple channels, composed with
    the :class:`ChannelStriping` selector stage.  The single-channel,
    single-device case constructs the bare mapping exactly as before.

    Raises:
        ConfigurationError: If no mapping is registered under the
            configuration's ``interleaving`` name (the message lists
            the registered names).
    """
    name = config.interleaving_name
    cls = MAPPINGS.resolve(name)
    if config.topology.single:
        return cls(config)
    per_channel = dataclasses.replace(
        config, geometry=config.channel_geometry, topology=MemoryTopology()
    )
    base = cls(per_channel)
    if config.topology.channels == 1:
        return base
    return ChannelStriping(config, base)


def AddressMap(config: MemorySystemConfig) -> AddressMapping:
    """Back-compat factory: the mapping selected by ``config``.

    Historical callers constructed ``AddressMap(config)`` directly;
    the class has become the :class:`AddressMapping` strategy registry
    and this factory keeps the old spelling working.
    """
    return get_address_mapping(config)


@register_mapping
class CachelineInterleaving(AddressMapping):
    """The paper's CLI map: successive cachelines in successive banks."""

    name = "cli"

    def _decompose(self, address: int) -> Location:
        line = address // self._line_bytes
        bank = self._bank_order[line % self._num_banks]
        line_in_bank = line // self._num_banks
        row = line_in_bank // self._lines_per_page
        line_in_row = line_in_bank % self._lines_per_page
        packet_in_line = (address % self._line_bytes) // DATA_PACKET_BYTES
        column = line_in_row * self._packets_per_line + packet_in_line
        return Location(bank=bank, row=row, column=column)

    def _compose(self, location: Location, byte_offset: int) -> int:
        rank = self._bank_rank[location.bank]
        line_in_row = location.column // self._packets_per_line
        packet_in_line = location.column % self._packets_per_line
        line_in_bank = location.row * self._lines_per_page + line_in_row
        line = line_in_bank * self._num_banks + rank
        return (
            line * self._line_bytes
            + packet_in_line * DATA_PACKET_BYTES
            + byte_offset
        )


@register_mapping
class PageInterleaving(AddressMapping):
    """The paper's PI map: successive pages in successive banks."""

    name = "pi"

    def _decompose(self, address: int) -> Location:
        page = address // self._page_bytes
        bank = self._bank_order[page % self._num_banks]
        row = page // self._num_banks
        column = (address % self._page_bytes) // DATA_PACKET_BYTES
        return Location(bank=bank, row=row, column=column)

    def _compose(self, location: Location, byte_offset: int) -> int:
        rank = self._bank_rank[location.bank]
        page = location.row * self._num_banks + rank
        return (
            page * self._page_bytes
            + location.column * DATA_PACKET_BYTES
            + byte_offset
        )


@register_mapping
class SwizzleInterleaving(AddressMapping):
    """Page interleaving with a row-dependent bank permutation.

    Like PI, address bits split into (page, offset) and the page into
    (row, rank); but the rank is then permuted by the row before the
    doubled-bank ordering is applied.  With a power-of-two bank count
    the permutation is the XOR ``rank ^ (row % num_banks)`` (its own
    inverse); otherwise the additive rotation
    ``(rank + row) % num_banks`` is used.  Either way each row sees a
    distinct bank permutation, so vectors whose bases are exactly a
    bank-stripe apart — which under PI would hammer a single bank —
    spread across all banks.
    """

    name = "swizzle"

    def _twist(self, rank: int, row: int) -> int:
        if self._num_banks & (self._num_banks - 1) == 0:
            return rank ^ (row % self._num_banks)
        return (rank + row) % self._num_banks

    def _untwist(self, rank: int, row: int) -> int:
        if self._num_banks & (self._num_banks - 1) == 0:
            return rank ^ (row % self._num_banks)
        return (rank - row) % self._num_banks

    def _decompose(self, address: int) -> Location:
        page = address // self._page_bytes
        row = page // self._num_banks
        rank = self._twist(page % self._num_banks, row)
        bank = self._bank_order[rank]
        column = (address % self._page_bytes) // DATA_PACKET_BYTES
        return Location(bank=bank, row=row, column=column)

    def _compose(self, location: Location, byte_offset: int) -> int:
        rank = self._untwist(self._bank_rank[location.bank], location.row)
        page = location.row * self._num_banks + rank
        return (
            page * self._page_bytes
            + location.column * DATA_PACKET_BYTES
            + byte_offset
        )


@register_mapping
class DreamInterleaving(AddressMapping):
    """DReAM-style dynamic re-arrangement of the bank bits.

    Decomposes like :class:`SwizzleInterleaving` — page interleaving
    with a row-dependent bank permutation — but the permutation
    carries an evolving *shift* driven by online monitoring.  The
    device model feeds every issued access through
    :meth:`observe_access`; per-bank-slot hit counters accumulate and,
    every ``remap_epoch_accesses`` accesses, the mapping checks for
    imbalance.  When the hottest slot draws more than twice its fair
    share of the epoch's traffic, the shift rotates by that slot's
    index (plus one), re-spreading the hot pages over different banks
    for subsequent accesses and counting one remap event.

    At any instant the map is an exact bijection (the shift enters the
    per-row permutation the same way swizzle's row term does); only
    *which* bijection is active evolves.  Like the published DReAM
    scheme, data migration on re-arrangement is not modeled — this is
    a bandwidth/latency model, so a remap simply changes where future
    decompositions land.
    """

    name = "dream"
    stateful = True

    def __init__(self, config: MemorySystemConfig) -> None:
        super().__init__(config)
        self.epoch_accesses = config.remap_epoch_accesses
        self._shift = 0
        self._observed = 0
        self._slot_hits = [0] * self._num_banks

    def _twist(self, rank: int, row: int) -> int:
        if self._num_banks & (self._num_banks - 1) == 0:
            return rank ^ ((row + self._shift) % self._num_banks)
        return (rank + row + self._shift) % self._num_banks

    def _untwist(self, rank: int, row: int) -> int:
        if self._num_banks & (self._num_banks - 1) == 0:
            return rank ^ ((row + self._shift) % self._num_banks)
        return (rank - row - self._shift) % self._num_banks

    def _decompose(self, address: int) -> Location:
        page = address // self._page_bytes
        row = page // self._num_banks
        rank = self._twist(page % self._num_banks, row)
        bank = self._bank_order[rank]
        column = (address % self._page_bytes) // DATA_PACKET_BYTES
        return Location(bank=bank, row=row, column=column)

    def _compose(self, location: Location, byte_offset: int) -> int:
        rank = self._untwist(self._bank_rank[location.bank], location.row)
        page = location.row * self._num_banks + rank
        return (
            page * self._page_bytes
            + location.column * DATA_PACKET_BYTES
            + byte_offset
        )

    def observe_access(self, bank: int, row: int, now: int) -> int:
        if 0 <= bank < self._num_banks:
            self._slot_hits[self._bank_rank[bank]] += 1
        self._observed += 1
        if self._observed % self.epoch_accesses:
            return 0
        hits = self._slot_hits
        self._slot_hits = [0] * self._num_banks
        total = sum(hits)
        peak = max(hits)
        # Re-arrange only on real imbalance: the hottest slot drawing
        # more than twice its fair share of the epoch's accesses.
        if total == 0 or peak * self._num_banks <= 2 * total:
            return 0
        hottest = hits.index(peak)
        self._shift = (self._shift + hottest + 1) % self._num_banks
        self.remap_events += 1
        return 1
