"""Address decomposition for the two interleaving schemes.

A physical byte address is decomposed into a device location: (bank,
row, column), where *column* counts DATA packets within the open row.
The two maps implement the paper's organizations:

* **Cacheline interleaving (CLI)** — successive cachelines map to
  successive banks, so a unit-stride stream cycles through all banks
  and a bank holds every eighth line of the stream.
* **Page interleaving (PI)** — a whole RDRAM page maps to one bank;
  successive pages map to successive banks, so a unit-stride stream
  stays in one bank for a full page and crossing a page boundary means
  switching banks.

Both maps are exact bijections between byte addresses and
(bank, row, column, byte-offset) tuples; the property-based tests
exercise round-tripping.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.memsys.config import Interleaving, MemorySystemConfig
from repro.rdram.timing import DATA_PACKET_BYTES


@dataclass(frozen=True, order=True)
class Location:
    """A DATA-packet-granularity location on the RDRAM device.

    Attributes:
        bank: Bank index.
        row: Row (page) index within the bank.
        column: DATA-packet index within the row.
    """

    bank: int
    row: int
    column: int


class AddressMap:
    """Bidirectional byte-address <-> device-location map.

    Args:
        config: The memory-system configuration; the interleaving
            field selects the CLI or PI map.
    """

    def __init__(self, config: MemorySystemConfig) -> None:
        self.config = config
        geometry = config.geometry
        self._num_banks = geometry.num_banks
        self._page_bytes = geometry.page_bytes
        self._rows = geometry.rows_per_bank
        self._line_bytes = config.cacheline_bytes
        self._packets_per_page = geometry.packets_per_page
        self._packets_per_line = config.packets_per_cacheline
        self._lines_per_page = geometry.page_bytes // config.cacheline_bytes
        self._capacity = geometry.capacity_bytes
        # On double-bank cores, adjacent banks share sense amps, so a
        # naive interleave (bank = index mod n) would make every pair
        # of consecutive lines/pages collide.  Permute the bank order
        # to visit all even banks first, then all odd banks, so
        # consecutive interleave units land two banks apart.
        if geometry.doubled_banks:
            evens = list(range(0, self._num_banks, 2))
            odds = list(range(1, self._num_banks, 2))
            self._bank_order = evens + odds
        else:
            self._bank_order = list(range(self._num_banks))
        self._bank_rank = [0] * self._num_banks
        for rank, bank in enumerate(self._bank_order):
            self._bank_rank[bank] = rank

    @property
    def capacity_bytes(self) -> int:
        """Total mappable bytes."""
        return self._capacity

    def decompose(self, address: int) -> Location:
        """Map a byte address to its device location.

        Raises:
            ConfigurationError: If the address is outside the device.
        """
        if not 0 <= address < self._capacity:
            raise ConfigurationError(
                f"address {address:#x} outside device capacity "
                f"{self._capacity:#x}"
            )
        if self.config.interleaving is Interleaving.CACHELINE:
            line = address // self._line_bytes
            bank = self._bank_order[line % self._num_banks]
            line_in_bank = line // self._num_banks
            row = line_in_bank // self._lines_per_page
            line_in_row = line_in_bank % self._lines_per_page
            packet_in_line = (address % self._line_bytes) // DATA_PACKET_BYTES
            column = line_in_row * self._packets_per_line + packet_in_line
        else:
            page = address // self._page_bytes
            bank = self._bank_order[page % self._num_banks]
            row = page // self._num_banks
            column = (address % self._page_bytes) // DATA_PACKET_BYTES
        return Location(bank=bank, row=row, column=column)

    def compose(self, location: Location, byte_offset: int = 0) -> int:
        """Map a device location (plus a byte offset within its DATA
        packet) back to the byte address.

        Raises:
            ConfigurationError: If any coordinate is out of range.
        """
        if not 0 <= location.bank < self._num_banks:
            raise ConfigurationError(f"bank {location.bank} out of range")
        if not 0 <= location.row < self._rows:
            raise ConfigurationError(f"row {location.row} out of range")
        if not 0 <= location.column < self._packets_per_page:
            raise ConfigurationError(f"column {location.column} out of range")
        if not 0 <= byte_offset < DATA_PACKET_BYTES:
            raise ConfigurationError(f"byte offset {byte_offset} out of range")
        rank = self._bank_rank[location.bank]
        if self.config.interleaving is Interleaving.CACHELINE:
            line_in_row = location.column // self._packets_per_line
            packet_in_line = location.column % self._packets_per_line
            line_in_bank = location.row * self._lines_per_page + line_in_row
            line = line_in_bank * self._num_banks + rank
            return (
                line * self._line_bytes
                + packet_in_line * DATA_PACKET_BYTES
                + byte_offset
            )
        page = location.row * self._num_banks + rank
        return (
            page * self._page_bytes
            + location.column * DATA_PACKET_BYTES
            + byte_offset
        )

    def bank_of(self, address: int) -> int:
        """Bank holding ``address`` (convenience for placement logic)."""
        return self.decompose(address).bank
