"""Memory-system organization: configuration, interleaving, policies."""

from repro.memsys.address import (
    AddressMap,
    AddressMapping,
    Location,
    MAPPINGS,
    get_address_mapping,
    list_mappings,
    register_mapping,
)
from repro.memsys.config import (
    ELEMENT_BYTES,
    ELEMENTS_PER_PACKET,
    Interleaving,
    MemorySystemConfig,
    PagePolicy,
)
from repro.memsys.pagemanager import (
    PAGE_POLICIES,
    PageManager,
    as_page_manager,
    list_page_policies,
    make_page_manager,
    register_page_policy,
)

__all__ = [
    "AddressMap",
    "AddressMapping",
    "Location",
    "MAPPINGS",
    "get_address_mapping",
    "list_mappings",
    "register_mapping",
    "ELEMENT_BYTES",
    "ELEMENTS_PER_PACKET",
    "Interleaving",
    "MemorySystemConfig",
    "PagePolicy",
    "PAGE_POLICIES",
    "PageManager",
    "as_page_manager",
    "list_page_policies",
    "make_page_manager",
    "register_page_policy",
]
