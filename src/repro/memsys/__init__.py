"""Memory-system organization: configuration, interleaving, policies."""

from repro.memsys.address import AddressMap, Location
from repro.memsys.config import (
    ELEMENT_BYTES,
    ELEMENTS_PER_PACKET,
    Interleaving,
    MemorySystemConfig,
    PagePolicy,
)

__all__ = [
    "AddressMap",
    "Location",
    "ELEMENT_BYTES",
    "ELEMENTS_PER_PACKET",
    "Interleaving",
    "MemorySystemConfig",
    "PagePolicy",
]
