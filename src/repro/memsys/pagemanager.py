"""Page-management strategies (the page-policy registry).

Whether a bank's sense amps are precharged after an access used to be
re-derived from the ``PagePolicy`` enum by every consumer — the SBU's
access-plan builder, the MSU, the natural-order controller, the L2
streamer and the random driver each branched on it.  This module makes
the decision a first-class strategy: a :class:`PageManager` owns the
precharge policy and the device model consults it in exactly one place
(:func:`repro.rdram.device.perform_access`).

A manager can act at two points:

* **plan time** — :meth:`PageManager.plan` rewrites a stream's access
  units before simulation; the classic closed-page policy plants its
  ``precharge_after`` flags here, so the precharge rides the last COL
  packet of each same-row run at zero ROW-bus cost.
* **run time** — managers with ``runtime = True`` are consulted on
  every access: :meth:`~PageManager.sync` materializes any precharge
  that became due while the bank sat untouched (the ``timeout``
  policy), :meth:`~PageManager.observe` feeds the access history to a
  predictor, and :meth:`~PageManager.close_after` decides whether this
  access's COL packet carries a precharge flag (the ``hybrid``
  policy).

Built-in policies: ``closed``, ``open``, ``timeout``
(auto-precharge after ``page_timeout_cycles`` idle cycles) and
``hybrid`` (a HAPPY-style per-row open/closed predictor with
saturating 2-bit counters).  To add one, subclass :class:`PageManager`
and decorate with :func:`register_page_policy` (see
``docs/architecture.md``).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple, Type, Union

from repro.errors import ConfigurationError
from repro.memsys.config import MemorySystemConfig, PagePolicy
from repro.registry import Registry


class PageManager:
    """Base strategy deciding when banks precharge.

    One manager instance serves all banks of one memory model for one
    run; per-bank state lives in instance dictionaries and is cleared
    by :meth:`reset` (called from the memory model's own ``reset``).

    Attributes:
        name: Registry name; also the ``page_policy`` spelling
            selecting it.
        plans_precharge: True if :meth:`plan` plants
            ``precharge_after`` flags (consumers use this where the
            historical code asked "is this a closed-page system?").
        runtime: True if the manager must be consulted on every access
            (sync/observe/close_after); False lets the paper's two
            policies skip all per-access overhead.
    """

    name = "base"
    plans_precharge = False
    runtime = False

    def plan(self, units: List) -> List:
        """Rewrite a stream's access-unit plan (default: unchanged).

        ``units`` is a list of :class:`repro.core.fifo.AccessUnit`;
        the manager may return a new list with ``precharge_after``
        flags set (it must not change locations or element counts).
        """
        return units

    def sync(self, memory, bank_index: int, now: int) -> None:
        """Materialize any policy action that became due before ``now``.

        Called before a bank's state is inspected.  The event-driven
        model cannot act on a bank spontaneously, so time-based
        policies close due banks lazily here (the bank was untouched
        since the action came due, so the late materialization is
        exact).
        """

    def observe(self, memory, bank_index: int, row: int) -> None:
        """Feed one access (about to issue) to the predictor state."""

    def close_after(self, memory, bank_index: int, row: int) -> bool:
        """True to carry a precharge flag on this access's COL packet."""
        return False

    def reset(self) -> None:
        """Clear per-run state (called by the memory model's reset)."""


#: Registry of page-management strategies by name (see
#: :mod:`repro.registry`).
PAGE_POLICIES: Registry[Type[PageManager]] = Registry(
    "page policy",
    class_label="page-manager class",
    unknown_template=(
        "unknown page policy {name!r}; registered policies: {names}"
    ),
)


def register_page_policy(cls: Type[PageManager]) -> Type[PageManager]:
    """Class decorator adding a manager to the registry by its name."""
    return PAGE_POLICIES.register(cls)


def list_page_policies() -> List[str]:
    """Registered page-policy names, sorted."""
    return PAGE_POLICIES.names()


def make_page_manager(config: MemorySystemConfig) -> PageManager:
    """Instantiate the page manager the configuration names.

    Raises:
        ConfigurationError: If no policy is registered under the
            configuration's ``page_policy`` name (the message lists
            the registered names).
    """
    cls = PAGE_POLICIES.resolve(config.page_policy_name)
    if cls is TimeoutPageManager:
        return TimeoutPageManager(timeout=config.page_timeout_cycles)
    return cls()


def as_page_manager(
    policy: Union[PageManager, PagePolicy, str],
    config: Optional[MemorySystemConfig] = None,
) -> PageManager:
    """Coerce a manager, a :class:`PagePolicy`, or a name to a manager.

    Historical call sites pass the config's ``page_policy`` enum
    member around; this keeps them working against the registry.
    """
    if isinstance(policy, PageManager):
        return policy
    name = policy.value if isinstance(policy, PagePolicy) else str(policy)
    base = config if config is not None else MemorySystemConfig()
    return make_page_manager(dataclasses.replace(base, page_policy=name))


@register_page_policy
class ClosedPageManager(PageManager):
    """The paper's closed-page policy, acting at plan time.

    The last access unit of every consecutive same-(bank, row) run
    carries a precharge flag on its COL packet, so the bank closes
    immediately after each burst with no ROW-bus traffic.
    """

    name = "closed"
    plans_precharge = True

    def plan(self, units: List) -> List:
        flagged = []
        for index, unit in enumerate(units):
            is_last_of_run = (
                index + 1 == len(units)
                or (
                    units[index + 1].location.bank,
                    units[index + 1].location.row,
                )
                != (unit.location.bank, unit.location.row)
            )
            flagged.append(
                dataclasses.replace(unit, precharge_after=is_last_of_run)
            )
        return flagged


@register_page_policy
class OpenPageManager(PageManager):
    """The paper's open-page policy: never precharge proactively.

    Banks close only when a conflicting access forces a precharge.
    """

    name = "open"


@register_page_policy
class TimeoutPageManager(PageManager):
    """Auto-precharge a bank left idle for ``timeout`` cycles.

    The middle ground between open and closed: row bursts still hit
    the open page, but a bank nobody revisits closes on its own, so
    the next conflicting access pays only t_RP-from-the-past instead
    of a full precharge/activate turnaround.  The precharge is
    materialized lazily at the bank's next inspection (see
    :meth:`PageManager.sync`) and is modeled like a COL-riding
    precharge: it consumes no ROW-bus bandwidth.

    Args:
        timeout: Idle cycles (since the later of the opening ACT and
            the last COL packet) before the bank closes.
    """

    name = "timeout"
    runtime = True

    def __init__(self, timeout: int = 64) -> None:
        if timeout <= 0:
            raise ConfigurationError(
                f"timeout must be positive, got {timeout}"
            )
        self.timeout = timeout

    def sync(self, memory, bank_index: int, now: int) -> None:
        bank = memory.bank(bank_index)
        if not bank.is_open:
            return
        due = max(bank.last_act_start, bank.last_col_end) + self.timeout
        if due <= now:
            memory.autoclose(bank_index, due)


@register_page_policy
class HybridPageManager(PageManager):
    """HAPPY-style per-row open/closed predictor.

    Each (bank, row) pair has a saturating 2-bit counter starting
    weakly open (2).  An access that re-touches the bank's previous
    row strengthens that row toward open; an access that switches the
    bank to a different row weakens the *previous* row (it would have
    been cheaper closed).  An access whose row predicts closed
    (counter < 2) carries a precharge flag on its COL packet — and if
    the prediction was wrong, the very next same-row access corrects
    the counter back toward open.
    """

    name = "hybrid"
    runtime = True

    #: Counter bounds and the open/closed decision threshold.
    SATURATION = 3
    THRESHOLD = 2

    def __init__(self) -> None:
        self._counters: Dict[Tuple[int, int], int] = {}
        self._last_row: Dict[int, int] = {}

    def observe(self, memory, bank_index: int, row: int) -> None:
        previous = self._last_row.get(bank_index)
        if previous == row:
            key = (bank_index, row)
            self._counters[key] = min(
                self.SATURATION,
                self._counters.get(key, self.THRESHOLD) + 1,
            )
        else:
            if previous is not None:
                key = (bank_index, previous)
                self._counters[key] = max(
                    0, self._counters.get(key, self.THRESHOLD) - 1
                )
            self._last_row[bank_index] = row

    def close_after(self, memory, bank_index: int, row: int) -> bool:
        return (
            self._counters.get((bank_index, row), self.THRESHOLD)
            < self.THRESHOLD
        )

    def reset(self) -> None:
        self._counters.clear()
        self._last_row.clear()
