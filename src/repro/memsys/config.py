"""Memory-system configuration shared by all controllers.

Bundles the RDRAM device parameters with the system-level choices the
paper varies: the interleaving scheme, the page-management policy, and
the cacheline size.  Validates the divisibility assumptions of
Section 4.1: the cacheline size is an integer multiple of the DATA
packet size, and the RDRAM page size is an integer multiple of the
cacheline size.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from repro.errors import ConfigurationError
from repro.rdram.device import RdramGeometry
from repro.rdram.timing import DATA_PACKET_BYTES, RdramTiming

#: Streams are composed of 64-bit elements throughout the paper.
ELEMENT_BYTES = 8

#: Elements per DATA packet (the paper's w_p): two 64-bit words fit in
#: one 128-bit DATA packet.
ELEMENTS_PER_PACKET = DATA_PACKET_BYTES // ELEMENT_BYTES


class Interleaving(enum.Enum):
    """How contiguous addresses are spread across RDRAM banks.

    CACHELINE (the paper's CLI): successive cachelines reside in
    different banks.  PAGE (the paper's PI): a whole RDRAM page maps to
    one bank, so crossing a page boundary means switching banks.
    """

    CACHELINE = "cli"
    PAGE = "pi"


class PagePolicy(enum.Enum):
    """Sense-amp management after a burst of accesses to a bank.

    CLOSED precharges after every access burst — best when successive
    accesses go to different pages.  OPEN leaves the sense amps
    unprecharged — best when successive accesses hit the same page.
    """

    CLOSED = "closed"
    OPEN = "open"


@dataclass(frozen=True)
class MemorySystemConfig:
    """Complete configuration of the modeled memory system.

    The paper evaluates two pairings — CLI with a closed-page policy
    and PI with an open-page policy — but any combination can be
    constructed for ablation studies.

    Attributes:
        timing: Direct RDRAM timing parameters.
        geometry: Device geometry (banks, page size, rows).
        interleaving: Bank interleaving scheme.
        page_policy: Sense-amp management policy.
        cacheline_bytes: Cacheline size used by natural-order accesses.
    """

    timing: RdramTiming = field(default_factory=RdramTiming)
    geometry: RdramGeometry = field(default_factory=RdramGeometry)
    interleaving: Interleaving = Interleaving.CACHELINE
    page_policy: PagePolicy = PagePolicy.CLOSED
    cacheline_bytes: int = 32

    def __post_init__(self) -> None:
        if self.cacheline_bytes % DATA_PACKET_BYTES:
            raise ConfigurationError(
                "cacheline size must be an integer multiple of the DATA "
                f"packet size: {self.cacheline_bytes} % {DATA_PACKET_BYTES} != 0"
            )
        if self.geometry.page_bytes % self.cacheline_bytes:
            raise ConfigurationError(
                "RDRAM page size must be an integer multiple of the "
                f"cacheline size: {self.geometry.page_bytes} % "
                f"{self.cacheline_bytes} != 0"
            )

    @classmethod
    def cli(cls, **overrides) -> "MemorySystemConfig":
        """The paper's CLI system: cacheline interleave, closed pages."""
        overrides.setdefault("interleaving", Interleaving.CACHELINE)
        overrides.setdefault("page_policy", PagePolicy.CLOSED)
        return cls(**overrides)

    @classmethod
    def pi(cls, **overrides) -> "MemorySystemConfig":
        """The paper's PI system: page interleave, open pages."""
        overrides.setdefault("interleaving", Interleaving.PAGE)
        overrides.setdefault("page_policy", PagePolicy.OPEN)
        return cls(**overrides)

    # -- derived quantities the paper's equations use -------------------

    @property
    def elements_per_cacheline(self) -> int:
        """The paper's L_c: 64-bit words per cacheline."""
        return self.cacheline_bytes // ELEMENT_BYTES

    @property
    def elements_per_page(self) -> int:
        """The paper's L_P: 64-bit words per RDRAM page."""
        return self.geometry.page_bytes // ELEMENT_BYTES

    @property
    def packets_per_cacheline(self) -> int:
        """DATA packets needed to move one cacheline."""
        return self.cacheline_bytes // DATA_PACKET_BYTES

    @property
    def cachelines_per_page(self) -> int:
        """Cachelines held by one RDRAM page."""
        return self.geometry.page_bytes // self.cacheline_bytes

    def describe(self) -> str:
        """One-line human-readable summary of the organization."""
        return (
            f"{self.interleaving.value.upper()} / {self.page_policy.value}-page, "
            f"{self.geometry.num_banks} banks, "
            f"{self.geometry.page_bytes} B pages, "
            f"{self.cacheline_bytes} B lines"
        )
