"""Memory-system configuration shared by all controllers.

Bundles the RDRAM device parameters with the system-level choices the
paper varies: the interleaving scheme, the page-management policy, and
the cacheline size.  Validates the divisibility assumptions of
Section 4.1: the cacheline size is an integer multiple of the DATA
packet size, and the RDRAM page size is an integer multiple of the
cacheline size.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Union

from repro.errors import ConfigurationError
from repro.rdram.device import RdramGeometry
from repro.rdram.timing import DATA_PACKET_BYTES, RdramTiming

#: Streams are composed of 64-bit elements throughout the paper.
ELEMENT_BYTES = 8

#: Elements per DATA packet (the paper's w_p): two 64-bit words fit in
#: one 128-bit DATA packet.
ELEMENTS_PER_PACKET = DATA_PACKET_BYTES // ELEMENT_BYTES


class Interleaving(enum.Enum):
    """How contiguous addresses are spread across RDRAM banks.

    CACHELINE (the paper's CLI): successive cachelines reside in
    different banks.  PAGE (the paper's PI): a whole RDRAM page maps to
    one bank, so crossing a page boundary means switching banks.
    SWIZZLE: page-granular like PI, but the bank is XOR-permuted with
    the row so vertically aligned pages of different vectors spread
    across banks instead of colliding (a DReAM-style remap ablation).

    Each value is the registry name of an
    :class:`~repro.memsys.address.AddressMapping` strategy; strings
    are accepted anywhere an ``Interleaving`` is, so out-of-tree
    mappings registered under new names work without extending this
    enum.
    """

    CACHELINE = "cli"
    PAGE = "pi"
    SWIZZLE = "swizzle"


class PagePolicy(enum.Enum):
    """Sense-amp management after a burst of accesses to a bank.

    CLOSED precharges after every access burst — best when successive
    accesses go to different pages.  OPEN leaves the sense amps
    unprecharged — best when successive accesses hit the same page.
    TIMEOUT auto-precharges a bank left idle for
    ``page_timeout_cycles``.  HYBRID predicts open-vs-closed per row
    with saturating counters (HAPPY-style).

    Each value is the registry name of a
    :class:`~repro.memsys.pagemanager.PageManager` strategy; strings
    are accepted anywhere a ``PagePolicy`` is, so out-of-tree policies
    registered under new names work without extending this enum.
    """

    CLOSED = "closed"
    OPEN = "open"
    TIMEOUT = "timeout"
    HYBRID = "hybrid"


@dataclass(frozen=True)
class MemoryTopology:
    """How the memory system gangs channels and devices.

    The paper models one Direct Rambus channel holding one device;
    production systems gang several independent channels — each with
    its own ROW/COL/DATA buses — and populate each channel with
    several devices.  A topology is purely multiplicative: per-channel
    behavior is exactly the single-channel model, and capacity and
    peak bandwidth scale with ``channels``.

    Attributes:
        channels: Independent Rambus channels (each with private
            buses and bank state).
        devices_per_channel: RDRAM devices sharing each channel's
            buses (a Direct Rambus channel supports up to 32).
    """

    channels: int = 1
    devices_per_channel: int = 1

    def __post_init__(self) -> None:
        if isinstance(self.channels, bool) or not isinstance(
            self.channels, int
        ):
            raise ConfigurationError(
                f"channels must be an integer, got {self.channels!r}"
            )
        if isinstance(self.devices_per_channel, bool) or not isinstance(
            self.devices_per_channel, int
        ):
            raise ConfigurationError(
                "devices_per_channel must be an integer, got "
                f"{self.devices_per_channel!r}"
            )
        if not 1 <= self.channels <= 16:
            raise ConfigurationError(
                f"channels must be in 1..16, got {self.channels}"
            )
        if not 1 <= self.devices_per_channel <= 32:
            raise ConfigurationError(
                "a Rambus channel holds 1 to 32 devices, got "
                f"{self.devices_per_channel}"
            )

    @property
    def single(self) -> bool:
        """True for the paper's one-channel, one-device system."""
        return self.channels == 1 and self.devices_per_channel == 1

    def describe(self) -> str:
        """Short human-readable form, e.g. ``"2ch x 4dev"``."""
        return f"{self.channels}ch x {self.devices_per_channel}dev"


@dataclass(frozen=True)
class MemorySystemConfig:
    """Complete configuration of the modeled memory system.

    The paper evaluates two pairings — CLI with a closed-page policy
    and PI with an open-page policy — but any combination can be
    constructed for ablation studies.

    Attributes:
        timing: Direct RDRAM timing parameters.
        geometry: Device geometry (banks, page size, rows).
        interleaving: Address-mapping registry name (an
            :class:`Interleaving` member or a bare string naming a
            registered mapping).
        page_policy: Page-manager registry name (a :class:`PagePolicy`
            member or a bare string naming a registered policy).
        cacheline_bytes: Cacheline size used by natural-order accesses.
        page_timeout_cycles: Idle cycles before the ``timeout`` page
            policy auto-precharges an open bank (ignored by the other
            policies).
        remap_epoch_accesses: Accesses between re-arrangement
            decisions for stateful mappings like ``dream`` (ignored by
            the static mappings).
        topology: Channel/device multiplicity (defaults to the
            paper's single channel with a single device).  When the
            topology names multiple devices per channel, ``geometry``
            stays the *per-device* geometry; the channel and fabric
            layers derive the ganged layout from it.
    """

    timing: RdramTiming = field(default_factory=RdramTiming)
    geometry: RdramGeometry = field(default_factory=RdramGeometry)
    interleaving: Union[Interleaving, str] = Interleaving.CACHELINE
    page_policy: Union[PagePolicy, str] = PagePolicy.CLOSED
    cacheline_bytes: int = 32
    page_timeout_cycles: int = 64
    remap_epoch_accesses: int = 1024
    topology: MemoryTopology = field(default_factory=MemoryTopology)

    def __post_init__(self) -> None:
        # Normalize known string spellings to the enum members so
        # ``config.interleaving is Interleaving.CACHELINE`` keeps
        # working however the caller spelled it; unknown names are kept
        # verbatim for out-of-tree registry plugins.
        try:
            object.__setattr__(
                self, "interleaving", Interleaving(self.interleaving)
            )
        except ValueError:
            pass
        try:
            object.__setattr__(self, "page_policy", PagePolicy(self.page_policy))
        except ValueError:
            pass
        if self.page_timeout_cycles <= 0:
            raise ConfigurationError(
                "page_timeout_cycles must be positive, got "
                f"{self.page_timeout_cycles}"
            )
        if self.remap_epoch_accesses <= 0:
            raise ConfigurationError(
                "remap_epoch_accesses must be positive, got "
                f"{self.remap_epoch_accesses}"
            )
        if self.cacheline_bytes % DATA_PACKET_BYTES:
            raise ConfigurationError(
                "cacheline size must be an integer multiple of the DATA "
                f"packet size: {self.cacheline_bytes} % {DATA_PACKET_BYTES} != 0"
            )
        if self.geometry.page_bytes % self.cacheline_bytes:
            raise ConfigurationError(
                "RDRAM page size must be an integer multiple of the "
                f"cacheline size: {self.geometry.page_bytes} % "
                f"{self.cacheline_bytes} != 0"
            )
        if not isinstance(self.topology, MemoryTopology):
            raise ConfigurationError(
                "topology must be a MemoryTopology, got "
                f"{type(self.topology).__name__}"
            )
        if not self.topology.single and not isinstance(
            self.geometry, RdramGeometry
        ):
            raise ConfigurationError(
                "a non-default topology needs a per-device RdramGeometry; "
                f"{type(self.geometry).__name__} already encodes device "
                "multiplicity"
            )

    @classmethod
    def cli(cls, **overrides) -> "MemorySystemConfig":
        """The paper's CLI system: cacheline interleave, closed pages."""
        overrides.setdefault("interleaving", Interleaving.CACHELINE)
        overrides.setdefault("page_policy", PagePolicy.CLOSED)
        return cls(**overrides)

    @classmethod
    def pi(cls, **overrides) -> "MemorySystemConfig":
        """The paper's PI system: page interleave, open pages."""
        overrides.setdefault("interleaving", Interleaving.PAGE)
        overrides.setdefault("page_policy", PagePolicy.OPEN)
        return cls(**overrides)

    # -- registry names -------------------------------------------------

    @property
    def interleaving_name(self) -> str:
        """Registry name of the address mapping ("cli", "pi", ...)."""
        if isinstance(self.interleaving, Interleaving):
            return self.interleaving.value
        return str(self.interleaving)

    @property
    def page_policy_name(self) -> str:
        """Registry name of the page manager ("closed", "open", ...)."""
        if isinstance(self.page_policy, PagePolicy):
            return self.page_policy.value
        return str(self.page_policy)

    # -- derived quantities the paper's equations use -------------------

    @property
    def elements_per_cacheline(self) -> int:
        """The paper's L_c: 64-bit words per cacheline."""
        return self.cacheline_bytes // ELEMENT_BYTES

    @property
    def elements_per_page(self) -> int:
        """The paper's L_P: 64-bit words per RDRAM page."""
        return self.geometry.page_bytes // ELEMENT_BYTES

    @property
    def packets_per_cacheline(self) -> int:
        """DATA packets needed to move one cacheline."""
        return self.cacheline_bytes // DATA_PACKET_BYTES

    @property
    def cachelines_per_page(self) -> int:
        """Cachelines held by one RDRAM page."""
        return self.geometry.page_bytes // self.cacheline_bytes

    # -- topology-derived layout ----------------------------------------

    @property
    def channel_geometry(self):
        """Geometry of one channel under this config's topology.

        The per-device ``geometry`` when the topology has one device
        per channel (or when the caller supplied a
        :class:`~repro.rdram.channel.ChannelGeometry` directly); a
        :class:`~repro.rdram.channel.ChannelGeometry` wrapping
        ``devices_per_channel`` copies of it otherwise.
        """
        if self.topology.devices_per_channel > 1:
            from repro.rdram.channel import ChannelGeometry

            return ChannelGeometry(
                num_devices=self.topology.devices_per_channel,
                device=self.geometry,
            )
        return self.geometry

    @property
    def banks_per_channel(self) -> int:
        """Banks addressable within one channel."""
        return self.channel_geometry.num_banks

    @property
    def total_banks(self) -> int:
        """Banks across the whole topology."""
        return self.topology.channels * self.banks_per_channel

    @property
    def total_capacity_bytes(self) -> int:
        """Mappable bytes across the whole topology."""
        return self.topology.channels * self.channel_geometry.capacity_bytes

    def describe(self) -> str:
        """One-line human-readable summary of the organization."""
        prefix = "" if self.topology.single else f"{self.topology.describe()}, "
        return (
            f"{prefix}"
            f"{self.interleaving_name.upper()} / {self.page_policy_name}-page, "
            f"{self.geometry.num_banks} banks, "
            f"{self.geometry.page_bytes} B pages, "
            f"{self.cacheline_bytes} B lines"
        )
