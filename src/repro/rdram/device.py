"""Cycle-level model of a single Direct RDRAM device.

The device owns three channel resources — the ROW command bus, the COL
command bus, and the dual-edge DATA bus — plus eight independent banks
of sense amplifiers.  Controllers drive it through an
*earliest-legal-issue* interface: for each command the device computes
the first cycle at or after the requested cycle at which every
datasheet constraint is satisfied, reserves the buses, updates bank
state, and returns the scheduled packet.

Constraints enforced here (bank-local rules live in
:mod:`repro.rdram.bank`):

* each sub-bus carries one packet per t_PACK window,
* t_RR between consecutive ROW ACT packets anywhere on the device,
* read DATA follows its COL RD by t_CAC + t_RDLY; write DATA follows
  its COL WR by t_CAC (no round-trip delay for writes),
* cycling the DATA bus from write back to read inserts the t_RW
  turnaround, which folds in the write-buffer retire packet
  (Section 5 of the paper: "we combine these two latencies into t_RW"),
* a COL packet may carry a precharge flag, modeling the Direct RDRAM's
  ability to initiate a precharge from a COL packet ("COL packets may
  also initiate a precharge operation") so that closed-page policies do
  not consume ROW-bus bandwidth for every PRER.

The paper's modeling simplifications are honored: no refresh engine,
and write-buffer retires appear only through t_RW.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError, ProtocolError
from repro.obs.core import DataBusGap, Instrumentation
from repro.rdram.bank import NEVER, Bank
from repro.rdram.packets import (
    BusDirection,
    ColCommand,
    ColPacket,
    DataPacket,
    RowCommand,
    RowPacket,
)
from repro.rdram.timing import DATA_PACKET_BYTES, RdramTiming


@dataclass(frozen=True)
class RdramGeometry:
    """Physical geometry of one RDRAM device.

    Defaults model the paper's 64 Mbit part: eight independent banks
    with 1 Kbyte pages (128 64-bit words per page).

    Some RDRAM cores use a "double bank" architecture (Section 2.2):
    sixteen banks whose adjacent pairs share sense-amplifier strips, so
    "two adjacent banks cannot be accessed simultaneously, making the
    total number of independent banks effectively eight".  Set
    ``doubled_banks=True`` (typically with ``num_banks=16``) to model
    that: activating a bank then requires both neighbors to be
    precharged, and the activate additionally honors t_RP measured
    from a neighbor's precharge (the shared strip must settle).

    Attributes:
        num_banks: Banks on the device.
        page_bytes: Sense-amp (page) size per bank, in bytes.
        rows_per_bank: Number of rows (pages) per bank.
        doubled_banks: Adjacent banks share sense amps.
    """

    num_banks: int = 8
    page_bytes: int = 1024
    rows_per_bank: int = 1024
    doubled_banks: bool = False

    def __post_init__(self) -> None:
        if self.num_banks <= 0 or self.page_bytes <= 0 or self.rows_per_bank <= 0:
            raise ConfigurationError("geometry fields must be positive")
        if self.page_bytes % DATA_PACKET_BYTES:
            raise ConfigurationError(
                "page size must be a whole number of DATA packets: "
                f"{self.page_bytes} % {DATA_PACKET_BYTES} != 0"
            )
        if self.doubled_banks and self.num_banks < 2:
            raise ConfigurationError(
                "a double-bank core needs at least two banks"
            )

    def neighbors(self, bank: int) -> Tuple[int, ...]:
        """Banks sharing sense amps with ``bank`` (double-bank cores).

        Adjacent pairs share a strip, so bank k neighbors k-1 and k+1
        within the device (no wraparound: the outermost strips are
        dedicated).
        """
        if not self.doubled_banks:
            return ()
        candidates = (bank - 1, bank + 1)
        return tuple(b for b in candidates if 0 <= b < self.num_banks)

    @property
    def capacity_bytes(self) -> int:
        """Total device capacity."""
        return self.num_banks * self.page_bytes * self.rows_per_bank

    @property
    def packets_per_page(self) -> int:
        """DATA packets held by one page."""
        return self.page_bytes // DATA_PACKET_BYTES


def record_data_gap(
    obs: Instrumentation,
    memory,
    bank_obj: Bank,
    bank_index: int,
    row: int,
    now: int,
    direction: BusDirection,
    col_start: int,
    delay: int,
) -> None:
    """Record a :class:`~repro.obs.core.DataBusGap` for an access whose
    DATA packet leaves the bus idle before it.

    Must be called after the access's COL start is computed but before
    any bus/bank state is updated.  ``memory`` is the device or channel
    issuing the access; both expose the same bus-state attributes.
    """
    data_start = col_start + delay
    idle_from = memory._data_bus_free
    if data_start <= idle_from:
        return
    if (
        direction is BusDirection.READ
        and memory._last_data_dir is BusDirection.WRITE
    ):
        turnaround_until = memory._last_write_data_end + memory.timing.t_rw
    else:
        turnaround_until = idle_from
    col_bus_free = memory._col_bus_free
    if (
        direction is BusDirection.READ
        and memory.explicit_retire
        and memory._retire_pending
    ):
        col_bus_free += memory.timing.t_pack
    obs.gaps.append(
        DataBusGap(
            start=idle_from,
            end=data_start,
            bank=bank_index,
            direction=direction.value,
            turnaround_until=turnaround_until,
            bank_until=bank_obj.earliest_col(0, row) + delay,
            colbus_until=col_bus_free + delay,
            request_until=now + delay,
        )
    )


def record_bank_close(
    obs: Instrumentation,
    bank_obj: Bank,
    bank_index: int,
    prer_start: int,
    via_col: bool = False,
) -> None:
    """Emit the "row open" span ended by a precharge.

    Must be called before the precharge is applied (the open row and
    its activate timestamp are read off the bank).
    """
    obs.tracer.add_span(
        f"bank{bank_index}",
        f"row {bank_obj.open_row}",
        bank_obj.last_act_start,
        prer_start,
        via_col=via_col,
    )


def flush_bank_observation(
    obs: Instrumentation, banks: List[Bank], end_cycle: int
) -> None:
    """Close "row open" spans for banks still open when a run ends."""
    for bank_obj in banks:
        if bank_obj.is_open:
            obs.tracer.add_span(
                f"bank{bank_obj.index}",
                f"row {bank_obj.open_row}",
                bank_obj.last_act_start,
                end_cycle,
                open_at_end=True,
            )


@dataclass
class ScheduledAccess:
    """Result of issuing a column access.

    Attributes:
        col: The COL command packet as scheduled.
        data: The DATA packet the access produces or consumes.
        precharged: True if the COL packet carried a precharge flag.
    """

    col: ColPacket
    data: DataPacket
    precharged: bool


@dataclass
class AccessIssue:
    """Result of one full stream access through :func:`perform_access`.

    Attributes:
        access: The scheduled COL/DATA packets.
        first_cmd: Start cycle of the first command the access needed
            (a forced PRER, the ACT, or the COL packet on a page hit).
        activated: True if the access issued a ROW ACT.
        conflicts: Precharges forced by open banks holding other rows
            (the target bank and, on double-bank cores, neighbors).
        page_hit: True if the needed row was already open.
    """

    access: ScheduledAccess
    first_cmd: int
    activated: bool
    conflicts: int
    page_hit: bool


def perform_access(
    memory,
    bank_index: int,
    row: int,
    column: int,
    now: int,
    direction: BusDirection,
    precharge: bool = False,
) -> AccessIssue:
    """Issue one stream access, opening the row as needed.

    This is the single place the open/conflict/precharge decision is
    made: every controller (MSU, natural-order, L2 streamer, random
    driver) routes its accesses through here via
    ``memory.issue_access``.  The sequence is the historical one —
    precharge the target bank if it holds the wrong row, precharge any
    open double-bank neighbors, activate, then the COL packet — so the
    paper's CLI+closed and PI+open pairings are bit-identical to the
    pre-registry code.

    The memory's attached :class:`~repro.memsys.pagemanager.PageManager`
    is consulted when it has runtime behavior: due timeouts are
    materialized before the bank is inspected, the access is fed to
    the predictor, and the manager may add a precharge flag to the COL
    packet.  ``precharge=True`` from the caller (a plan-time flag) is
    always honored.
    """
    manager = memory.page_manager
    runtime = manager is not None and manager.runtime
    if runtime:
        manager.sync(memory, bank_index, now)
        for neighbor in memory.geometry.neighbors(bank_index):
            manager.sync(memory, neighbor, now)
    bank_obj = memory.bank(bank_index)
    page_hit = bank_obj.open_row == row
    first_cmd: Optional[int] = None
    conflicts = 0
    activated = False
    if not page_hit:
        if bank_obj.is_open:
            conflicts += 1
            packet = memory.issue_prer(bank_index, now)
            first_cmd = packet.start
        for neighbor in memory.geometry.neighbors(bank_index):
            # Double-bank cores: an adjacent open bank shares the
            # sense amps and must be precharged first.
            if memory.bank(neighbor).is_open:
                conflicts += 1
                packet = memory.issue_prer(neighbor, now)
                if first_cmd is None:
                    first_cmd = packet.start
        packet = memory.issue_act(bank_index, row, now)
        if first_cmd is None:
            first_cmd = packet.start
        activated = True
    if runtime:
        manager.observe(memory, bank_index, row)
        if not precharge:
            precharge = manager.close_after(memory, bank_index, row)
    access = memory.issue_col(
        bank_index, row, column, now, direction, precharge=precharge
    )
    if first_cmd is None:
        first_cmd = access.col.start
    mapping = getattr(memory, "mapping", None)
    if mapping is not None and mapping.stateful:
        remaps = mapping.observe_access(bank_index, row, now)
        if remaps and memory.obs is not None:
            memory.obs.counters.incr("device.remap_events", remaps)
    if memory.obs is not None:
        memory.obs.counters.incr(
            "device.page_hits" if page_hit else "device.page_misses"
        )
        if conflicts:
            memory.obs.counters.incr("device.bank_conflicts", conflicts)
    return AccessIssue(
        access=access,
        first_cmd=first_cmd,
        activated=activated,
        conflicts=conflicts,
        page_hit=page_hit,
    )


class RdramDevice:
    """One Direct RDRAM device on a Rambus channel.

    Args:
        timing: Datasheet timing parameters.
        geometry: Bank/page geometry.
        record_trace: When True (default) every scheduled packet is
            appended to :attr:`trace` for auditing and timeline
            rendering.  Disable for long benchmark sweeps.
    """

    def __init__(
        self,
        timing: Optional[RdramTiming] = None,
        geometry: Optional[RdramGeometry] = None,
        record_trace: bool = True,
        explicit_retire: bool = False,
    ) -> None:
        self.timing = timing or RdramTiming()
        self.geometry = geometry or RdramGeometry()
        self.record_trace = record_trace
        #: When True, the write-buffer retire is modeled as an explicit
        #: COL RET packet occupying the COL bus between the last WR and
        #: the next RD, instead of being folded into t_RW alone.  Both
        #: models yield identical data timing (t_RW = t_PACK + t_RDLY);
        #: the explicit form additionally consumes a COL-bus slot, as
        #: the real protocol does.
        self.explicit_retire = explicit_retire
        self._retire_pending = False
        #: Optional instrumentation; attach one to record counters,
        #: bank-row spans, and DATA-bus gap records for stall
        #: attribution.  None (the default) costs one branch per issue.
        self.obs: Optional[Instrumentation] = None
        #: Optional page-management strategy consulted by
        #: :func:`perform_access`; None behaves like the open policy
        #: (callers decide precharge flags themselves).
        self.page_manager = None
        #: Optional attached address mapping; a *stateful* mapping
        #: (``mapping.stateful``) is fed every access by
        #: :func:`perform_access` so it can re-arrange at epoch
        #: boundaries.  None or a static mapping costs one branch.
        self.mapping = None
        self.banks: List[Bank] = [
            Bank(index=i, timing=self.timing) for i in range(self.geometry.num_banks)
        ]
        self.trace: List[object] = []
        self._row_bus_free = 0
        self._col_bus_free = 0
        self._data_bus_free = 0
        self._last_act_start = NEVER
        self._last_write_data_end = NEVER
        self._last_data_dir: Optional[BusDirection] = None
        self._data_packets_moved = 0

    # ------------------------------------------------------------------
    # queries

    @property
    def bytes_transferred(self) -> int:
        """Total bytes moved on the DATA bus so far."""
        return self._data_packets_moved * DATA_PACKET_BYTES

    def bank(self, index: int) -> Bank:
        """The bank object at ``index`` (bounds-checked)."""
        if not 0 <= index < self.geometry.num_banks:
            raise ProtocolError(
                f"bank index {index} out of range 0..{self.geometry.num_banks - 1}"
            )
        return self.banks[index]

    def earliest_act(self, bank: int, now: int) -> int:
        """First cycle >= now at which ACT to ``bank`` could start.

        On double-bank cores, the activate also waits out t_RP from
        any neighbor's precharge, and requires both neighbors closed
        (raising :class:`~repro.errors.ProtocolError` otherwise, since
        no amount of waiting legalizes it — the controller must
        precharge the neighbor first).
        """
        earliest = max(
            self.bank(bank).earliest_act(now),
            self._row_bus_free,
            self._last_act_start + self.timing.t_rr,
        )
        for neighbor in self.geometry.neighbors(bank):
            neighbor_bank = self.banks[neighbor]
            if neighbor_bank.is_open:
                raise ProtocolError(
                    f"bank {bank}: ACT while adjacent bank {neighbor} is "
                    "open (shared sense amps on a double-bank core)"
                )
            earliest = max(
                earliest, neighbor_bank.last_prer_start + self.timing.t_rp
            )
        return earliest

    def earliest_prer(self, bank: int, now: int) -> int:
        """First cycle >= now at which PRER to ``bank`` could start."""
        return max(self.bank(bank).earliest_prer(now), self._row_bus_free)

    def earliest_col(
        self, bank: int, row: int, now: int, direction: BusDirection
    ) -> int:
        """First cycle >= now at which a COL RD/WR could start.

        Accounts for bank readiness, COL-bus occupancy, DATA-bus
        occupancy at the derived transfer slot, and the write-to-read
        turnaround when ``direction`` is READ after write data.
        """
        delay = (
            self.timing.read_data_delay()
            if direction is BusDirection.READ
            else self.timing.write_data_delay()
        )
        col_bus_free = self._col_bus_free
        if (
            direction is BusDirection.READ
            and self.explicit_retire
            and self._retire_pending
        ):
            # A COL RET packet must go out between the last WR and this
            # RD; leave it a COL-bus slot.
            col_bus_free += self.timing.t_pack
        start = max(self.bank(bank).earliest_col(now, row), col_bus_free)
        data_start = max(start + delay, self._data_bus_free)
        if direction is BusDirection.READ and self._last_data_dir is BusDirection.WRITE:
            data_start = max(
                data_start, self._last_write_data_end + self.timing.t_rw
            )
        return data_start - delay

    # ------------------------------------------------------------------
    # issue operations

    def issue_act(self, bank: int, row: int, now: int) -> RowPacket:
        """Issue a ROW ACT opening ``row`` in ``bank`` at the earliest
        legal cycle at or after ``now``.

        Returns:
            The scheduled ROW packet.
        """
        if not 0 <= row < self.geometry.rows_per_bank:
            raise ProtocolError(
                f"row {row} out of range 0..{self.geometry.rows_per_bank - 1}"
            )
        start = self.earliest_act(bank, now)
        if self.obs is not None:
            self.obs.counters.incr("device.row_act")
        self.bank(bank).apply_act(start, row)
        self._row_bus_free = start + self.timing.t_pack
        self._last_act_start = start
        packet = RowPacket(command=RowCommand.ACT, bank=bank, row=row, start=start)
        if self.record_trace:
            self.trace.append(packet)
        return packet

    def issue_prer(self, bank: int, now: int) -> RowPacket:
        """Issue a ROW PRER closing ``bank`` at the earliest legal cycle."""
        start = self.earliest_prer(bank, now)
        if self.obs is not None:
            self.obs.counters.incr("device.row_prer")
            record_bank_close(self.obs, self.bank(bank), bank, start)
        self.bank(bank).apply_prer(start)
        self._row_bus_free = start + self.timing.t_pack
        packet = RowPacket(command=RowCommand.PRER, bank=bank, row=None, start=start)
        if self.record_trace:
            self.trace.append(packet)
        return packet

    def issue_col(
        self,
        bank: int,
        row: int,
        column: int,
        now: int,
        direction: BusDirection,
        precharge: bool = False,
    ) -> ScheduledAccess:
        """Issue a COL RD/WR moving one DATA packet.

        Args:
            bank: Target bank.
            row: Open row the access is served from.
            column: DATA-packet index within the row.
            now: Earliest cycle the controller wants the packet.
            direction: READ or WRITE.
            precharge: Carry a precharge flag, closing the bank once
                the bank-local precharge constraints allow.

        Returns:
            The scheduled COL and DATA packets.
        """
        if not 0 <= column < self.geometry.packets_per_page:
            raise ProtocolError(
                f"column {column} out of range "
                f"0..{self.geometry.packets_per_page - 1}"
            )
        start = self.earliest_col(bank, row, now, direction)
        bank_obj = self.bank(bank)
        if self.obs is not None:
            self.obs.counters.incr("device.data_packets")
            record_data_gap(
                self.obs,
                self,
                bank_obj,
                bank,
                row,
                now,
                direction,
                start,
                (
                    self.timing.read_data_delay()
                    if direction is BusDirection.READ
                    else self.timing.write_data_delay()
                ),
            )
        if (
            direction is BusDirection.READ
            and self.explicit_retire
            and self._retire_pending
        ):
            retire = ColPacket(
                command=ColCommand.RET,
                bank=bank,
                row=row,
                column=0,
                start=start - self.timing.t_pack,
            )
            if self.record_trace:
                self.trace.append(retire)
            self._retire_pending = False
        bank_obj.apply_col(start, row)
        self._col_bus_free = start + self.timing.t_pack
        delay = (
            self.timing.read_data_delay()
            if direction is BusDirection.READ
            else self.timing.write_data_delay()
        )
        data_start = start + delay
        data = DataPacket(
            direction=direction, bank=bank, start=data_start, source_col_start=start
        )
        self._data_bus_free = data_start + self.timing.t_pack
        self._last_data_dir = direction
        if direction is BusDirection.WRITE:
            self._last_write_data_end = data_start + self.timing.t_pack
            self._retire_pending = True
        self._data_packets_moved += 1
        cmd = ColCommand.RD if direction is BusDirection.READ else ColCommand.WR
        col = ColPacket(command=cmd, bank=bank, row=row, column=column, start=start)
        if self.record_trace:
            self.trace.append(col)
            self.trace.append(data)
        if precharge:
            # The precharge rides the COL packet: it takes effect at the
            # earliest bank-legal cycle at or after the COL packet, with
            # no ROW-bus occupancy and no t_RR interaction.
            prer_start = bank_obj.earliest_prer(start)
            if self.obs is not None:
                record_bank_close(
                    self.obs, bank_obj, bank, prer_start, via_col=True
                )
            bank_obj.apply_prer(prer_start)
            if self.record_trace:
                self.trace.append(
                    RowPacket(
                        command=RowCommand.PRER,
                        bank=bank,
                        row=None,
                        start=prer_start,
                        via_col=True,
                    )
                )
        return ScheduledAccess(col=col, data=data, precharged=precharge)

    def issue_access(
        self,
        bank: int,
        row: int,
        column: int,
        now: int,
        direction: BusDirection,
        precharge: bool = False,
    ) -> AccessIssue:
        """Issue one full stream access (see :func:`perform_access`)."""
        return perform_access(
            self, bank, row, column, now, direction, precharge=precharge
        )

    def sync_bank(self, index: int, now: int) -> None:
        """Materialize any page-manager action due on a bank.

        Call before inspecting a bank's open-row state from outside
        the access path (e.g. look-ahead scheduling policies); a no-op
        without a runtime page manager.
        """
        if self.page_manager is not None and self.page_manager.runtime:
            self.page_manager.sync(self, index, now)

    def autoclose(self, bank: int, due: int) -> None:
        """Close a bank from a page-manager timeout at cycle ``due``.

        Modeled like a COL-riding precharge: the PRER takes effect at
        the earliest bank-legal cycle at or after ``due``, with no
        ROW-bus occupancy.  ``due`` may be in the past relative to the
        current access — the bank was untouched since, so the late
        materialization is exact.
        """
        bank_obj = self.bank(bank)
        start = bank_obj.earliest_prer(due)
        if self.obs is not None:
            self.obs.counters.incr("device.autoclose")
            record_bank_close(self.obs, bank_obj, bank, start, via_col=True)
        bank_obj.apply_prer(start)
        if self.record_trace:
            self.trace.append(
                RowPacket(
                    command=RowCommand.PRER,
                    bank=bank,
                    row=None,
                    start=start,
                    via_col=True,
                )
            )

    def finish_observation(self, end_cycle: int) -> None:
        """Close any still-open "row open" spans at the end of a run."""
        if self.obs is not None:
            flush_bank_observation(self.obs, self.banks, end_cycle)

    def reset(self) -> None:
        """Return the device and all banks to the power-on state."""
        for bank in self.banks:
            bank.reset()
        if self.page_manager is not None:
            self.page_manager.reset()
        self.trace.clear()
        self._row_bus_free = 0
        self._col_bus_free = 0
        self._data_bus_free = 0
        self._last_act_start = NEVER
        self._last_write_data_end = NEVER
        self._last_data_dir = None
        self._data_packets_moved = 0
        self._retire_pending = False
