"""Command and data packet types for the Direct RDRAM channel.

All communication with a Direct RDRAM happens in four-cycle packets on
three sub-buses: a ROW command bus (ACT / PRER packets), a COL command
bus (RD / WR packets, plus retires folded into the turnaround model),
and the 16-bit dual-edge DATA bus.  This module defines the command
vocabulary and the trace records the device emits, which the protocol
auditor and the experiment timelines consume.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class RowCommand(enum.Enum):
    """Commands carried by ROW packets."""

    ACT = "ACT"
    PRER = "PRER"


class ColCommand(enum.Enum):
    """Commands carried by COL packets.

    RET retires the device's write buffer; it addresses no bank row
    and appears in traces only when the device models retires
    explicitly (``explicit_retire=True``) rather than folding them
    into the t_RW turnaround.
    """

    RD = "RD"
    WR = "WR"
    RET = "RET"


class BusDirection(enum.Enum):
    """Direction of a DATA packet on the channel.

    READ data travels from the RDRAM to the controller; WRITE data
    travels with the commands.  Cycling the bus from WRITE back to READ
    costs the turnaround time t_RW.
    """

    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class RowPacket:
    """A ROW command packet occupying the row bus for t_PACK cycles.

    Attributes:
        command: ACT or PRER.
        bank: Target bank index on the device.
        row: Target row for ACT; ignored (None) for PRER.
        start: Interface-clock cycle at which the packet starts.
        via_col: True for a precharge carried by a COL packet's
            precharge flag; such a precharge affects bank state but
            does not occupy the ROW command bus.
    """

    command: RowCommand
    bank: int
    row: Optional[int]
    start: int
    via_col: bool = False

    @property
    def end(self) -> int:
        """First cycle after the packet (start + 4 for a t_PACK of 4)."""
        return self.start + 4


@dataclass(frozen=True)
class ColPacket:
    """A COL command packet occupying the col bus for t_PACK cycles.

    Attributes:
        command: RD or WR.
        bank: Target bank index.
        row: Row the access is served from (the open row).
        column: Column address, in DATA-packet units within the row.
        start: Interface-clock cycle at which the packet starts.
    """

    command: ColCommand
    bank: int
    row: int
    column: int
    start: int

    @property
    def end(self) -> int:
        return self.start + 4


@dataclass(frozen=True)
class DataPacket:
    """A 16-byte DATA packet occupying the data bus for t_PACK cycles.

    Attributes:
        direction: READ or WRITE.
        bank: Bank the data belongs to.
        start: First cycle of the transfer.
        source_col_start: Start cycle of the COL packet that initiated
            this transfer, for latency accounting.
    """

    direction: BusDirection
    bank: int
    start: int
    source_col_start: int

    @property
    def end(self) -> int:
        return self.start + 4
