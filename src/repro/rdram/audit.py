"""Independent protocol auditor for Direct RDRAM packet traces.

The auditor re-derives every timing constraint from the raw packet
trace a device recorded, *without* reusing the device's scheduling
logic.  Any run of the simulator can therefore be checked end-to-end:
if the device or a controller ever schedules an illegal packet, the
audit raises :class:`~repro.errors.ProtocolError` naming the violated
rule.  Tests and the ``audit=True`` debug switch of the simulation
runner use this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.errors import ProtocolError
from repro.rdram.bank import NEVER
from repro.rdram.packets import (
    BusDirection,
    ColCommand,
    ColPacket,
    DataPacket,
    RowCommand,
    RowPacket,
)
from repro.rdram.timing import RdramTiming


@dataclass
class _BankReplay:
    """Replayed state of one bank during an audit pass."""

    open_row: Optional[int] = None
    last_act: int = NEVER
    last_prer: int = NEVER
    last_col_end: int = NEVER


@dataclass
class AuditReport:
    """Summary statistics gathered while auditing a trace.

    Attributes:
        row_packets: ROW packets that occupied the row bus.
        col_packets: COL packets audited.
        data_packets: DATA packets audited.
        turnarounds: Write-to-read bus direction changes observed.
        banks_touched: Distinct banks referenced by the trace.
    """

    row_packets: int = 0
    col_packets: int = 0
    data_packets: int = 0
    turnarounds: int = 0
    banks_touched: int = 0


def _sort_key(packet: object) -> tuple:
    # Replay in start order; at equal start cycles, apply ROW ACT
    # before COL (t_RCD makes same-cycle pairs impossible on one bank,
    # but different banks may legitimately tie) and PRER last so a
    # same-cycle COL still sees the open row.
    if isinstance(packet, RowPacket):
        priority = 2 if packet.command is RowCommand.PRER else 0
    elif isinstance(packet, ColPacket):
        priority = 1
    else:
        priority = 3
    return (packet.start, priority)


def audit_trace(
    trace: Sequence[object],
    timing: Optional[RdramTiming] = None,
    num_banks: int = 8,
    doubled_banks: bool = False,
    banks_per_device: Optional[int] = None,
) -> AuditReport:
    """Verify a packet trace against the RDRAM protocol.

    Args:
        trace: Packets recorded by :class:`~repro.rdram.device.RdramDevice`
            or :class:`~repro.rdram.channel.RambusChannel` (ROW, COL,
            and DATA packets in any order; channels use global bank
            indices).
        timing: Timing parameters the trace should obey.
        num_banks: Banks on the device (global count for a channel).
        doubled_banks: Enforce the double-bank core's shared-sense-amp
            rules (neighbors of an activating bank must be closed, and
            the activate honors t_RP from a neighbor's precharge).
        banks_per_device: For multi-device channels: t_RR applies
            between ROW ACT packets to the *same device*, and
            double-bank adjacency never crosses a device boundary.
            None means a single device.

    Returns:
        An :class:`AuditReport` with trace statistics.

    Raises:
        ProtocolError: If any datasheet constraint is violated.
    """
    timing = timing or RdramTiming()
    report = AuditReport()
    banks: Dict[int, _BankReplay] = {i: _BankReplay() for i in range(num_banks)}
    per_device = banks_per_device or num_banks
    row_bus_free = NEVER
    col_bus_free = NEVER
    data_bus_free = NEVER
    last_act_by_device: Dict[int, int] = {}
    last_write_data_end = NEVER
    last_data_dir: Optional[BusDirection] = None
    touched = set()

    for packet in sorted(trace, key=_sort_key):
        if isinstance(packet, RowPacket):
            bank = _get_bank(banks, packet.bank)
            touched.add(packet.bank)
            if not packet.via_col:
                if packet.start < row_bus_free:
                    raise ProtocolError(
                        f"row bus collision at cycle {packet.start}"
                    )
                row_bus_free = packet.start + timing.t_pack
                report.row_packets += 1
            if packet.command is RowCommand.ACT:
                device = packet.bank // per_device
                previous_act = last_act_by_device.get(device, NEVER)
                _check(
                    packet.start - previous_act >= timing.t_rr,
                    f"t_RR violated on device {device}: ACTs at "
                    f"{previous_act} and {packet.start}",
                )
                _check(
                    bank.open_row is None,
                    f"ACT to open bank {packet.bank} at {packet.start}",
                )
                _check(
                    packet.start - bank.last_act >= timing.t_rc,
                    f"t_RC violated on bank {packet.bank}: ACTs at "
                    f"{bank.last_act} and {packet.start}",
                )
                _check(
                    packet.start - bank.last_prer >= timing.t_rp,
                    f"t_RP violated on bank {packet.bank}: PRER at "
                    f"{bank.last_prer}, ACT at {packet.start}",
                )
                if doubled_banks:
                    for neighbor_index in (packet.bank - 1, packet.bank + 1):
                        if neighbor_index not in banks:
                            continue
                        if neighbor_index // per_device != device:
                            continue  # adjacency never crosses devices
                        neighbor = banks[neighbor_index]
                        _check(
                            neighbor.open_row is None,
                            f"double-bank: ACT to bank {packet.bank} while "
                            f"adjacent bank {neighbor_index} open at "
                            f"{packet.start}",
                        )
                        _check(
                            packet.start - neighbor.last_prer >= timing.t_rp,
                            f"double-bank: t_RP from neighbor "
                            f"{neighbor_index} violated at {packet.start}",
                        )
                bank.open_row = packet.row
                bank.last_act = packet.start
                last_act_by_device[device] = packet.start
            else:  # PRER
                _check(
                    bank.open_row is not None,
                    f"PRER to closed bank {packet.bank} at {packet.start}",
                )
                _check(
                    packet.start - bank.last_act >= timing.t_ras,
                    f"t_RAS violated on bank {packet.bank}: ACT at "
                    f"{bank.last_act}, PRER at {packet.start}",
                )
                _check(
                    packet.start >= bank.last_col_end - timing.t_cpol,
                    f"t_CPOL violated on bank {packet.bank}: COL ends "
                    f"{bank.last_col_end}, PRER at {packet.start}",
                )
                bank.open_row = None
                bank.last_prer = packet.start
        elif isinstance(packet, ColPacket):
            bank = _get_bank(banks, packet.bank)
            touched.add(packet.bank)
            _check(
                packet.start >= col_bus_free,
                f"col bus collision at cycle {packet.start}",
            )
            col_bus_free = packet.start + timing.t_pack
            if packet.command is ColCommand.RET:
                # A write-buffer retire occupies the COL bus but
                # addresses no bank row and moves no data.
                report.col_packets += 1
                continue
            _check(
                bank.open_row == packet.row,
                f"COL to bank {packet.bank} row {packet.row} but open row "
                f"is {bank.open_row} at cycle {packet.start}",
            )
            _check(
                packet.start - bank.last_act >= timing.t_rcd,
                f"t_RCD violated on bank {packet.bank}: ACT at "
                f"{bank.last_act}, COL at {packet.start}",
            )
            bank.last_col_end = packet.start + timing.t_pack
            report.col_packets += 1
        elif isinstance(packet, DataPacket):
            _check(
                packet.start >= data_bus_free,
                f"data bus collision at cycle {packet.start}",
            )
            data_bus_free = packet.start + timing.t_pack
            expected_delay = (
                timing.read_data_delay()
                if packet.direction is BusDirection.READ
                else timing.write_data_delay()
            )
            _check(
                packet.start - packet.source_col_start == expected_delay,
                f"data packet at {packet.start} does not follow its COL "
                f"packet at {packet.source_col_start} by {expected_delay}",
            )
            if (
                packet.direction is BusDirection.READ
                and last_data_dir is BusDirection.WRITE
            ):
                _check(
                    packet.start - last_write_data_end >= timing.t_rw,
                    f"t_RW violated: write data ends {last_write_data_end}, "
                    f"read data at {packet.start}",
                )
                report.turnarounds += 1
            if packet.direction is BusDirection.WRITE:
                last_write_data_end = packet.start + timing.t_pack
            last_data_dir = packet.direction
            report.data_packets += 1
        else:
            raise ProtocolError(f"unknown trace record {packet!r}")

    report.banks_touched = len(touched)
    return report


def _get_bank(banks: Dict[int, _BankReplay], index: int) -> _BankReplay:
    if index not in banks:
        raise ProtocolError(f"bank index {index} outside the device")
    return banks[index]


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message)
