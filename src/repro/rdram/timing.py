"""Timing parameters for Direct RDRAM and classic DRAM families.

The values here transcribe Figure 1 (typical timing parameters for
fast-page-mode, EDO, burst-EDO, SDRAM and Direct RDRAM parts) and
Figure 2 (timing parameter definitions for a minimum -50 -800 Direct
RDRAM part) of the paper.

All Direct RDRAM timings are expressed in 400 MHz interface-clock
cycles (t_CYCLE = 2.5 ns), exactly as the paper does: "All references
to cycles in the following sections are in terms of the 400 MHz
interface clock."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ConfigurationError

#: Interface clock frequency of a Direct RDRAM -800 part, in MHz.
INTERFACE_CLOCK_MHZ = 400

#: Data is transferred on both edges of the interface clock, two bytes
#: per edge, so the peak transfer rate is 2 bytes x 2 edges x 400 MHz.
PEAK_BANDWIDTH_BYTES_PER_SEC = 1_600_000_000

#: Bytes moved across the channel per interface-clock cycle at peak
#: (16 bits on each of two edges = 4 bytes/cycle).
BYTES_PER_CYCLE_PEAK = 4

#: One DATA packet carries 16 bytes: four cycles x 4 bytes.
DATA_PACKET_BYTES = 16


@dataclass(frozen=True)
class RdramTiming:
    """Direct RDRAM timing parameters, in 400 MHz interface-clock cycles.

    Default values are the minimum -50 -800 part from Figure 2 of the
    paper. Derived relationships from the datasheet are validated at
    construction time:

    * ``t_rac == t_rcd + t_cac + 1`` (page-miss latency decomposition),
    * ``t_rw == t_pack + t_rdly`` (read/write turnaround composition).

    Attributes:
        t_cycle_ns: Interface clock cycle time in nanoseconds.
        t_pack: Packet transfer time (command or data), in cycles.
        t_rcd: Minimum interval between ROW ACT and COL packets.
        t_rp: Page precharge time, PRER to next ACT, same bank.
        t_cpol: Maximum overlap between the last COL packet and the
            start of a ROW PRER packet.
        t_cac: Page-hit latency, COL packet start to valid data.
        t_rac: Page-miss latency, ROW ACT start to valid data.
        t_rc: Page-miss cycle time, minimum interval between successive
            ROW ACT packets to the same bank.
        t_rr: Minimum delay between consecutive ROW accesses to the
            same RDRAM device.
        t_rdly: Round-trip bus delay added to read page-hit latency
            (DATA travels opposite to commands; no delay for writes).
        t_rw: Read/write bus turnaround (t_pack + t_rdly).
        t_ras: Minimum interval between a ROW ACT packet and the PRER
            packet for the same bank.  Figure 2 references t_RAS
            ("The PRER command packet is sent t_RAS cycles after the
            previous ROW ACT") without tabulating it; we use the -50
            datasheet minimum of 20 cycles (50 ns), which satisfies the
            paper's stated inequality t_ras + t_rp < 2*t_rr + t_rac.
    """

    t_cycle_ns: float = 2.5
    t_pack: int = 4
    t_rcd: int = 11
    t_rp: int = 10
    t_cpol: int = 1
    t_cac: int = 8
    t_rac: int = 20
    t_rc: int = 34
    t_rr: int = 8
    t_rdly: int = 2
    t_rw: int = 6
    t_ras: int = 20

    def __post_init__(self) -> None:
        if self.t_rac != self.t_rcd + self.t_cac + 1:
            raise ConfigurationError(
                "t_rac must equal t_rcd + t_cac + 1 (Figure 2): "
                f"got t_rac={self.t_rac}, "
                f"t_rcd + t_cac + 1 = {self.t_rcd + self.t_cac + 1}"
            )
        if self.t_rw != self.t_pack + self.t_rdly:
            raise ConfigurationError(
                "t_rw must equal t_pack + t_rdly (Figure 2): "
                f"got t_rw={self.t_rw}, "
                f"t_pack + t_rdly = {self.t_pack + self.t_rdly}"
            )
        if self.t_ras + self.t_rp >= 2 * self.t_rr + self.t_rac:
            raise ConfigurationError(
                "paper assumes t_ras + t_rp < 2*t_rr + t_rac so the "
                "precharge fully overlaps other activity (Section 5): "
                f"{self.t_ras} + {self.t_rp} >= "
                f"2*{self.t_rr} + {self.t_rac}"
            )
        for name in (
            "t_pack",
            "t_rcd",
            "t_rp",
            "t_cac",
            "t_rac",
            "t_rc",
            "t_rr",
            "t_ras",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")

    @property
    def ns_per_cycle(self) -> float:
        """Nanoseconds per interface-clock cycle."""
        return self.t_cycle_ns

    def cycles_to_ns(self, cycles: int) -> float:
        """Convert an interface-clock cycle count to nanoseconds."""
        return cycles * self.t_cycle_ns

    def read_data_delay(self) -> int:
        """Cycles from a COL RD packet start until read DATA starts.

        Reads pay the round-trip bus delay on top of the page-hit
        latency because the DATA packet travels in the opposite
        direction of the command (Figure 2, t_RDLY).
        """
        return self.t_cac + self.t_rdly

    def write_data_delay(self) -> int:
        """Cycles from a COL WR packet start until write DATA starts.

        Writes travel in the same direction as commands, so no t_RDLY
        is added ("no delay for writes", Figure 2).
        """
        return self.t_cac


#: The default part modeled throughout the paper.
DEFAULT_TIMING = RdramTiming()


@dataclass(frozen=True)
class ClassicDramTiming:
    """Timing parameters for a conventional DRAM family (Figure 1).

    Values are in nanoseconds (except ``max_freq_mhz``), exactly as the
    paper's Figure 1 tabulates them.

    Attributes:
        name: Marketing name of the family.
        t_rac_ns: Row-access time.
        t_cac_ns: Column-access time.
        t_rc_ns: Random read/write cycle time.
        t_pc_ns: Page-mode cycle time.  For Direct RDRAM the figure
            reports the packet transfer time here, since t_PC does not
            apply to a packetized interface.
        max_freq_mhz: Maximum operating frequency.
        bus_width_bytes: Width of the data bus, used to derive peak
            bandwidth for cross-family comparisons.
    """

    name: str
    t_rac_ns: float
    t_cac_ns: float
    t_rc_ns: float
    t_pc_ns: float
    max_freq_mhz: float
    bus_width_bytes: int = 8

    @property
    def peak_bandwidth_bytes_per_sec(self) -> float:
        """Peak transfer rate implied by page-mode cycling.

        One ``bus_width_bytes`` transfer per page-mode cycle.  For
        Direct RDRAM the page-mode "cycle" is the 10 ns packet slot
        moving 16 bytes, which recovers the advertised 1.6 GB/s.
        """
        return self.bus_width_bytes / (self.t_pc_ns * 1e-9)

    def page_hit_latency_ns(self) -> float:
        """Latency of an access that hits the open page."""
        return self.t_cac_ns

    def page_miss_latency_ns(self) -> float:
        """Latency of an access that must open a new page."""
        return self.t_rac_ns


#: Figure 1 of the paper, transcribed.  Direct RDRAM's "t_PC" entry is
#: the 10 ns packet transfer time and it moves a 16-byte DATA packet
#: per slot; the classic parts move one 8-byte word per page cycle.
DRAM_FAMILIES: Dict[str, ClassicDramTiming] = {
    "fast-page-mode": ClassicDramTiming(
        name="Fast-Page Mode",
        t_rac_ns=50,
        t_cac_ns=13,
        t_rc_ns=95,
        t_pc_ns=30,
        max_freq_mhz=33,
    ),
    "edo": ClassicDramTiming(
        name="EDO",
        t_rac_ns=50,
        t_cac_ns=13,
        t_rc_ns=89,
        t_pc_ns=20,
        max_freq_mhz=50,
    ),
    "burst-edo": ClassicDramTiming(
        name="Burst-EDO",
        t_rac_ns=52,
        t_cac_ns=10,
        t_rc_ns=90,
        t_pc_ns=15,
        max_freq_mhz=66,
    ),
    "sdram": ClassicDramTiming(
        name="SDRAM",
        t_rac_ns=50,
        t_cac_ns=9,
        t_rc_ns=100,
        t_pc_ns=10,
        max_freq_mhz=100,
    ),
    "direct-rdram": ClassicDramTiming(
        name="Direct RDRAM",
        t_rac_ns=50,
        t_cac_ns=20,
        t_rc_ns=85,
        t_pc_ns=10,
        max_freq_mhz=400,
        bus_width_bytes=16,
    ),
}


def figure2_rows(timing: RdramTiming = DEFAULT_TIMING) -> Tuple[Tuple[str, str, int, float], ...]:
    """Rows of the paper's Figure 2 for a given part.

    Returns:
        Tuples of (parameter name, description, cycles, nanoseconds).
    """
    rows = (
        ("t_CYCLE", "interface clock cycle time (400 MHz)", 1, timing.t_cycle_ns),
        ("t_PACK", "packet transfer time", timing.t_pack, None),
        ("t_RCD", "min interval between ROW & COL packets", timing.t_rcd, None),
        ("t_RP", "page precharge time (PRER to ACT)", timing.t_rp, None),
        ("t_CPOL", "max overlap of last COL packet & ROW PRER", timing.t_cpol, None),
        ("t_CAC", "page hit latency (COL packet to valid data)", timing.t_cac, None),
        ("t_RAC", "page miss latency (ROW ACT to valid data)", timing.t_rac, None),
        ("t_RC", "page miss cycle time (ACT to ACT, same bank)", timing.t_rc, None),
        ("t_RR", "row/row packet delay (same device)", timing.t_rr, None),
        ("t_RDLY", "roundtrip bus delay (reads only)", timing.t_rdly, None),
        ("t_RW", "read/write bus turnaround", timing.t_rw, None),
    )
    return tuple(
        (name, desc, cycles, timing.cycles_to_ns(cycles) if ns is None else ns)
        for name, desc, cycles, ns in rows
    )
