"""Per-bank sense-amp state machine for a Direct RDRAM device.

Each of the device's independent banks tracks which row (page) its
sense amplifiers currently hold and the timestamps needed to enforce
the bank-local datasheet constraints:

* t_RC  — minimum spacing of ACT packets to the same bank,
* t_RCD — ACT to first COL packet,
* t_RAS — ACT to PRER,
* t_RP  — PRER to next ACT,
* t_CPOL — maximum overlap of the last COL packet with PRER.

Bus-level constraints (packet bus exclusivity, t_RR between ROW
packets, data-bus turnaround) are enforced by the device, not here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ProtocolError
from repro.rdram.timing import RdramTiming

#: Timestamp value meaning "never happened"; far enough in the past
#: that no constraint measured from it can bind.
NEVER = -(10**9)


@dataclass
class Bank:
    """State of one RDRAM bank and its sense amplifiers.

    Attributes:
        index: Bank number on the device.
        timing: Timing parameters shared with the device.
        open_row: Row currently held in the sense amps, or None if the
            bank is precharged (closed).
    """

    index: int
    timing: RdramTiming
    open_row: Optional[int] = None
    _last_act_start: int = field(default=NEVER, repr=False)
    _last_prer_start: int = field(default=NEVER, repr=False)
    _last_col_end: int = field(default=NEVER, repr=False)

    @property
    def is_open(self) -> bool:
        """True if a row is held in the sense amps."""
        return self.open_row is not None

    @property
    def last_act_start(self) -> int:
        """Start cycle of the most recent activate (NEVER if none).

        Exposed for the observability layer: the device uses it to
        emit "row open" spans on bank tracks and to compute the
        bank-readiness bound of a DATA-bus gap independently of the
        controller's request cycle.
        """
        return self._last_act_start

    @property
    def last_col_end(self) -> int:
        """End cycle of the most recent COL packet (NEVER if none).

        Exposed for time-based page managers: a bank's idle time is
        measured from the later of the opening ACT and the last COL.
        """
        return self._last_col_end

    @property
    def last_prer_start(self) -> int:
        """Start cycle of the most recent precharge (NEVER if none).

        Exposed for double-bank cores, where a neighbor's activate must
        honor t_RP from this bank's precharge (shared sense-amp strip).
        """
        return self._last_prer_start

    def earliest_act(self, now: int) -> int:
        """Earliest cycle >= now at which an ACT packet may start.

        The bank must be closed; ACT must follow the previous PRER by
        t_RP and the previous ACT by t_RC.
        """
        if self.is_open:
            raise ProtocolError(
                f"bank {self.index}: ACT while row {self.open_row} is open; "
                "precharge first"
            )
        earliest = max(
            now,
            self._last_prer_start + self.timing.t_rp,
            self._last_act_start + self.timing.t_rc,
        )
        return earliest

    def earliest_col(self, now: int, row: int) -> int:
        """Earliest cycle >= now at which a COL packet may start.

        The requested row must be the open row, and the COL packet must
        follow the opening ACT by t_RCD.
        """
        if self.open_row != row:
            raise ProtocolError(
                f"bank {self.index}: COL to row {row} but open row is "
                f"{self.open_row}"
            )
        return max(now, self._last_act_start + self.timing.t_rcd)

    def earliest_prer(self, now: int) -> int:
        """Earliest cycle >= now at which a PRER packet may start.

        PRER must follow the opening ACT by t_RAS and may overlap the
        last COL packet by at most t_CPOL cycles.
        """
        if not self.is_open:
            raise ProtocolError(f"bank {self.index}: PRER while closed")
        return max(
            now,
            self._last_act_start + self.timing.t_ras,
            self._last_col_end - self.timing.t_cpol,
        )

    def apply_act(self, start: int, row: int) -> None:
        """Record an ACT packet starting at ``start`` opening ``row``."""
        legal = self.earliest_act(start)
        if start < legal:
            raise ProtocolError(
                f"bank {self.index}: ACT at {start} before legal cycle {legal}"
            )
        self.open_row = row
        self._last_act_start = start

    def apply_col(self, start: int, row: int) -> None:
        """Record a COL packet (RD or WR) starting at ``start``."""
        legal = self.earliest_col(start, row)
        if start < legal:
            raise ProtocolError(
                f"bank {self.index}: COL at {start} before legal cycle {legal}"
            )
        self._last_col_end = start + self.timing.t_pack

    def apply_prer(self, start: int) -> None:
        """Record a PRER packet starting at ``start`` closing the bank."""
        legal = self.earliest_prer(start)
        if start < legal:
            raise ProtocolError(
                f"bank {self.index}: PRER at {start} before legal cycle {legal}"
            )
        self.open_row = None
        self._last_prer_start = start

    def reset(self) -> None:
        """Return the bank to its power-on (closed, unconstrained) state."""
        self.open_row = None
        self._last_act_start = NEVER
        self._last_prer_start = NEVER
        self._last_col_end = NEVER
