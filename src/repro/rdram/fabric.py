"""A fabric of independent Rambus channels behind one device interface.

One :class:`~repro.rdram.channel.RambusChannel` shares a single ROW
bus, COL bus and dual-edge DATA bus among its devices; ganging
*channels* multiplies all three.  :class:`MemoryFabric` holds N fully
independent per-channel memories — each with private bus state, bank
state, write buffer and page manager — and routes global bank indices
to them: channel ``c``'s local bank ``b`` is global index
``c * banks_per_channel + b``, the same globalization scheme
:class:`~repro.rdram.channel.RambusChannel` uses for device banks.
Every controller in the library therefore runs unmodified against a
fabric, and accesses routed to different channels overlap in time
because nothing below the controller is shared.

Page managers hold per-bank state keyed by channel-local indices, so
the fabric owns one manager per channel (built by the
``page_manager_factory`` given to it); likewise refresh walks each
channel's devices independently through one
:class:`~repro.rdram.refresh.RefreshEngine` per channel, aggregated by
:class:`FabricRefreshEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.errors import ConfigurationError, ProtocolError
from repro.obs.core import Instrumentation
from repro.rdram.bank import Bank
from repro.rdram.channel import ChannelGeometry, RambusChannel
from repro.rdram.device import AccessIssue, RdramDevice, RdramGeometry
from repro.rdram.packets import BusDirection, RowPacket
from repro.rdram.refresh import DEFAULT_INTERVAL_CYCLES, RefreshEngine
from repro.rdram.timing import RdramTiming


@dataclass(frozen=True)
class FabricGeometry:
    """Geometry of a channel fabric, in global bank indices.

    Duck-compatible with :class:`~repro.rdram.device.RdramGeometry`
    wherever the library needs ``num_banks`` / ``page_bytes`` /
    ``rows_per_bank`` / ``capacity_bytes`` / ``packets_per_page`` /
    ``neighbors``; adjacency never crosses a channel boundary.

    Attributes:
        channels: Independent channels in the fabric.
        channel: Per-channel geometry (a single device's, or a
            :class:`~repro.rdram.channel.ChannelGeometry` for
            multi-device channels).
    """

    channels: int
    channel: object

    def __post_init__(self) -> None:
        if isinstance(self.channels, bool) or not isinstance(
            self.channels, int
        ):
            raise ConfigurationError(
                f"channels must be an integer, got {self.channels!r}"
            )
        if self.channels < 1:
            raise ConfigurationError(
                f"a fabric needs at least one channel, got {self.channels}"
            )
        if not isinstance(self.channel, (RdramGeometry, ChannelGeometry)):
            raise ConfigurationError(
                "per-channel geometry must be an RdramGeometry or "
                f"ChannelGeometry, got {type(self.channel).__name__}"
            )

    @property
    def banks_per_channel(self) -> int:
        return self.channel.num_banks

    @property
    def num_banks(self) -> int:
        """Global bank count across all channels."""
        return self.channels * self.channel.num_banks

    @property
    def page_bytes(self) -> int:
        return self.channel.page_bytes

    @property
    def rows_per_bank(self) -> int:
        return self.channel.rows_per_bank

    @property
    def doubled_banks(self) -> bool:
        return self.channel.doubled_banks

    @property
    def capacity_bytes(self) -> int:
        return self.channels * self.channel.capacity_bytes

    @property
    def packets_per_page(self) -> int:
        return self.channel.packets_per_page

    def channel_of(self, global_bank: int) -> int:
        """Channel owning a global bank."""
        return global_bank // self.channel.num_banks

    def local_bank(self, global_bank: int) -> int:
        """Bank index within its channel."""
        return global_bank % self.channel.num_banks

    def neighbors(self, global_bank: int) -> Tuple[int, ...]:
        """Sense-amp-sharing neighbors, never crossing channels."""
        base = global_bank - self.local_bank(global_bank)
        return tuple(
            base + local
            for local in self.channel.neighbors(self.local_bank(global_bank))
        )


class MemoryFabric:
    """N independent channels behind the RdramDevice interface.

    Args:
        timing: Shared timing parameters (each channel runs its own
            copy of the bus-state machine under them).
        channels: Channel count.
        channel_geometry: Per-channel geometry.
        record_trace: Record packets on every channel for auditing.
        explicit_retire: Model write-buffer retires as COL RET packets.
        page_manager_factory: Called once per channel to build that
            channel's page manager (None leaves channels unmanaged).
    """

    def __init__(
        self,
        timing: Optional[RdramTiming] = None,
        channels: int = 2,
        channel_geometry=None,
        record_trace: bool = True,
        explicit_retire: bool = False,
        page_manager_factory: Optional[Callable[[], object]] = None,
    ) -> None:
        self.timing = timing or RdramTiming()
        self.geometry = FabricGeometry(
            channels=channels,
            channel=channel_geometry or RdramGeometry(),
        )
        self.record_trace = record_trace
        self.explicit_retire = explicit_retire
        self._obs: Optional[Instrumentation] = None
        self._mapping = None
        self.channel_memories: List[object] = []
        for _ in range(channels):
            if isinstance(self.geometry.channel, ChannelGeometry):
                memory: object = RambusChannel(
                    timing=self.timing,
                    geometry=self.geometry.channel,
                    record_trace=record_trace,
                    explicit_retire=explicit_retire,
                )
            else:
                memory = RdramDevice(
                    timing=self.timing,
                    geometry=self.geometry.channel,
                    record_trace=record_trace,
                    explicit_retire=explicit_retire,
                )
            memory.page_manager = (
                page_manager_factory() if page_manager_factory else None
            )
            self.channel_memories.append(memory)
        #: Flat global-bank view across channels (telemetry samples it).
        self.banks: List[Bank] = [
            bank for memory in self.channel_memories for bank in memory.banks
        ]

    # ------------------------------------------------------------------
    # routing

    def _route(self, global_bank: int) -> Tuple[object, int]:
        if not 0 <= global_bank < self.geometry.num_banks:
            raise ProtocolError(
                f"global bank {global_bank} out of range "
                f"0..{self.geometry.num_banks - 1}"
            )
        return (
            self.channel_memories[self.geometry.channel_of(global_bank)],
            self.geometry.local_bank(global_bank),
        )

    # ------------------------------------------------------------------
    # queries (RdramDevice interface)

    @property
    def obs(self) -> Optional[Instrumentation]:
        """Shared instrumentation, propagated to every channel."""
        return self._obs

    @obs.setter
    def obs(self, obs: Optional[Instrumentation]) -> None:
        self._obs = obs
        for memory in self.channel_memories:
            memory.obs = obs

    @property
    def page_manager(self):
        """Per-channel managers; the fabric itself holds none."""
        return None

    @page_manager.setter
    def page_manager(self, manager) -> None:
        if manager is not None:
            raise ConfigurationError(
                "a MemoryFabric holds one page manager per channel "
                "(pass page_manager_factory when building it); a single "
                "shared manager would collide on local bank indices"
            )

    @property
    def mapping(self):
        """Shared address mapping, propagated to every channel.

        Channel memories issue channel-local bank indices, so the
        attached mapping must accept local banks in
        ``observe_access`` — :class:`~repro.memsys.address.ChannelStriping`
        delegates to its per-channel base mapping, which is exactly
        that bank space.
        """
        return self._mapping

    @mapping.setter
    def mapping(self, mapping) -> None:
        self._mapping = mapping
        for memory in self.channel_memories:
            memory.mapping = mapping

    @property
    def bytes_transferred(self) -> int:
        """Total bytes moved across all channels' DATA buses."""
        return sum(m.bytes_transferred for m in self.channel_memories)

    def channel_bytes(self) -> Tuple[int, ...]:
        """Bytes moved on each channel's DATA bus, in channel order."""
        return tuple(m.bytes_transferred for m in self.channel_memories)

    @property
    def trace(self) -> List[object]:
        """All channels' packets, interleaved by start cycle.

        Per-channel traces are authoritative for auditing (the shared
        auditor assumes one set of buses); this merged view exists for
        inspection only.
        """
        merged = [
            packet for m in self.channel_memories for packet in m.trace
        ]
        merged.sort(key=lambda packet: packet.start)
        return merged

    def bank(self, index: int) -> Bank:
        """Global bank ``index`` (bounds-checked)."""
        memory, local = self._route(index)
        return memory.bank(local)

    def earliest_act(self, bank: int, now: int) -> int:
        memory, local = self._route(bank)
        return memory.earliest_act(local, now)

    def earliest_prer(self, bank: int, now: int) -> int:
        memory, local = self._route(bank)
        return memory.earliest_prer(local, now)

    def earliest_col(
        self, bank: int, row: int, now: int, direction: BusDirection
    ) -> int:
        memory, local = self._route(bank)
        return memory.earliest_col(local, row, now, direction)

    # ------------------------------------------------------------------
    # issue operations (RdramDevice interface)

    def issue_act(self, bank: int, row: int, now: int) -> RowPacket:
        memory, local = self._route(bank)
        return memory.issue_act(local, row, now)

    def issue_prer(self, bank: int, now: int) -> RowPacket:
        memory, local = self._route(bank)
        return memory.issue_prer(local, now)

    def issue_col(
        self,
        bank: int,
        row: int,
        column: int,
        now: int,
        direction: BusDirection,
        precharge: bool = False,
    ):
        memory, local = self._route(bank)
        return memory.issue_col(local, row, column, now, direction, precharge)

    def issue_access(
        self,
        bank: int,
        row: int,
        column: int,
        now: int,
        direction: BusDirection,
        precharge: bool = False,
    ) -> AccessIssue:
        """Issue one full stream access on the owning channel."""
        memory, local = self._route(bank)
        return memory.issue_access(
            local, row, column, now, direction, precharge=precharge
        )

    def sync_bank(self, index: int, now: int) -> None:
        """Materialize page-manager actions due on a global bank."""
        memory, local = self._route(index)
        memory.sync_bank(local, now)

    def autoclose(self, bank: int, due: int) -> None:
        memory, local = self._route(bank)
        memory.autoclose(local, due)

    def finish_observation(self, end_cycle: int) -> None:
        for memory in self.channel_memories:
            memory.finish_observation(end_cycle)

    def reset(self) -> None:
        """Return every channel to the power-on state."""
        for memory in self.channel_memories:
            memory.reset()


class FabricRefreshEngine:
    """Per-channel refresh, aggregated behind the background protocol.

    Each channel gets its own :class:`~repro.rdram.refresh.RefreshEngine`
    walking that channel's devices on the standard retention cadence;
    because the channels' buses are independent, the engines refresh in
    parallel exactly as independent memory controllers would.  The
    aggregate satisfies the kernel's
    :class:`~repro.sim.kernel.BackgroundEngine` protocol so one
    :class:`~repro.sim.kernel.BackgroundComponent` drives all channels.
    """

    def __init__(
        self,
        fabric: MemoryFabric,
        interval: int = DEFAULT_INTERVAL_CYCLES,
        force_after: int = 8,
    ) -> None:
        self.fabric = fabric
        self.engines = [
            RefreshEngine(memory, interval=interval, force_after=force_after)
            for memory in fabric.channel_memories
        ]
        self._obs: Optional[Instrumentation] = None

    @property
    def obs(self) -> Optional[Instrumentation]:
        return self._obs

    @obs.setter
    def obs(self, obs: Optional[Instrumentation]) -> None:
        self._obs = obs
        for engine in self.engines:
            engine.obs = obs

    @property
    def refreshes_issued(self) -> int:
        return sum(engine.refreshes_issued for engine in self.engines)

    @property
    def deferrals(self) -> int:
        return sum(engine.deferrals for engine in self.engines)

    @property
    def forced_precharges(self) -> int:
        return sum(engine.forced_precharges for engine in self.engines)

    @property
    def next_action_cycle(self) -> int:
        return min(engine.next_action_cycle for engine in self.engines)

    def tick(self, cycle: int) -> bool:
        fired = False
        for engine in self.engines:
            fired = engine.tick(cycle) or fired
        return fired
