"""Gantt-style text rendering of RDRAM packet traces.

Turns a recorded trace into the kind of three-lane timing diagram the
paper draws in Figures 5 and 6: one lane per channel sub-bus (ROW
commands, COL commands, DATA), one column per interface-clock cycle,
each four-cycle packet drawn as a labeled box.

    cycle 0         1         2         3         4         5
    row   [A0.....] [A1.....]           [A2.....]
    col             [R0.....] [R0.....] [R1.....]
    data                      <r0><r0><r1>

Used by the timeline experiment and handy for debugging controllers:

    >>> from repro.rdram.tracefmt import render_trace
    >>> print(render_trace(device.trace, until=120))   # doctest: +SKIP
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.rdram.packets import (
    BusDirection,
    ColCommand,
    ColPacket,
    DataPacket,
    RowCommand,
    RowPacket,
)

#: Width of one four-cycle packet slot in the rendering.
SLOT = 4

_ROW_LABEL = {RowCommand.ACT: "A", RowCommand.PRER: "P"}
_COL_LABEL = {ColCommand.RD: "R", ColCommand.WR: "W", ColCommand.RET: "T"}


def render_trace(
    trace: Sequence[object],
    start: int = 0,
    until: Optional[int] = None,
    ruler_step: int = 20,
) -> str:
    """Render a packet trace as a three-lane text timing diagram.

    Args:
        trace: Packets recorded by a device or channel.
        start: First cycle to draw.
        until: One past the last cycle to draw (defaults to the end of
            the last packet).
        ruler_step: Cycle-number tick spacing on the ruler line.

    Returns:
        A multi-line string: a cycle ruler plus row/col/data lanes.
        Col-carried precharges render on the row lane in parentheses
        since they consume no row-bus bandwidth.
    """
    packets = sorted(trace, key=lambda p: p.start)
    if until is None:
        until = max((p.start + SLOT for p in packets), default=start)
    width = max(0, until - start)
    lanes = {name: [" "] * width for name in ("row", "col", "data")}

    for packet in packets:
        if packet.start + SLOT <= start or packet.start >= until:
            continue
        if isinstance(packet, RowPacket):
            label = _ROW_LABEL[packet.command] + str(packet.bank)
            if packet.via_col:
                cell = f"({label})".ljust(SLOT, ".")[:SLOT]
            else:
                cell = f"[{label}".ljust(SLOT, ".")[:SLOT]
            _paint(lanes["row"], packet.start - start, cell, width)
        elif isinstance(packet, ColPacket):
            label = _COL_LABEL[packet.command] + str(packet.bank)
            cell = f"[{label}".ljust(SLOT, ".")[:SLOT]
            _paint(lanes["col"], packet.start - start, cell, width)
        elif isinstance(packet, DataPacket):
            mark = "r" if packet.direction is BusDirection.READ else "w"
            cell = f"<{mark}{packet.bank}".ljust(SLOT, ".")[:SLOT]
            _paint(lanes["data"], packet.start - start, cell, width)

    ruler = [" "] * width
    for tick in range(start, until, ruler_step):
        text = str(tick)
        _paint(ruler, tick - start, text, width)
    lines = ["cycle " + "".join(ruler)]
    for name in ("row", "col", "data"):
        lines.append(f"{name:5s} " + "".join(lanes[name]))
    return "\n".join(lines)


def _paint(lane: List[str], position: int, text: str, width: int) -> None:
    for offset, char in enumerate(text):
        index = position + offset
        if 0 <= index < width:
            lane[index] = char


def render_trace_wrapped(
    trace: Sequence[object],
    line_cycles: int = 100,
    until: Optional[int] = None,
) -> str:
    """Render a long trace as successive ``line_cycles``-wide bands."""
    packets = list(trace)
    if until is None:
        until = max((p.start + SLOT for p in packets), default=0)
    bands = []
    for band_start in range(0, until, line_cycles):
        band_end = min(band_start + line_cycles, until)
        bands.append(render_trace(packets, start=band_start, until=band_end))
    return "\n\n".join(bands)
