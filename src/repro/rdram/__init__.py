"""Direct RDRAM device substrate.

Everything needed to model a single Direct Rambus DRAM at the level the
paper analyzes it: datasheet timing parameters (Figures 1 and 2), the
per-bank sense-amp state machine, the packetized channel model with an
earliest-legal-issue interface, and an independent protocol auditor.
"""

from repro.rdram.audit import AuditReport, audit_trace
from repro.rdram.bank import Bank
from repro.rdram.channel import ChannelGeometry, RambusChannel, make_memory
from repro.rdram.device import (
    AccessIssue,
    RdramDevice,
    RdramGeometry,
    ScheduledAccess,
    perform_access,
)
from repro.rdram.refresh import DEFAULT_INTERVAL_CYCLES, RefreshEngine
from repro.rdram.tracefmt import render_trace, render_trace_wrapped
from repro.rdram.packets import (
    BusDirection,
    ColCommand,
    ColPacket,
    DataPacket,
    RowCommand,
    RowPacket,
)
from repro.rdram.timing import (
    BYTES_PER_CYCLE_PEAK,
    DATA_PACKET_BYTES,
    DEFAULT_TIMING,
    DRAM_FAMILIES,
    INTERFACE_CLOCK_MHZ,
    PEAK_BANDWIDTH_BYTES_PER_SEC,
    ClassicDramTiming,
    RdramTiming,
    figure2_rows,
)

__all__ = [
    "AuditReport",
    "audit_trace",
    "Bank",
    "ChannelGeometry",
    "RambusChannel",
    "make_memory",
    "AccessIssue",
    "RdramDevice",
    "RdramGeometry",
    "ScheduledAccess",
    "perform_access",
    "DEFAULT_INTERVAL_CYCLES",
    "RefreshEngine",
    "render_trace",
    "render_trace_wrapped",
    "BusDirection",
    "ColCommand",
    "ColPacket",
    "DataPacket",
    "RowCommand",
    "RowPacket",
    "BYTES_PER_CYCLE_PEAK",
    "DATA_PACKET_BYTES",
    "DEFAULT_TIMING",
    "DRAM_FAMILIES",
    "INTERFACE_CLOCK_MHZ",
    "PEAK_BANDWIDTH_BYTES_PER_SEC",
    "ClassicDramTiming",
    "RdramTiming",
    "figure2_rows",
]
