"""Distributed refresh engine for the Direct RDRAM device.

The paper ignores refresh ("refresh delays and page miss overheads
... are ignored", Section 4.1).  This engine exists to *validate* that
assumption: DRAM cells need every row refreshed within the retention
window (32 ms for the 64 Mbit generation), which a controller meets by
issuing one activate/precharge pair per (bank, row) on a fixed cadence
— 8 banks x 1024 rows over 32 ms is one refresh every ~3.9 us, i.e.
every ~1562 interface-clock cycles.  The refresh ablation experiment
shows the resulting bandwidth loss is well under the paper's noise
floor.

The engine refreshes in the background: when a refresh comes due and
its target bank (or, on double-bank cores, a neighbor) is busy, the
refresh is deferred briefly; after ``force_after`` deferrals the
engine closes the page itself, modeling a real controller's refresh
deadline taking priority over open-page policy.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.obs.core import Instrumentation
from repro.rdram.device import RdramDevice

#: Cycles between refreshes so all banks x rows fit in a 32 ms
#: retention window at 400 MHz: 32e-3 / (8 * 1024) / 2.5e-9.
DEFAULT_INTERVAL_CYCLES = 1562

#: Cycles to wait before retrying a deferred refresh.
RETRY_CYCLES = 16


class RefreshEngine:
    """Issues one row refresh (ACT + PRER) every ``interval`` cycles.

    Args:
        device: The device being refreshed.
        interval: Cycles between refreshes; the default meets a 32 ms
            retention window for the paper's 8x1024-row geometry.
        force_after: Deferrals tolerated before the engine precharges a
            busy bank itself to meet the retention deadline.
    """

    def __init__(
        self,
        device: RdramDevice,
        interval: int = DEFAULT_INTERVAL_CYCLES,
        force_after: int = 8,
    ) -> None:
        if interval <= 0:
            raise ConfigurationError("refresh interval must be positive")
        self.device = device
        self.interval = interval
        self.force_after = force_after
        self._next_due = interval
        self._bank_cursor = 0
        self._row_cursor = 0
        self._deferrals_in_a_row = 0
        self.refreshes_issued = 0
        self.deferrals = 0
        self.forced_precharges = 0
        #: Optional instrumentation; records one "refresh" span per
        #: issued refresh (ACT start through bank recovery at
        #: PRER + t_RP) plus deferral/forced-precharge counters.
        self.obs: Optional[Instrumentation] = None

    @property
    def next_action_cycle(self) -> int:
        """Cycle at which the engine next wants to act."""
        return self._next_due

    def _target_busy(self) -> bool:
        bank = self.device.bank(self._bank_cursor)
        if bank.is_open:
            return True
        return any(
            self.device.bank(neighbor).is_open
            for neighbor in self.device.geometry.neighbors(self._bank_cursor)
        )

    def tick(self, cycle: int) -> bool:
        """Perform at most one refresh action at ``cycle``.

        Returns:
            True if a refresh (or forced precharge) was issued, which
            perturbs bank state the memory controller may be relying
            on.
        """
        if cycle < self._next_due:
            return False
        if self._target_busy():
            if self._deferrals_in_a_row < self.force_after:
                self._deferrals_in_a_row += 1
                self.deferrals += 1
                if self.obs is not None:
                    self.obs.counters.incr("refresh.deferrals")
                self._next_due = cycle + RETRY_CYCLES
                return False
            # Deadline: close the in-use page (and, on double-bank
            # cores, any open neighbor) to get the refresh through.
            for index in (self._bank_cursor, *self.device.geometry.neighbors(
                self._bank_cursor
            )):
                if self.device.bank(index).is_open:
                    self.device.issue_prer(index, cycle)
                    self.forced_precharges += 1
                    if self.obs is not None:
                        self.obs.counters.incr("refresh.forced_precharges")
                        self.obs.tracer.add_instant(
                            "refresh", "forced_precharge", cycle, bank=index
                        )
        activate = self.device.issue_act(
            self._bank_cursor, self._row_cursor, cycle
        )
        prer = self.device.issue_prer(self._bank_cursor, activate.start)
        self.refreshes_issued += 1
        if self.obs is not None:
            self.obs.counters.incr("refresh.issued")
            self.obs.tracer.add_span(
                "refresh",
                f"refresh b{self._bank_cursor} r{self._row_cursor}",
                activate.start,
                prer.start + self.device.timing.t_rp,
                bank=self._bank_cursor,
                row=self._row_cursor,
            )
        self._deferrals_in_a_row = 0
        self._advance_cursor()
        self._next_due += self.interval
        if self._next_due <= cycle:
            self._next_due = cycle + 1
        return True

    def _advance_cursor(self) -> None:
        self._bank_cursor += 1
        if self._bank_cursor >= self.device.geometry.num_banks:
            self._bank_cursor = 0
            self._row_cursor = (
                self._row_cursor + 1
            ) % self.device.geometry.rows_per_bank
