"""A Rambus channel holding multiple Direct RDRAM devices.

The paper evaluates "a memory system composed of a single Direct
RDRAM device" and notes that Crisp's reported 95 % efficiency came
from "a system with many devices" under more random access patterns
(Section 6).  This module models that fuller system: up to 32 devices
share one channel — one ROW bus, one COL bus, one dual-edge DATA bus —
while each device keeps its own banks, sense amps, write buffer and
per-device t_RR constraint.

:class:`RambusChannel` exposes the same interface as
:class:`~repro.rdram.device.RdramDevice` with *global* bank indices
(device d's bank b is global index ``d * banks_per_device + b``), so
every controller in the library — the SMC and the natural-order
baseline — runs unmodified against a channel; pair it with a
:class:`ChannelGeometry` in the memory-system configuration and the
address map spreads interleave units across all devices' banks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError, ProtocolError
from repro.obs.core import Instrumentation
from repro.rdram.bank import NEVER, Bank
from repro.rdram.device import (
    AccessIssue,
    RdramGeometry,
    ScheduledAccess,
    flush_bank_observation,
    perform_access,
    record_bank_close,
    record_data_gap,
)
from repro.rdram.packets import (
    BusDirection,
    ColCommand,
    ColPacket,
    DataPacket,
    RowCommand,
    RowPacket,
)
from repro.rdram.timing import DATA_PACKET_BYTES, RdramTiming


@dataclass(frozen=True)
class ChannelGeometry:
    """Geometry of a multi-device channel, in global bank indices.

    Duck-compatible with :class:`~repro.rdram.device.RdramGeometry`
    wherever the library needs ``num_banks`` / ``page_bytes`` /
    ``rows_per_bank`` / ``capacity_bytes`` / ``packets_per_page`` /
    ``neighbors``; the double-bank adjacency never crosses a device
    boundary.

    Attributes:
        num_devices: RDRAM devices on the channel (a Direct Rambus
            channel supports up to 32).
        device: Per-device geometry.
    """

    num_devices: int = 4
    device: RdramGeometry = field(default_factory=RdramGeometry)

    def __post_init__(self) -> None:
        if isinstance(self.num_devices, bool) or not isinstance(
            self.num_devices, int
        ):
            raise ConfigurationError(
                f"num_devices must be an integer, got {self.num_devices!r}"
            )
        if not 1 <= self.num_devices <= 32:
            raise ConfigurationError(
                "a Rambus channel holds 1 to 32 devices, got "
                f"{self.num_devices}"
            )
        if not isinstance(self.device, RdramGeometry):
            # A nested ChannelGeometry (or any other duck) would expose
            # a plausible num_banks yet mis-map neighbors() and the
            # per-device t_RR bookkeeping; reject it outright.
            raise ConfigurationError(
                "ChannelGeometry.device must be an RdramGeometry "
                "(channels do not nest); got "
                f"{type(self.device).__name__}"
            )
        if self.device.num_banks < 1 or self.device.rows_per_bank < 1:
            raise ConfigurationError(
                "channel device geometry must hold at least one bank "
                f"and one row, got {self.device.num_banks} banks x "
                f"{self.device.rows_per_bank} rows"
            )

    @property
    def num_banks(self) -> int:
        """Global bank count across all devices."""
        return self.num_devices * self.device.num_banks

    @property
    def page_bytes(self) -> int:
        return self.device.page_bytes

    @property
    def rows_per_bank(self) -> int:
        return self.device.rows_per_bank

    @property
    def doubled_banks(self) -> bool:
        return self.device.doubled_banks

    @property
    def capacity_bytes(self) -> int:
        return self.num_devices * self.device.capacity_bytes

    @property
    def packets_per_page(self) -> int:
        return self.device.packets_per_page

    def device_of(self, global_bank: int) -> int:
        """Device index owning a global bank."""
        return global_bank // self.device.num_banks

    def local_bank(self, global_bank: int) -> int:
        """Bank index within its device."""
        return global_bank % self.device.num_banks

    def neighbors(self, global_bank: int) -> Tuple[int, ...]:
        """Sense-amp-sharing neighbors, never crossing devices."""
        base = global_bank - self.local_bank(global_bank)
        return tuple(
            base + local
            for local in self.device.neighbors(self.local_bank(global_bank))
        )


def make_memory(
    timing: Optional[RdramTiming] = None,
    geometry=None,
    record_trace: bool = True,
    explicit_retire: bool = False,
    page_manager=None,
    topology=None,
    page_manager_factory=None,
):
    """Build the right memory model for a geometry and topology.

    A :class:`ChannelGeometry` yields a :class:`RambusChannel`; an
    :class:`~repro.rdram.device.RdramGeometry` (or None) yields a
    single :class:`~repro.rdram.device.RdramDevice`.  Controllers are
    agnostic — both expose the same interface.  An optional
    :class:`~repro.memsys.pagemanager.PageManager` is attached for the
    ``issue_access`` path to consult.

    A :class:`~repro.memsys.config.MemoryTopology` widens the build:
    ``devices_per_channel > 1`` wraps the per-device geometry in a
    :class:`ChannelGeometry`, and ``channels > 1`` yields a
    :class:`~repro.rdram.fabric.MemoryFabric` of independent channels.
    Page managers hold per-bank state keyed by channel-local bank
    index, so a fabric needs one manager *per channel*: pass
    ``page_manager_factory`` (called once per channel) instead of a
    shared ``page_manager``.
    """
    from repro.rdram.device import RdramDevice

    if topology is not None and not topology.single:
        if isinstance(geometry, ChannelGeometry):
            raise ConfigurationError(
                "pass the per-device geometry alongside a topology; a "
                "ChannelGeometry already encodes device multiplicity"
            )
        if topology.channels > 1:
            from repro.rdram.fabric import MemoryFabric

            if page_manager is not None and page_manager_factory is None:
                raise ConfigurationError(
                    "a multi-channel fabric needs a page_manager_factory "
                    "(one manager per channel); a shared page_manager "
                    "would collide on channel-local bank indices"
                )
            return MemoryFabric(
                timing=timing,
                channels=topology.channels,
                channel_geometry=(
                    ChannelGeometry(
                        num_devices=topology.devices_per_channel,
                        device=geometry or RdramGeometry(),
                    )
                    if topology.devices_per_channel > 1
                    else geometry or RdramGeometry()
                ),
                record_trace=record_trace,
                explicit_retire=explicit_retire,
                page_manager_factory=page_manager_factory,
            )
        geometry = ChannelGeometry(
            num_devices=topology.devices_per_channel,
            device=geometry or RdramGeometry(),
        )

    if isinstance(geometry, ChannelGeometry):
        memory = RambusChannel(
            timing=timing,
            geometry=geometry,
            record_trace=record_trace,
            explicit_retire=explicit_retire,
        )
    else:
        memory = RdramDevice(
            timing=timing,
            geometry=geometry,
            record_trace=record_trace,
            explicit_retire=explicit_retire,
        )
    if page_manager is None and page_manager_factory is not None:
        page_manager = page_manager_factory()
    memory.page_manager = page_manager
    return memory


class RambusChannel:
    """Multiple RDRAM devices behind the RdramDevice interface.

    All bus-level state (packet bus exclusivity, data-bus turnaround,
    write-buffer retire) is channel-global; bank state and the t_RR
    row-packet spacing are per device, which is exactly what lets a
    many-device channel hide single-device dead time under random
    loads.

    Args:
        timing: Channel/device timing parameters.
        geometry: Channel geometry (device count x per-device layout).
        record_trace: Record all packets for auditing.
        explicit_retire: Model write-buffer retires as COL RET packets.
    """

    def __init__(
        self,
        timing: Optional[RdramTiming] = None,
        geometry: Optional[ChannelGeometry] = None,
        record_trace: bool = True,
        explicit_retire: bool = False,
    ) -> None:
        self.timing = timing or RdramTiming()
        self.geometry = geometry or ChannelGeometry()
        self.record_trace = record_trace
        self.explicit_retire = explicit_retire
        #: Optional instrumentation (see RdramDevice.obs).
        self.obs: Optional[Instrumentation] = None
        #: Optional page-management strategy (see RdramDevice.page_manager).
        self.page_manager = None
        #: Optional attached address mapping (see RdramDevice.mapping).
        self.mapping = None
        self.banks: List[Bank] = [
            Bank(index=i, timing=self.timing)
            for i in range(self.geometry.num_banks)
        ]
        self.trace: List[object] = []
        self._row_bus_free = 0
        self._col_bus_free = 0
        self._data_bus_free = 0
        self._last_act_by_device = [NEVER] * self.geometry.num_devices
        self._last_write_data_end = NEVER
        self._last_data_dir: Optional[BusDirection] = None
        self._data_packets_moved = 0
        self._retire_pending = False

    # ------------------------------------------------------------------
    # queries (RdramDevice interface)

    @property
    def bytes_transferred(self) -> int:
        """Total bytes moved on the shared DATA bus."""
        return self._data_packets_moved * DATA_PACKET_BYTES

    def bank(self, index: int) -> Bank:
        """Global bank ``index`` (bounds-checked)."""
        if not 0 <= index < self.geometry.num_banks:
            raise ProtocolError(
                f"global bank {index} out of range "
                f"0..{self.geometry.num_banks - 1}"
            )
        return self.banks[index]

    def earliest_act(self, bank: int, now: int) -> int:
        """First legal ACT start: bank rules, t_RR within the owning
        device, shared ROW bus, and double-bank adjacency."""
        device = self.geometry.device_of(bank)
        earliest = max(
            self.bank(bank).earliest_act(now),
            self._row_bus_free,
            self._last_act_by_device[device] + self.timing.t_rr,
        )
        for neighbor in self.geometry.neighbors(bank):
            neighbor_bank = self.banks[neighbor]
            if neighbor_bank.is_open:
                raise ProtocolError(
                    f"bank {bank}: ACT while adjacent bank {neighbor} is "
                    "open (shared sense amps on a double-bank core)"
                )
            earliest = max(
                earliest, neighbor_bank.last_prer_start + self.timing.t_rp
            )
        return earliest

    def earliest_prer(self, bank: int, now: int) -> int:
        """First legal PRER start (bank rules, shared ROW bus)."""
        return max(self.bank(bank).earliest_prer(now), self._row_bus_free)

    def earliest_col(
        self, bank: int, row: int, now: int, direction: BusDirection
    ) -> int:
        """First legal COL start (bank rules, shared COL/DATA buses,
        channel-global turnaround and retire slot)."""
        delay = (
            self.timing.read_data_delay()
            if direction is BusDirection.READ
            else self.timing.write_data_delay()
        )
        col_bus_free = self._col_bus_free
        if (
            direction is BusDirection.READ
            and self.explicit_retire
            and self._retire_pending
        ):
            col_bus_free += self.timing.t_pack
        start = max(self.bank(bank).earliest_col(now, row), col_bus_free)
        data_start = max(start + delay, self._data_bus_free)
        if direction is BusDirection.READ and self._last_data_dir is BusDirection.WRITE:
            data_start = max(
                data_start, self._last_write_data_end + self.timing.t_rw
            )
        return data_start - delay

    # ------------------------------------------------------------------
    # issue operations (RdramDevice interface)

    def issue_act(self, bank: int, row: int, now: int) -> RowPacket:
        """Issue a ROW ACT on the shared row bus."""
        if not 0 <= row < self.geometry.rows_per_bank:
            raise ProtocolError(
                f"row {row} out of range 0..{self.geometry.rows_per_bank - 1}"
            )
        start = self.earliest_act(bank, now)
        if self.obs is not None:
            self.obs.counters.incr("device.row_act")
        self.bank(bank).apply_act(start, row)
        self._row_bus_free = start + self.timing.t_pack
        self._last_act_by_device[self.geometry.device_of(bank)] = start
        packet = RowPacket(command=RowCommand.ACT, bank=bank, row=row, start=start)
        if self.record_trace:
            self.trace.append(packet)
        return packet

    def issue_prer(self, bank: int, now: int) -> RowPacket:
        """Issue a ROW PRER on the shared row bus."""
        start = self.earliest_prer(bank, now)
        if self.obs is not None:
            self.obs.counters.incr("device.row_prer")
            record_bank_close(self.obs, self.bank(bank), bank, start)
        self.bank(bank).apply_prer(start)
        self._row_bus_free = start + self.timing.t_pack
        packet = RowPacket(command=RowCommand.PRER, bank=bank, row=None, start=start)
        if self.record_trace:
            self.trace.append(packet)
        return packet

    def issue_col(
        self,
        bank: int,
        row: int,
        column: int,
        now: int,
        direction: BusDirection,
        precharge: bool = False,
    ) -> ScheduledAccess:
        """Issue a COL RD/WR moving one DATA packet on the shared bus."""
        if not 0 <= column < self.geometry.packets_per_page:
            raise ProtocolError(
                f"column {column} out of range "
                f"0..{self.geometry.packets_per_page - 1}"
            )
        start = self.earliest_col(bank, row, now, direction)
        bank_obj = self.bank(bank)
        if self.obs is not None:
            self.obs.counters.incr("device.data_packets")
            record_data_gap(
                self.obs,
                self,
                bank_obj,
                bank,
                row,
                now,
                direction,
                start,
                (
                    self.timing.read_data_delay()
                    if direction is BusDirection.READ
                    else self.timing.write_data_delay()
                ),
            )
        if (
            direction is BusDirection.READ
            and self.explicit_retire
            and self._retire_pending
        ):
            retire = ColPacket(
                command=ColCommand.RET,
                bank=bank,
                row=row,
                column=0,
                start=start - self.timing.t_pack,
            )
            if self.record_trace:
                self.trace.append(retire)
            self._retire_pending = False
        bank_obj.apply_col(start, row)
        self._col_bus_free = start + self.timing.t_pack
        delay = (
            self.timing.read_data_delay()
            if direction is BusDirection.READ
            else self.timing.write_data_delay()
        )
        data_start = start + delay
        data = DataPacket(
            direction=direction, bank=bank, start=data_start, source_col_start=start
        )
        self._data_bus_free = data_start + self.timing.t_pack
        self._last_data_dir = direction
        if direction is BusDirection.WRITE:
            self._last_write_data_end = data_start + self.timing.t_pack
            self._retire_pending = True
        self._data_packets_moved += 1
        cmd = ColCommand.RD if direction is BusDirection.READ else ColCommand.WR
        col = ColPacket(command=cmd, bank=bank, row=row, column=column, start=start)
        if self.record_trace:
            self.trace.append(col)
            self.trace.append(data)
        if precharge:
            prer_start = bank_obj.earliest_prer(start)
            if self.obs is not None:
                record_bank_close(
                    self.obs, bank_obj, bank, prer_start, via_col=True
                )
            bank_obj.apply_prer(prer_start)
            if self.record_trace:
                self.trace.append(
                    RowPacket(
                        command=RowCommand.PRER,
                        bank=bank,
                        row=None,
                        start=prer_start,
                        via_col=True,
                    )
                )
        return ScheduledAccess(col=col, data=data, precharged=precharge)

    def issue_access(
        self,
        bank: int,
        row: int,
        column: int,
        now: int,
        direction: BusDirection,
        precharge: bool = False,
    ) -> AccessIssue:
        """Issue one full stream access (see
        :func:`repro.rdram.device.perform_access`)."""
        return perform_access(
            self, bank, row, column, now, direction, precharge=precharge
        )

    def sync_bank(self, index: int, now: int) -> None:
        """Materialize any page-manager action due on a global bank."""
        if self.page_manager is not None and self.page_manager.runtime:
            self.page_manager.sync(self, index, now)

    def autoclose(self, bank: int, due: int) -> None:
        """Close a bank from a page-manager timeout (no ROW-bus cost)."""
        bank_obj = self.bank(bank)
        start = bank_obj.earliest_prer(due)
        if self.obs is not None:
            self.obs.counters.incr("device.autoclose")
            record_bank_close(self.obs, bank_obj, bank, start, via_col=True)
        bank_obj.apply_prer(start)
        if self.record_trace:
            self.trace.append(
                RowPacket(
                    command=RowCommand.PRER,
                    bank=bank,
                    row=None,
                    start=start,
                    via_col=True,
                )
            )

    def finish_observation(self, end_cycle: int) -> None:
        """Close any still-open "row open" spans at the end of a run."""
        if self.obs is not None:
            flush_bank_observation(self.obs, self.banks, end_cycle)

    def reset(self) -> None:
        """Return the channel and all devices to the power-on state."""
        for bank in self.banks:
            bank.reset()
        if self.page_manager is not None:
            self.page_manager.reset()
        self.trace.clear()
        self._row_bus_free = 0
        self._col_bus_free = 0
        self._data_bus_free = 0
        self._last_act_by_device = [NEVER] * self.geometry.num_devices
        self._last_write_data_end = NEVER
        self._last_data_dir = None
        self._data_packets_moved = 0
        self._retire_pending = False
