"""One-call simulation API.

:func:`simulate_kernel` is the library's front door: name a kernel,
pick an organization, and get a :class:`~repro.sim.results.SimulationResult`.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.errors import ConfigurationError
from repro.cpu.kernels import Kernel, get_kernel
from repro.cpu.streams import Alignment
from repro.core.policies import POLICIES, SchedulingPolicy
from repro.core.smc import build_smc_system
from repro.memsys.config import MemorySystemConfig
from repro.obs.core import Instrumentation
from repro.sim.engine import run_smc
from repro.sim.results import SimulationResult

#: Named organizations matching the paper's two design points.
ORGANIZATIONS = {
    "cli": MemorySystemConfig.cli,
    "pi": MemorySystemConfig.pi,
}


def resolve_config(
    organization: Union[str, MemorySystemConfig]
) -> MemorySystemConfig:
    """Accept an organization name ("cli"/"pi") or a full config."""
    if isinstance(organization, MemorySystemConfig):
        return organization
    try:
        return ORGANIZATIONS[organization.lower()]()
    except KeyError:
        raise ConfigurationError(
            f"unknown organization {organization!r}; "
            f"use one of {sorted(ORGANIZATIONS)} or pass a "
            "MemorySystemConfig"
        ) from None


def resolve_policy(
    policy: Union[str, SchedulingPolicy, None]
) -> Optional[SchedulingPolicy]:
    """Accept a policy name, instance, or None (paper default)."""
    if policy is None or isinstance(policy, SchedulingPolicy):
        return policy
    try:
        return POLICIES[policy]()
    except KeyError:
        raise ConfigurationError(
            f"unknown policy {policy!r}; use one of {sorted(POLICIES)}"
        ) from None


def simulate_kernel(
    kernel: Union[str, Kernel],
    organization: Union[str, MemorySystemConfig] = "cli",
    length: int = 1024,
    fifo_depth: int = 64,
    stride: int = 1,
    alignment: Union[str, Alignment] = Alignment.STAGGERED,
    policy: Union[str, SchedulingPolicy, None] = None,
    audit: bool = False,
    refresh: bool = False,
    obs: Optional[Instrumentation] = None,
) -> SimulationResult:
    """Simulate one streaming kernel on an SMC-equipped RDRAM system.

    Args:
        kernel: Kernel name (see :data:`repro.cpu.kernels.KERNELS`) or
            a :class:`~repro.cpu.kernels.Kernel`.
        organization: "cli", "pi", or a custom
            :class:`~repro.memsys.config.MemorySystemConfig`.
        length: Vector length in elements (the paper uses 128 and 1024).
        fifo_depth: FIFO depth in elements (the paper sweeps 8-128).
        stride: Stream stride in elements.
        alignment: "aligned" (maximal bank conflicts) or "staggered".
        policy: MSU policy name or instance; None selects the paper's
            round-robin policy.
        audit: Verify the full packet trace against the protocol
            auditor after the run (slower; implies trace recording).
        refresh: Run a background refresh engine (the paper ignores
            refresh; enable to measure its cost).
        obs: Optional :class:`~repro.obs.core.Instrumentation` to
            record counters, spans and DATA-bus gaps for this run (see
            :mod:`repro.obs`).  Default None costs nothing.

    Returns:
        The simulation result, including percent-of-peak bandwidth.

    Example:
        >>> result = simulate_kernel("daxpy", "pi", length=1024,
        ...                          fifo_depth=128)
        >>> 0 < result.percent_of_peak <= 100
        True
    """
    kernel_obj = get_kernel(kernel) if isinstance(kernel, str) else kernel
    config = resolve_config(organization)
    if isinstance(alignment, str):
        alignment = Alignment(alignment.lower())
    system = build_smc_system(
        kernel_obj,
        config,
        length=length,
        fifo_depth=fifo_depth,
        stride=stride,
        alignment=alignment,
        policy=resolve_policy(policy),
        record_trace=audit,
        refresh=refresh,
    )
    return run_smc(system, audit=audit, obs=obs)
