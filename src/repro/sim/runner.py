"""One-call simulation API.

Two front doors, one engine:

* :class:`RunSpec` + :func:`simulate` — the canonical API.  A frozen,
  hashable, JSON-serializable description of one simulation; the
  result cache and the process-pool sweep backend (:mod:`repro.exec`)
  are both keyed on :meth:`RunSpec.canonical_key`.
* :func:`simulate_kernel` — the historical keyword interface, kept as
  a thin wrapper that builds a :class:`RunSpec` and calls
  :func:`simulate`.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Union

from repro.errors import ConfigurationError
from repro.cpu.kernels import KERNELS, Kernel, get_kernel
from repro.cpu.streams import Alignment, Direction, StreamSpec
from repro.core.policies import POLICIES, SchedulingPolicy
from repro.core.smc import build_smc_system
from repro.memsys.config import Interleaving, MemorySystemConfig, PagePolicy
from repro.obs.core import Instrumentation
from repro.rdram.channel import ChannelGeometry
from repro.rdram.device import RdramGeometry
from repro.rdram.timing import RdramTiming
from repro.sim.engine import run_smc
from repro.sim.results import SimulationResult

#: Named organizations matching the paper's two design points.
ORGANIZATIONS = {
    "cli": MemorySystemConfig.cli,
    "pi": MemorySystemConfig.pi,
}


def resolve_config(
    organization: Union[str, MemorySystemConfig]
) -> MemorySystemConfig:
    """Accept an organization name ("cli"/"pi") or a full config."""
    if isinstance(organization, MemorySystemConfig):
        return organization
    try:
        return ORGANIZATIONS[organization.lower()]()
    except (KeyError, AttributeError):
        raise ConfigurationError(
            f"unknown organization {organization!r}; "
            f"use one of {sorted(ORGANIZATIONS)} or pass a "
            "MemorySystemConfig"
        ) from None


def resolve_policy(
    policy: Union[str, SchedulingPolicy, None]
) -> Optional[SchedulingPolicy]:
    """Accept a policy name, instance, or None (paper default)."""
    if policy is None or isinstance(policy, SchedulingPolicy):
        return policy
    try:
        return POLICIES[policy]()
    except KeyError:
        raise ConfigurationError(
            f"unknown policy {policy!r}; use one of {sorted(POLICIES)}"
        ) from None


# -- config/kernel serialization helpers --------------------------------


def _geometry_to_dict(geometry: Any) -> Dict[str, Any]:
    if isinstance(geometry, ChannelGeometry):
        return {
            "kind": "channel",
            "num_devices": geometry.num_devices,
            "device": _geometry_to_dict(geometry.device),
        }
    if isinstance(geometry, RdramGeometry):
        data = dataclasses.asdict(geometry)
        data["kind"] = "device"
        return data
    raise ConfigurationError(
        f"cannot serialize geometry of type {type(geometry).__name__}"
    )


def _geometry_from_dict(data: Mapping[str, Any]) -> Any:
    kind = data.get("kind", "device")
    if kind == "channel":
        return ChannelGeometry(
            num_devices=data["num_devices"],
            device=_geometry_from_dict(data["device"]),
        )
    fields = {k: v for k, v in data.items() if k != "kind"}
    return RdramGeometry(**fields)


def _config_to_dict(config: MemorySystemConfig) -> Dict[str, Any]:
    return {
        "timing": dataclasses.asdict(config.timing),
        "geometry": _geometry_to_dict(config.geometry),
        "interleaving": config.interleaving.value,
        "page_policy": config.page_policy.value,
        "cacheline_bytes": config.cacheline_bytes,
    }


def _config_from_dict(data: Mapping[str, Any]) -> MemorySystemConfig:
    return MemorySystemConfig(
        timing=RdramTiming(**data["timing"]),
        geometry=_geometry_from_dict(data["geometry"]),
        interleaving=Interleaving(data["interleaving"]),
        page_policy=PagePolicy(data["page_policy"]),
        cacheline_bytes=data["cacheline_bytes"],
    )


def _kernel_to_dict(kernel: Kernel) -> Dict[str, Any]:
    return {
        "name": kernel.name,
        "expression": kernel.expression,
        "streams": [
            {
                "name": s.name,
                "vector": s.vector,
                "direction": s.direction.value,
                "offset": s.offset,
                "stride_factor": s.stride_factor,
            }
            for s in kernel.streams
        ],
    }


def _kernel_from_dict(data: Mapping[str, Any]) -> Kernel:
    return Kernel(
        name=data["name"],
        expression=data["expression"],
        streams=tuple(
            StreamSpec(
                name=s["name"],
                vector=s["vector"],
                direction=Direction(s["direction"]),
                offset=s["offset"],
                stride_factor=s["stride_factor"],
            )
            for s in data["streams"]
        ),
    )


@dataclass(frozen=True)
class RunSpec:
    """Everything that determines one simulation's outcome.

    A frozen record of the :func:`simulate_kernel` parameters.  On
    construction, values are normalized to their canonical form where
    one exists — a registered :class:`~repro.cpu.kernels.Kernel`
    becomes its name, a config equal to the paper's CLI/PI design
    point becomes ``"cli"``/``"pi"``, a registry policy instance
    becomes its name — so that equal work hashes equally regardless of
    how the caller spelled it.

    Unregistered kernels (e.g. from :func:`~repro.compiler.compile_loop`)
    and custom configs serialize structurally; only custom
    :class:`~repro.core.policies.SchedulingPolicy` *instances* outside
    the registry cannot be serialized (and therefore cannot be cached
    or sent to worker processes — run them serially instead).

    Note that runtime instrumentation (the ``obs`` argument of
    :func:`simulate`) is deliberately *not* part of the spec: it does
    not change the simulated outcome, only what is recorded about it.
    """

    kernel: Union[str, Kernel] = "daxpy"
    organization: Union[str, MemorySystemConfig] = "cli"
    length: int = 1024
    fifo_depth: int = 64
    stride: int = 1
    alignment: str = "staggered"
    policy: Union[str, SchedulingPolicy, None] = None
    audit: bool = False
    refresh: bool = False

    def __post_init__(self) -> None:
        kernel = self.kernel
        if isinstance(kernel, Kernel) and KERNELS.get(kernel.name) == kernel:
            object.__setattr__(self, "kernel", kernel.name)
        organization = self.organization
        if isinstance(organization, str):
            if organization.lower() in ORGANIZATIONS:
                object.__setattr__(self, "organization", organization.lower())
        elif isinstance(organization, MemorySystemConfig):
            for name, factory in ORGANIZATIONS.items():
                if organization == factory():
                    object.__setattr__(self, "organization", name)
                    break
        alignment = self.alignment
        if isinstance(alignment, Alignment):
            object.__setattr__(self, "alignment", alignment.value)
        else:
            # Validates the string; bad names raise ValueError exactly
            # as the historical simulate_kernel signature did.
            object.__setattr__(self, "alignment", Alignment(alignment.lower()).value)
        policy = self.policy
        if (
            isinstance(policy, SchedulingPolicy)
            and type(policy) is POLICIES.get(policy.name)
        ):
            object.__setattr__(self, "policy", policy.name)

    def to_dict(self) -> Dict[str, Any]:
        """This spec as a JSON-safe dict (inverse of :meth:`from_dict`).

        Raises:
            ConfigurationError: If the spec holds a custom policy
                instance, which has no serializable form.
        """
        kernel: Any = self.kernel
        if isinstance(kernel, Kernel):
            kernel = _kernel_to_dict(kernel)
        organization: Any = self.organization
        if isinstance(organization, MemorySystemConfig):
            organization = _config_to_dict(organization)
        policy = self.policy
        if isinstance(policy, SchedulingPolicy):
            raise ConfigurationError(
                f"policy instance {type(policy).__name__} (name "
                f"{policy.name!r}) is not in the POLICIES registry and "
                "cannot be serialized; register the class or pass the "
                "policy by name"
            )
        return {
            "kernel": kernel,
            "organization": organization,
            "length": self.length,
            "fifo_depth": self.fifo_depth,
            "stride": self.stride,
            "alignment": self.alignment,
            "policy": policy,
            "audit": self.audit,
            "refresh": self.refresh,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSpec":
        """Rebuild a spec from a :meth:`to_dict` dict."""
        kernel = data["kernel"]
        if isinstance(kernel, Mapping):
            kernel = _kernel_from_dict(kernel)
        organization = data["organization"]
        if isinstance(organization, Mapping):
            organization = _config_from_dict(organization)
        names = {f.name for f in dataclasses.fields(cls)}
        rest = {
            k: v for k, v in data.items()
            if k in names and k not in ("kernel", "organization")
        }
        return cls(kernel=kernel, organization=organization, **rest)

    def canonical_key(self) -> str:
        """A deterministic string identifying this simulation.

        Two specs describing the same work — however their kernel,
        organization, or policy was originally spelled — produce the
        same key.  This is what the result cache hashes.
        """
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    def describe(self) -> str:
        """Short human-readable label (for progress lines and errors)."""
        kernel = self.kernel.name if isinstance(self.kernel, Kernel) else self.kernel
        org = (
            self.organization
            if isinstance(self.organization, str)
            else self.organization.describe()
        )
        return (
            f"{kernel}/{org} L={self.length} f={self.fifo_depth} "
            f"stride={self.stride} {self.alignment}"
            + (f" policy={self.policy}" if self.policy is not None else "")
        )


def simulate(
    spec: RunSpec, obs: Optional[Instrumentation] = None
) -> SimulationResult:
    """Run the simulation a :class:`RunSpec` describes.

    If a result cache is active (via
    :func:`repro.exec.context.execution`) and holds this spec, the
    stored result is returned without simulating; fresh results are
    stored back.  Instrumented runs (``obs`` given) always simulate,
    since a cached result carries no event record.

    Args:
        spec: The full run specification.
        obs: Optional :class:`~repro.obs.core.Instrumentation` to
            record counters, spans and DATA-bus gaps for this run.

    Returns:
        The simulation result, including percent-of-peak bandwidth.
    """
    cache = None
    if obs is None:
        from repro.exec.context import active_cache

        cache = active_cache()
        if cache is not None:
            hit = cache.get(spec)
            if hit is not None:
                return hit
    kernel_obj = (
        get_kernel(spec.kernel) if isinstance(spec.kernel, str) else spec.kernel
    )
    config = resolve_config(spec.organization)
    system = build_smc_system(
        kernel_obj,
        config,
        length=spec.length,
        fifo_depth=spec.fifo_depth,
        stride=spec.stride,
        alignment=Alignment(spec.alignment),
        policy=resolve_policy(spec.policy),
        record_trace=spec.audit,
        refresh=spec.refresh,
    )
    result = run_smc(system, audit=spec.audit, obs=obs)
    if cache is not None:
        cache.put(spec, result)
    return result


def simulate_kernel(
    kernel: Union[str, Kernel],
    organization: Union[str, MemorySystemConfig] = "cli",
    length: int = 1024,
    fifo_depth: int = 64,
    stride: int = 1,
    alignment: Union[str, Alignment] = Alignment.STAGGERED,
    policy: Union[str, SchedulingPolicy, None] = None,
    audit: bool = False,
    refresh: bool = False,
    obs: Optional[Instrumentation] = None,
) -> SimulationResult:
    """Simulate one streaming kernel on an SMC-equipped RDRAM system.

    Keyword-style wrapper over :func:`simulate`; the parameters are
    packed into a :class:`RunSpec` unchanged.

    Args:
        kernel: Kernel name (see :data:`repro.cpu.kernels.KERNELS`) or
            a :class:`~repro.cpu.kernels.Kernel`.
        organization: "cli", "pi", or a custom
            :class:`~repro.memsys.config.MemorySystemConfig`.
        length: Vector length in elements (the paper uses 128 and 1024).
        fifo_depth: FIFO depth in elements (the paper sweeps 8-128).
        stride: Stream stride in elements.
        alignment: "aligned" (maximal bank conflicts) or "staggered".
        policy: MSU policy name or instance; None selects the paper's
            round-robin policy.
        audit: Verify the full packet trace against the protocol
            auditor after the run (slower; implies trace recording).
        refresh: Run a background refresh engine (the paper ignores
            refresh; enable to measure its cost).
        obs: Optional :class:`~repro.obs.core.Instrumentation` to
            record counters, spans and DATA-bus gaps for this run (see
            :mod:`repro.obs`).  Default None costs nothing.

    Returns:
        The simulation result, including percent-of-peak bandwidth.

    Example:
        >>> result = simulate_kernel("daxpy", "pi", length=1024,
        ...                          fifo_depth=128)
        >>> 0 < result.percent_of_peak <= 100
        True
    """
    spec = RunSpec(
        kernel=kernel,
        organization=organization,
        length=length,
        fifo_depth=fifo_depth,
        stride=stride,
        alignment=alignment,
        policy=policy,
        audit=audit,
        refresh=refresh,
    )
    return simulate(spec, obs=obs)
