"""One-call simulation API.

:class:`RunSpec` + :func:`simulate` are the canonical front door: a
frozen, hashable, JSON-serializable description of one simulation,
executed on a selectable engine.  The result cache and the
process-pool sweep backend (:mod:`repro.exec`) are both keyed on
:meth:`RunSpec.canonical_key`, which deliberately excludes the engine
choice — both engines are bit-identical, so they share cache entries.

Engines (see :mod:`repro.sim.batch`):

* ``"event"`` — the discrete-event kernel; supports every
  configuration, instrumentation, and auditing.
* ``"batch"`` — the vectorized fast path; bit-identical on the core
  configurations, several times faster.
* ``"auto"`` (default) — batch when the spec supports it, else event.

:func:`simulate_kernel` is the historical keyword interface, kept as a
deprecated thin wrapper that builds a :class:`RunSpec` and calls
:func:`simulate`.
"""

from __future__ import annotations

import dataclasses
import json
import warnings
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Union

from repro.errors import ConfigurationError
from repro.cpu.kernels import KERNELS, Kernel, get_kernel
from repro.cpu.streams import Alignment, Direction, StreamSpec
from repro.core.policies import POLICIES, SchedulingPolicy
from repro.core.smc import build_smc_system
from repro.memsys.address import MAPPINGS, list_mappings
from repro.memsys.config import (
    Interleaving,
    MemorySystemConfig,
    MemoryTopology,
    PagePolicy,
)
from repro.memsys.pagemanager import PAGE_POLICIES, list_page_policies
from repro.obs.core import Instrumentation
from repro.rdram.channel import ChannelGeometry
from repro.rdram.device import RdramGeometry
from repro.rdram.timing import RdramTiming
from repro.sim.batch import canonical_engine, resolve_engine, run_smc_batch
from repro.sim.engine import run_smc
from repro.sim.results import SimulationResult

#: Ambient engine default used when a spec says "auto"; see
#: :func:`set_default_engine`.
_DEFAULT_ENGINE = "auto"


def set_default_engine(engine: str) -> str:
    """Set the process-wide engine used when specs say ``"auto"``.

    CLIs use this to make one ``--engine`` flag govern every run they
    launch without threading the choice through each call site.
    Specs with an explicit ``engine="event"``/``"batch"`` are not
    affected.

    Returns:
        The previous default (so callers can restore it).
    """
    global _DEFAULT_ENGINE
    previous = _DEFAULT_ENGINE
    _DEFAULT_ENGINE = canonical_engine(engine)
    return previous


def default_engine() -> str:
    """The current process-wide ``"auto"`` engine resolution."""
    return _DEFAULT_ENGINE

#: Named organizations matching the paper's two design points.
ORGANIZATIONS = {
    "cli": MemorySystemConfig.cli,
    "pi": MemorySystemConfig.pi,
}


def resolve_config(
    organization: Union[str, MemorySystemConfig]
) -> MemorySystemConfig:
    """Accept an organization name ("cli"/"pi") or a full config."""
    if isinstance(organization, MemorySystemConfig):
        return organization
    try:
        return ORGANIZATIONS[organization.lower()]()
    except (KeyError, AttributeError):
        raise ConfigurationError(
            f"unknown organization {organization!r}; "
            f"use one of {sorted(ORGANIZATIONS)} or pass a "
            "MemorySystemConfig"
        ) from None


def apply_policy_overrides(
    config: MemorySystemConfig,
    interleaving: Optional[Union[str, Interleaving]] = None,
    page_policy: Optional[Union[str, PagePolicy]] = None,
) -> MemorySystemConfig:
    """A copy of ``config`` with mapping/page-policy names swapped in.

    Either override may be an enum member, a registered name (see
    :data:`repro.memsys.address.MAPPINGS` and
    :data:`repro.memsys.pagemanager.PAGE_POLICIES`), or None to keep
    the config's own choice.

    Raises:
        ConfigurationError: On a name no registry entry claims.
    """
    replacements: Dict[str, Any] = {}
    if interleaving is not None:
        replacements["interleaving"] = _canonical_mapping_name(interleaving)
    if page_policy is not None:
        replacements["page_policy"] = _canonical_policy_name(page_policy)
    if not replacements:
        return config
    return dataclasses.replace(config, **replacements)


def _canonical_mapping_name(value: Union[str, Interleaving]) -> str:
    """Validate an address-mapping spelling against the registry."""
    name = value.value if isinstance(value, Interleaving) else str(value).lower()
    if name not in MAPPINGS:
        raise ConfigurationError(
            f"unknown address mapping {value!r}; "
            f"registered mappings: {list_mappings()}"
        )
    return name


def _canonical_policy_name(value: Union[str, PagePolicy]) -> str:
    """Validate a page-policy spelling against the registry."""
    name = value.value if isinstance(value, PagePolicy) else str(value).lower()
    if name not in PAGE_POLICIES:
        raise ConfigurationError(
            f"unknown page policy {value!r}; "
            f"registered policies: {list_page_policies()}"
        )
    return name


def resolve_policy(
    policy: Union[str, SchedulingPolicy, None]
) -> Optional[SchedulingPolicy]:
    """Accept a policy name, instance, or None (paper default)."""
    if policy is None or isinstance(policy, SchedulingPolicy):
        return policy
    try:
        return POLICIES[policy]()
    except KeyError:
        raise ConfigurationError(
            f"unknown policy {policy!r}; use one of {sorted(POLICIES)}"
        ) from None


# -- config/kernel serialization helpers --------------------------------


def _geometry_to_dict(geometry: Any) -> Dict[str, Any]:
    if isinstance(geometry, ChannelGeometry):
        return {
            "kind": "channel",
            "num_devices": geometry.num_devices,
            "device": _geometry_to_dict(geometry.device),
        }
    if isinstance(geometry, RdramGeometry):
        data = dataclasses.asdict(geometry)
        data["kind"] = "device"
        return data
    raise ConfigurationError(
        f"cannot serialize geometry of type {type(geometry).__name__}"
    )


def _geometry_from_dict(data: Mapping[str, Any]) -> Any:
    kind = data.get("kind", "device")
    if kind == "channel":
        return ChannelGeometry(
            num_devices=data["num_devices"],
            device=_geometry_from_dict(data["device"]),
        )
    fields = {k: v for k, v in data.items() if k != "kind"}
    return RdramGeometry(**fields)


def _config_to_dict(config: MemorySystemConfig) -> Dict[str, Any]:
    data = {
        "timing": dataclasses.asdict(config.timing),
        "geometry": _geometry_to_dict(config.geometry),
        "interleaving": config.interleaving_name,
        "page_policy": config.page_policy_name,
        "cacheline_bytes": config.cacheline_bytes,
    }
    # Emitted only when non-default so that canonical cache keys for
    # configs predating the field are unchanged.
    if config.page_timeout_cycles != 64:
        data["page_timeout_cycles"] = config.page_timeout_cycles
    if config.remap_epoch_accesses != 1024:
        data["remap_epoch_accesses"] = config.remap_epoch_accesses
    if not config.topology.single:
        data["topology"] = {
            "channels": config.topology.channels,
            "devices_per_channel": config.topology.devices_per_channel,
        }
    return data


def _config_from_dict(data: Mapping[str, Any]) -> MemorySystemConfig:
    topology = data.get("topology")
    return MemorySystemConfig(
        timing=RdramTiming(**data["timing"]),
        geometry=_geometry_from_dict(data["geometry"]),
        interleaving=data["interleaving"],
        page_policy=data["page_policy"],
        cacheline_bytes=data["cacheline_bytes"],
        page_timeout_cycles=data.get("page_timeout_cycles", 64),
        remap_epoch_accesses=data.get("remap_epoch_accesses", 1024),
        topology=(
            MemoryTopology(**topology) if topology else MemoryTopology()
        ),
    )


def _kernel_to_dict(kernel: Kernel) -> Dict[str, Any]:
    return {
        "name": kernel.name,
        "expression": kernel.expression,
        "streams": [
            {
                "name": s.name,
                "vector": s.vector,
                "direction": s.direction.value,
                "offset": s.offset,
                "stride_factor": s.stride_factor,
            }
            for s in kernel.streams
        ],
    }


def _kernel_from_dict(data: Mapping[str, Any]) -> Kernel:
    return Kernel(
        name=data["name"],
        expression=data["expression"],
        streams=tuple(
            StreamSpec(
                name=s["name"],
                vector=s["vector"],
                direction=Direction(s["direction"]),
                offset=s["offset"],
                stride_factor=s["stride_factor"],
            )
            for s in data["streams"]
        ),
    )


@dataclass(frozen=True)
class RunSpec:
    """Everything that determines one simulation's outcome.

    A frozen record of one simulation's parameters.  On
    construction, values are normalized to their canonical form where
    one exists — a registered :class:`~repro.cpu.kernels.Kernel`
    becomes its name, a config equal to the paper's CLI/PI design
    point becomes ``"cli"``/``"pi"``, a registry policy instance
    becomes its name — so that equal work hashes equally regardless of
    how the caller spelled it.

    Unregistered kernels (e.g. from :func:`~repro.compiler.compile_loop`)
    and custom configs serialize structurally; only custom
    :class:`~repro.core.policies.SchedulingPolicy` *instances* outside
    the registry cannot be serialized (and therefore cannot be cached
    or sent to worker processes — run them serially instead).

    The ``interleaving`` and ``page_policy`` fields override the
    organization's own choices with any registered address mapping or
    page-management policy by name.  They too are normalized: enum
    members become their registry names, and an override equal to what
    the organization would pick anyway collapses to None, so e.g.
    ``RunSpec(organization="cli", page_policy="closed")`` and
    ``RunSpec(organization="cli")`` hash equally.  A custom config
    that differs from a named design point only in these two choices
    is decomposed into the name plus overrides for the same reason.

    Note that runtime instrumentation (the ``obs`` argument of
    :func:`simulate`) is deliberately *not* part of the spec: it does
    not change the simulated outcome, only what is recorded about it.
    ``telemetry_window`` rides along the same way: it is serialized by
    :meth:`to_dict` so sweep definitions carry it, but excluded from
    :meth:`canonical_key` — telemetry never changes the simulated
    outcome, so a windowed spec shares its cache entry with the plain
    one.  ``engine`` follows the same rule: the two engines are
    bit-identical wherever both run, so the choice is serialized (a
    sweep definition pins its engine across worker processes) but
    never part of the cache identity.
    """

    kernel: Union[str, Kernel] = "daxpy"
    organization: Union[str, MemorySystemConfig] = "cli"
    length: int = 1024
    fifo_depth: int = 64
    stride: int = 1
    alignment: str = "staggered"
    policy: Union[str, SchedulingPolicy, None] = None
    audit: bool = False
    refresh: bool = False
    interleaving: Optional[Union[str, Interleaving]] = None
    page_policy: Optional[Union[str, PagePolicy]] = None
    telemetry_window: Optional[int] = None
    engine: str = "auto"
    channels: int = 1
    devices: int = 1

    def __post_init__(self) -> None:
        if self.telemetry_window is not None and self.telemetry_window <= 0:
            raise ConfigurationError(
                "telemetry window must be positive, got "
                f"{self.telemetry_window}"
            )
        object.__setattr__(self, "engine", canonical_engine(self.engine))
        # Validates the channel/device counts exactly as the config
        # layer will; the instance itself is discarded.
        MemoryTopology(
            channels=self.channels, devices_per_channel=self.devices
        )
        organization = self.organization
        if (
            isinstance(organization, MemorySystemConfig)
            and not organization.topology.single
        ):
            # A config carrying its own topology decomposes into the
            # channels/devices fields so equal work hashes equally
            # however the caller spelled it.
            if (self.channels, self.devices) not in (
                (1, 1),
                (
                    organization.topology.channels,
                    organization.topology.devices_per_channel,
                ),
            ):
                raise ConfigurationError(
                    "conflicting topologies: spec says "
                    f"{self.channels}x{self.devices}, config says "
                    f"{organization.topology.describe()}"
                )
            object.__setattr__(
                self, "channels", organization.topology.channels
            )
            object.__setattr__(
                self, "devices", organization.topology.devices_per_channel
            )
            object.__setattr__(
                self,
                "organization",
                dataclasses.replace(organization, topology=MemoryTopology()),
            )
        kernel = self.kernel
        if isinstance(kernel, Kernel) and KERNELS.get(kernel.name) == kernel:
            object.__setattr__(self, "kernel", kernel.name)
        if self.interleaving is not None:
            object.__setattr__(
                self, "interleaving",
                _canonical_mapping_name(self.interleaving),
            )
        if self.page_policy is not None:
            object.__setattr__(
                self, "page_policy",
                _canonical_policy_name(self.page_policy),
            )
        organization = self.organization
        if isinstance(organization, str):
            if organization.lower() in ORGANIZATIONS:
                object.__setattr__(self, "organization", organization.lower())
        elif isinstance(organization, MemorySystemConfig):
            self._canonicalize_config(organization)
        organization = self.organization
        if isinstance(organization, str) and organization in ORGANIZATIONS:
            # Overrides that restate the named organization's own
            # defaults carry no information; drop them.
            base = ORGANIZATIONS[organization]()
            if self.interleaving == base.interleaving_name:
                object.__setattr__(self, "interleaving", None)
            if self.page_policy == base.page_policy_name:
                object.__setattr__(self, "page_policy", None)
            if self.interleaving is not None or self.page_policy is not None:
                # Overrides that turn one named organization into
                # another collapse to the bare name, so e.g.
                # cli + interleaving=pi + page_policy=open hashes the
                # same as plain "pi".
                effective = apply_policy_overrides(
                    base,
                    interleaving=self.interleaving,
                    page_policy=self.page_policy,
                )
                for name, factory in ORGANIZATIONS.items():
                    if effective == factory():
                        object.__setattr__(self, "organization", name)
                        object.__setattr__(self, "interleaving", None)
                        object.__setattr__(self, "page_policy", None)
                        break
        alignment = self.alignment
        if isinstance(alignment, Alignment):
            object.__setattr__(self, "alignment", alignment.value)
        else:
            # Validates the string; bad names raise ValueError exactly
            # as the historical simulate_kernel signature did.
            object.__setattr__(self, "alignment", Alignment(alignment.lower()).value)
        policy = self.policy
        if (
            isinstance(policy, SchedulingPolicy)
            and type(policy) is POLICIES.get(policy.name)
        ):
            object.__setattr__(self, "policy", policy.name)

    def _canonicalize_config(self, config: MemorySystemConfig) -> None:
        """Reduce a config to a named organization where possible.

        An exact match becomes the bare name.  A config that differs
        from a named design point only in its interleaving/page-policy
        choices becomes the name plus override fields — but only when
        the caller gave no explicit overrides, so an explicit override
        is never silently combined with a conflicting config.
        """
        for name, factory in ORGANIZATIONS.items():
            if config == factory():
                object.__setattr__(self, "organization", name)
                return
        if self.interleaving is not None or self.page_policy is not None:
            return
        for name, factory in ORGANIZATIONS.items():
            base = factory()
            restored = dataclasses.replace(
                config,
                interleaving=base.interleaving,
                page_policy=base.page_policy,
                page_timeout_cycles=base.page_timeout_cycles,
                remap_epoch_accesses=base.remap_epoch_accesses,
            )
            if restored == base:
                if (
                    config.page_timeout_cycles != base.page_timeout_cycles
                    or config.remap_epoch_accesses
                    != base.remap_epoch_accesses
                ):
                    # These knobs have no override field; keep the
                    # config structural so the values are preserved.
                    return
                object.__setattr__(self, "organization", name)
                if config.interleaving_name != base.interleaving_name:
                    object.__setattr__(
                        self, "interleaving", config.interleaving_name
                    )
                if config.page_policy_name != base.page_policy_name:
                    object.__setattr__(
                        self, "page_policy", config.page_policy_name
                    )
                return

    def to_dict(self) -> Dict[str, Any]:
        """This spec as a JSON-safe dict (inverse of :meth:`from_dict`).

        Raises:
            ConfigurationError: If the spec holds a custom policy
                instance, which has no serializable form.
        """
        kernel: Any = self.kernel
        if isinstance(kernel, Kernel):
            kernel = _kernel_to_dict(kernel)
        organization: Any = self.organization
        if isinstance(organization, MemorySystemConfig):
            organization = _config_to_dict(organization)
        policy = self.policy
        if isinstance(policy, SchedulingPolicy):
            raise ConfigurationError(
                f"policy instance {type(policy).__name__} (name "
                f"{policy.name!r}) is not in the POLICIES registry and "
                "cannot be serialized; register the class or pass the "
                "policy by name"
            )
        data = {
            "kernel": kernel,
            "organization": organization,
            "length": self.length,
            "fifo_depth": self.fifo_depth,
            "stride": self.stride,
            "alignment": self.alignment,
            "policy": policy,
            "audit": self.audit,
            "refresh": self.refresh,
        }
        # None overrides are omitted (not serialized as null) so that
        # canonical cache keys from before these fields existed are
        # unchanged.
        if self.interleaving is not None:
            data["interleaving"] = self.interleaving
        if self.page_policy is not None:
            data["page_policy"] = self.page_policy
        if self.telemetry_window is not None:
            data["telemetry_window"] = self.telemetry_window
        if self.engine != "auto":
            data["engine"] = self.engine
        # Default 1x1 topology is omitted so canonical cache keys from
        # before these fields existed are unchanged (and stay valid).
        if self.channels != 1:
            data["channels"] = self.channels
        if self.devices != 1:
            data["devices"] = self.devices
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSpec":
        """Rebuild a spec from a :meth:`to_dict` dict."""
        kernel = data["kernel"]
        if isinstance(kernel, Mapping):
            kernel = _kernel_from_dict(kernel)
        organization = data["organization"]
        if isinstance(organization, Mapping):
            organization = _config_from_dict(organization)
        names = {f.name for f in dataclasses.fields(cls)}
        rest = {
            k: v for k, v in data.items()
            if k in names and k not in ("kernel", "organization")
        }
        return cls(kernel=kernel, organization=organization, **rest)

    def canonical_key(self) -> str:
        """A deterministic string identifying this simulation.

        Two specs describing the same work — however their kernel,
        organization, or policy was originally spelled — produce the
        same key.  This is what the result cache hashes.
        ``telemetry_window`` and ``engine`` are excluded: sampling
        never changes the simulated outcome, and the engines are
        bit-identical, so windowed/batch specs share the plain spec's
        cache entry.
        """
        data = self.to_dict()
        data.pop("telemetry_window", None)
        data.pop("engine", None)
        return json.dumps(data, sort_keys=True, separators=(",", ":"))

    def describe(self) -> str:
        """Short human-readable label (for progress lines and errors)."""
        kernel = self.kernel.name if isinstance(self.kernel, Kernel) else self.kernel
        org = (
            self.organization
            if isinstance(self.organization, str)
            else self.organization.describe()
        )
        return (
            f"{kernel}/{org} L={self.length} f={self.fifo_depth} "
            f"stride={self.stride} {self.alignment}"
            + (f" policy={self.policy}" if self.policy is not None else "")
            + (
                f" interleaving={self.interleaving}"
                if self.interleaving is not None else ""
            )
            + (
                f" page_policy={self.page_policy}"
                if self.page_policy is not None else ""
            )
            + (
                f" topo={self.channels}x{self.devices}"
                if (self.channels, self.devices) != (1, 1) else ""
            )
        )


def simulate(
    spec: RunSpec,
    obs: Optional[Instrumentation] = None,
    engine: Optional[str] = None,
) -> SimulationResult:
    """Run the simulation a :class:`RunSpec` describes.

    This is the package's single simulation entry point.  The engine
    is chosen in order of precedence: the ``engine`` argument, then
    ``spec.engine``, then — when both say ``"auto"`` — the process
    default (:func:`set_default_engine`).  A final ``"auto"`` picks
    the batch fast path whenever the spec supports it and no
    instrumentation is attached, falling back to the event kernel
    otherwise; requesting ``"batch"`` explicitly raises
    :class:`~repro.errors.ConfigurationError` instead of falling back.
    Both engines produce bit-identical results.

    If a result cache is active (via
    :func:`repro.exec.context.execution`) and holds this spec, the
    stored result is returned without simulating; fresh results are
    stored back.  Instrumented runs (``obs`` given) always simulate,
    since a cached result carries no event record.

    Args:
        spec: The full run specification.
        obs: Optional :class:`~repro.obs.core.Instrumentation` to
            record counters, spans and DATA-bus gaps for this run.
        engine: Optional ``"event"``/``"batch"``/``"auto"`` override
            of ``spec.engine`` for this call.

    Returns:
        The simulation result, including percent-of-peak bandwidth.
    """
    choice = canonical_engine(engine) if engine is not None else spec.engine
    if choice == "auto":
        choice = _DEFAULT_ENGINE
    cache = None
    if obs is None:
        from repro.exec.context import active_cache

        cache = active_cache()
        if cache is not None:
            hit = cache.get(spec)
            if hit is not None:
                return hit
    elif spec.telemetry_window is not None and obs.telemetry_window is None:
        # The spec carries the sampling request; an explicitly windowed
        # Instrumentation wins over the spec's setting.
        obs.telemetry_window = spec.telemetry_window
    kernel_obj = (
        get_kernel(spec.kernel) if isinstance(spec.kernel, str) else spec.kernel
    )
    config = apply_policy_overrides(
        resolve_config(spec.organization),
        interleaving=spec.interleaving,
        page_policy=spec.page_policy,
    )
    if (spec.channels, spec.devices) != (1, 1):
        config = dataclasses.replace(
            config,
            topology=MemoryTopology(
                channels=spec.channels, devices_per_channel=spec.devices
            ),
        )
    if config.topology.channels > 1:
        if spec.audit:
            raise ConfigurationError(
                "packet-trace auditing assumes a single channel's buses; "
                "audit per-channel runs instead of a "
                f"{config.topology.describe()} fabric"
            )
        if obs is not None:
            raise ConfigurationError(
                "stall attribution and telemetry assume a single DATA "
                "bus; run multi-channel specs without instrumentation"
            )
    resolved = resolve_engine(
        choice,
        config,
        policy=spec.policy,
        audit=spec.audit,
        instrumented=obs is not None,
    )
    if resolved == "batch":
        result = run_smc_batch(
            kernel_obj,
            config,
            length=spec.length,
            fifo_depth=spec.fifo_depth,
            stride=spec.stride,
            alignment=Alignment(spec.alignment),
            refresh=spec.refresh,
        )
    else:
        system = build_smc_system(
            kernel_obj,
            config,
            length=spec.length,
            fifo_depth=spec.fifo_depth,
            stride=spec.stride,
            alignment=Alignment(spec.alignment),
            policy=resolve_policy(spec.policy),
            record_trace=spec.audit,
            refresh=spec.refresh,
        )
        result = run_smc(system, audit=spec.audit, obs=obs)
    if cache is not None:
        cache.put(spec, result)
    return result


def simulate_kernel(
    kernel: Union[str, Kernel],
    organization: Union[str, MemorySystemConfig] = "cli",
    length: int = 1024,
    fifo_depth: int = 64,
    stride: int = 1,
    alignment: Union[str, Alignment] = Alignment.STAGGERED,
    policy: Union[str, SchedulingPolicy, None] = None,
    audit: bool = False,
    refresh: bool = False,
    interleaving: Optional[Union[str, Interleaving]] = None,
    page_policy: Optional[Union[str, PagePolicy]] = None,
    telemetry_window: Optional[int] = None,
    obs: Optional[Instrumentation] = None,
    engine: str = "auto",
) -> SimulationResult:
    """Simulate one streaming kernel on an SMC-equipped RDRAM system.

    .. deprecated::
        Build a :class:`RunSpec` and call :func:`simulate` instead;
        this keyword wrapper packs its parameters into a spec
        unchanged and will eventually be removed.

    Args:
        kernel: Kernel name (see :data:`repro.cpu.kernels.KERNELS`) or
            a :class:`~repro.cpu.kernels.Kernel`.
        organization: "cli", "pi", or a custom
            :class:`~repro.memsys.config.MemorySystemConfig`.
        length: Vector length in elements (the paper uses 128 and 1024).
        fifo_depth: FIFO depth in elements (the paper sweeps 8-128).
        stride: Stream stride in elements.
        alignment: "aligned" (maximal bank conflicts) or "staggered".
        policy: MSU policy name or instance; None selects the paper's
            round-robin policy.
        audit: Verify the full packet trace against the protocol
            auditor after the run (slower; implies trace recording).
        refresh: Run a background refresh engine (the paper ignores
            refresh; enable to measure its cost).
        interleaving: Optional registered address-mapping name (e.g.
            "swizzle") overriding the organization's own choice.
        page_policy: Optional registered page-management policy name
            (e.g. "timeout", "hybrid") overriding the organization's
            own choice.
        telemetry_window: Optional sampling period in cycles; applied
            to ``obs`` (when given without a window of its own) so the
            run emits windowed time series (see
            :mod:`repro.obs.telemetry`).
        obs: Optional :class:`~repro.obs.core.Instrumentation` to
            record counters, spans and DATA-bus gaps for this run (see
            :mod:`repro.obs`).  Default None costs nothing.
        engine: ``"event"``, ``"batch"``, or ``"auto"`` (see
            :func:`simulate`).

    Returns:
        The simulation result, including percent-of-peak bandwidth.

    Example:
        >>> spec = RunSpec(kernel="daxpy", organization="pi",
        ...                length=1024, fifo_depth=128)
        >>> 0 < simulate(spec).percent_of_peak <= 100
        True
    """
    warnings.warn(
        "simulate_kernel() is deprecated; build a RunSpec and call "
        "simulate(spec) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    spec = RunSpec(
        kernel=kernel,
        organization=organization,
        length=length,
        fifo_depth=fifo_depth,
        stride=stride,
        alignment=alignment,
        policy=policy,
        audit=audit,
        refresh=refresh,
        interleaving=interleaving,
        page_policy=page_policy,
        telemetry_window=telemetry_window,
        engine=engine,
    )
    return simulate(spec, obs=obs)
