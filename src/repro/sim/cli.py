"""Command-line simulator: one kernel, one configuration, full report.

Installed as ``repro-simulate``.  Runs a single SMC simulation (or the
natural-order baseline) and prints the result, optionally with the
Gantt trace view, derived metrics, a protocol audit, stall statistics,
a machine-readable JSON report, or an exported event trace::

    repro-simulate daxpy --org pi --fifo-depth 64 --gantt --metrics
    repro-simulate "y[i] = a*x[i] + y[i]" --compile --org cli
    repro-simulate vaxpy --baseline natural-order --stride 4
    repro-simulate daxpy --org pi --stats --trace-out trace.json
    repro-simulate copy --org cli --json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import Optional, Sequence

from repro.errors import ConfigurationError, ObservabilityError, ReproError
from repro.analytic.cache import natural_order_bound
from repro.analytic.smc import smc_bound
from repro.compiler.frontend import compile_loop
from repro.core.policies import POLICIES
from repro.core.smc import build_smc_system
from repro.cpu.kernels import KERNELS, get_kernel
from repro.cpu.streams import Alignment
from repro.memsys.address import MAPPINGS, list_mappings
from repro.memsys.config import MemoryTopology
from repro.memsys.pagemanager import PAGE_POLICIES, list_page_policies
from repro.cache.controller import CachedNaturalOrderController
from repro.core.l2stream import L2StreamingController
from repro.naturalorder.controller import NaturalOrderController
from repro.obs import AccessMix, Instrumentation, access_mix, attribute_stalls
from repro.obs.export import write_chrome_trace, write_jsonl
from repro.obs.metrics import write_metrics_jsonl
from repro.rdram.audit import audit_trace
from repro.rdram.tracefmt import render_trace
from repro.exec import execution
from repro.sim.batch import ENGINE_DESCRIPTIONS, ENGINES, list_engines
from repro.traffic.scheduling import SCHEDULERS, list_schedulers
from repro.sim.engine import run_smc
from repro.sim.metrics import bank_imbalance, measure_trace
from repro.sim.runner import (
    RunSpec,
    apply_policy_overrides,
    resolve_config,
    resolve_policy,
    simulate,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-simulate",
        description=(
            "Simulate a streaming kernel on a Direct RDRAM memory system "
            "(HPCA 1999 reproduction)."
        ),
    )
    parser.add_argument(
        "kernel",
        nargs="?",
        default=None,
        help=f"kernel name ({', '.join(sorted(KERNELS))}) or, with "
             "--compile, a loop body like 'y[i] = a*x[i] + y[i]'",
    )
    parser.add_argument("--compile", action="store_true",
                        help="treat KERNEL as loop source to compile")
    parser.add_argument("--org", default="cli", choices=("cli", "pi"),
                        help="memory organization (default cli)")
    parser.add_argument("--channels", type=int, default=1, metavar="N",
                        help="independent Rambus channels (default 1); "
                             "multi-channel runs use the event kernel "
                             "and the plain report")
    parser.add_argument("--devices", type=int, default=1, metavar="M",
                        help="RDRAM devices per channel (default 1)")
    parser.add_argument("--length", type=int, default=1024,
                        help="vector length in elements (default 1024)")
    parser.add_argument("--fifo-depth", type=int, default=64,
                        help="SMC FIFO depth in elements (default 64)")
    parser.add_argument("--stride", type=int, default=1,
                        help="vector stride in 64-bit words (default 1)")
    parser.add_argument("--alignment", default="staggered",
                        choices=("staggered", "aligned"),
                        help="vector base placement (default staggered)")
    parser.add_argument("--policy", default="round-robin",
                        choices=tuple(sorted(POLICIES)),
                        help="MSU scheduling policy")
    parser.add_argument("--interleaving", default=None, metavar="NAME",
                        help="registered address mapping overriding the "
                             "organization's own (see --list-policies)")
    parser.add_argument("--page-policy", default=None, metavar="NAME",
                        help="registered page-management policy "
                             "overriding the organization's own (see "
                             "--list-policies)")
    parser.add_argument("--list-policies", action="store_true",
                        help="list registered address mappings, page "
                             "policies, MSU scheduling policies, "
                             "traffic schedulers, and simulation "
                             "engines, then exit")
    parser.add_argument("--engine", default="auto",
                        choices=ENGINES,
                        help="simulation engine: the discrete-event "
                             "kernel, the vectorized batch fast path, "
                             "or auto selection (default auto)")
    parser.add_argument("--list-engines", action="store_true",
                        help="list the simulation engines, then exit")
    parser.add_argument("--baseline", default=None,
                        choices=("natural-order", "cached", "l2-streaming"),
                        help="run a traditional controller instead of "
                             "the SMC: the bare natural-order device, "
                             "the cache-realistic natural-order "
                             "controller, or the L2-streaming variant")
    parser.add_argument("--refresh", action="store_true",
                        help="run the background refresh engine")
    parser.add_argument("--gantt", type=int, nargs="?", const=120,
                        default=None, metavar="CYCLES",
                        help="print the first CYCLES cycles as a timing "
                             "diagram (default 120)")
    parser.add_argument("--metrics", action="store_true",
                        help="print trace-derived bus/bank metrics")
    parser.add_argument("--audit", action="store_true",
                        help="verify the packet trace against the "
                             "protocol auditor")
    parser.add_argument("--bounds", action="store_true",
                        help="print the Section 5 analytic bounds")
    parser.add_argument("--stats", action="store_true",
                        help="print instrumentation counters and the "
                             "stall-attribution table")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="export the instrumented run as a Chrome/"
                             "Perfetto trace (or JSONL if PATH ends "
                             "with .jsonl)")
    parser.add_argument("--telemetry", type=int, default=None, metavar="N",
                        help="sample telemetry every N cycles into "
                             "windowed time series (inspect with "
                             "repro-metrics)")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write the run's metrics registry as JSONL "
                             "(implies --telemetry 256 when no window "
                             "is given)")
    parser.add_argument("--json", action="store_true",
                        help="print a machine-readable JSON report "
                             "instead of the human-readable one")
    parser.add_argument("--cache", default=None, metavar="DIR",
                        help="content-addressed result cache directory; "
                             "plain (trace-free, uninstrumented) runs "
                             "reuse previously simulated results")
    parser.add_argument("--profile", type=int, nargs="?", const=20,
                        default=None, metavar="N",
                        help="run under cProfile and print the top N "
                             "functions by cumulative time (default 20)")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.profile is not None:
            return _run_profiled(args)
        return _run(args)
    except ReproError as error:
        sys.stderr.write(f"error: {error}\n")
        return 1


def _run_profiled(args) -> int:
    """Run the command under cProfile and print the hot spots.

    The profile covers the whole command (system construction,
    simulation, and reporting), so kernel hot spots show up with their
    true share of the wall-clock.
    """
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    try:
        return profiler.runcall(_run, args)
    finally:
        print()
        print(f"profile (top {args.profile} by cumulative time):")
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.sort_stats("cumulative").print_stats(args.profile)


def _require_trace(trace, flag: str):
    """The recorded packet trace, or a clear error if there is none."""
    if trace is None:
        raise ObservabilityError(
            f"{flag} needs the packet trace, but this run was built "
            "without trace recording (record_trace=False)"
        )
    return trace


def list_policies() -> str:
    """The registered policy tables, one name per line.

    One unified listing across every registry a run can draw from:
    address mappings, page policies, MSU scheduling policies, traffic
    request schedulers, and simulation engines.
    """
    lines = ["address mappings (--interleaving):"]
    for name in list_mappings():
        lines.append(f"  {name:12s} {MAPPINGS[name].__doc__.splitlines()[0]}")
    lines.append("page policies (--page-policy):")
    for name in list_page_policies():
        lines.append(
            f"  {name:12s} {PAGE_POLICIES[name].__doc__.splitlines()[0]}"
        )
    lines.append("MSU scheduling policies (--policy):")
    for name in sorted(POLICIES):
        lines.append(f"  {name:12s} {POLICIES[name].__doc__.splitlines()[0]}")
    lines.append("traffic schedulers (run_traffic scheduler=..., repro-search):")
    for name in list_schedulers():
        lines.append(
            f"  {name:12s} {SCHEDULERS[name].__doc__.splitlines()[0]}"
        )
    lines.append("simulation engines (--engine):")
    for name in ENGINES:
        lines.append(f"  {name:12s} {ENGINE_DESCRIPTIONS[name]}")
    return "\n".join(lines)


def _run(args) -> int:
    if args.list_policies:
        print(list_policies())
        return 0
    if args.list_engines:
        print(list_engines())
        return 0
    if args.kernel is None:
        raise ConfigurationError(
            "a kernel is required (or use --list-policies); "
            f"registered kernels: {sorted(KERNELS)}"
        )
    if args.json and args.gantt is not None:
        raise ConfigurationError(
            "--json and --gantt are mutually exclusive; export the run "
            "with --trace-out to inspect its timeline"
        )
    config = apply_policy_overrides(
        resolve_config(args.org),
        interleaving=args.interleaving,
        page_policy=args.page_policy,
    )
    if args.compile:
        kernel = compile_loop(args.kernel)
    else:
        kernel = get_kernel(args.kernel)
    telemetry = args.telemetry
    if telemetry is None and args.metrics_out:
        telemetry = 256
    need_trace = bool(args.gantt is not None or args.metrics or args.audit)
    need_obs = bool(
        args.json or args.stats or args.trace_out or telemetry
    )
    # The cached and L2-streaming controllers carry their row-buffer
    # statistics in the result record itself rather than through an
    # Instrumentation, so obs-only features are rejected up front.
    obsless = args.baseline in ("cached", "l2-streaming")
    if obsless and (args.stats or args.trace_out or telemetry):
        raise ConfigurationError(
            f"--baseline {args.baseline} is not instrumented; "
            "--stats, --trace-out, --telemetry and --metrics-out are "
            "available for the SMC and the natural-order baseline only"
        )
    obs = (
        Instrumentation(telemetry_window=telemetry)
        if need_obs and not obsless else None
    )
    multi = (args.channels, args.devices) != (1, 1)
    if multi:
        # Validate the topology up front for a clean CLI error, and
        # fold it into the config so the report's organization line
        # carries the "NchxMdev" prefix.  RunSpec decomposes a config
        # topology back into its channels/devices fields, so cache
        # keys are unchanged.
        topology = MemoryTopology(
            channels=args.channels, devices_per_channel=args.devices
        )
        config = dataclasses.replace(config, topology=topology)
        if args.baseline:
            raise ConfigurationError(
                "--channels/--devices run through the SMC path; the "
                "baseline controllers model a single channel"
            )
        if args.metrics or args.audit or need_obs:
            raise ConfigurationError(
                "multi-channel runs support the plain report and "
                "--gantt only: trace metrics, protocol auditing, "
                "instrumentation and telemetry assume a single "
                "channel's buses"
            )

    if args.baseline == "natural-order":
        controller = NaturalOrderController(config, record_trace=need_trace)
        result = controller.run(
            kernel,
            length=args.length,
            stride=args.stride,
            alignment=Alignment(args.alignment),
            obs=obs,
            engine=args.engine,
        )
        trace = controller.device.trace
    elif args.baseline == "cached":
        controller = CachedNaturalOrderController(
            config, record_trace=need_trace, refresh=args.refresh
        )
        result = controller.run(
            kernel,
            length=args.length,
            stride=args.stride,
            alignment=Alignment(args.alignment),
            engine=args.engine,
        )
        trace = controller.device.trace
    elif args.baseline == "l2-streaming":
        controller = L2StreamingController(
            config, record_trace=need_trace, refresh=args.refresh
        )
        result = controller.run(
            kernel,
            length=args.length,
            stride=args.stride,
            alignment=Alignment(args.alignment),
            engine=args.engine,
        )
        trace = controller.device.trace
    elif not need_trace and not need_obs:
        # Trace-free, uninstrumented SMC runs go through the RunSpec
        # front door, where --cache can satisfy them instantly.
        spec = RunSpec(
            kernel=kernel,
            organization=config,
            length=args.length,
            fifo_depth=args.fifo_depth,
            stride=args.stride,
            alignment=args.alignment,
            policy=args.policy,
            refresh=args.refresh,
            engine=args.engine,
            channels=args.channels,
            devices=args.devices,
        )
        with execution(cache=args.cache):
            result = simulate(spec)
        trace = None
    else:
        if args.engine == "batch":
            raise ConfigurationError(
                "engine 'batch' cannot run this spec: trace recording "
                "and instrumentation need the event kernel (drop "
                "--gantt/--metrics/--audit/--stats/--trace-out/"
                "--telemetry/--metrics-out, or use --engine auto)"
            )
        system = build_smc_system(
            kernel,
            config,
            length=args.length,
            fifo_depth=args.fifo_depth,
            stride=args.stride,
            alignment=Alignment(args.alignment),
            policy=resolve_policy(args.policy),
            record_trace=need_trace,
            refresh=args.refresh,
        )
        result = run_smc(system, obs=obs)
        trace = system.device.trace

    stalls = attribute_stalls(obs) if obs is not None else None
    metrics_written = None
    if args.metrics_out and obs is not None:
        metrics_written = write_metrics_jsonl(args.metrics_out, obs.metrics)
    result_dict = dataclasses.asdict(result)
    result_dict["percent_of_peak"] = result.percent_of_peak
    result_dict["percent_of_attainable"] = result.percent_of_attainable
    result_dict["effective_bandwidth_bytes_per_sec"] = (
        result.effective_bandwidth_bytes_per_sec
    )

    exported = None
    if args.trace_out:
        write = (
            write_jsonl if args.trace_out.endswith(".jsonl")
            else write_chrome_trace
        )
        exported = write(
            args.trace_out, obs, result=result_dict,
            stalls=stalls.as_dict() if stalls else None,
        )

    if args.json:
        report = {"result": result_dict}
        if obs is not None:
            report["counters"] = dict(obs.counters.counters)
            report["access_mix"] = access_mix(obs).as_dict()
        else:
            # The cached and L2-streaming controllers report their
            # row-buffer outcomes through the result record.
            report["counters"] = {}
            report["access_mix"] = AccessMix(
                page_hits=result.page_hits,
                page_misses=result.page_misses,
                bank_conflicts=result.bank_conflicts,
                autocloses=0,
            ).as_dict()
        if stalls is not None:
            report["stalls"] = stalls.as_dict()
        if metrics_written is not None:
            report["metrics_out"] = args.metrics_out
        if args.metrics:
            metrics = measure_trace(
                _require_trace(trace, "--metrics"), config.timing
            )
            report["metrics"] = {
                "data_bus_utilization": metrics.data_bus_utilization,
                "row_bus_utilization": metrics.row_bus_utilization,
                "col_bus_utilization": metrics.col_bus_utilization,
                "turnaround_cycles": metrics.turnaround_cycles,
                "bank_imbalance": bank_imbalance(
                    metrics, config.geometry.num_banks
                ),
            }
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0

    print(f"kernel       : {kernel.name}  ({kernel.expression})")
    print(f"organization : {config.describe()}")
    print(f"controller   : {result.policy}")
    print(f"cycles       : {result.cycles}")
    print(f"bandwidth    : {result.percent_of_peak:.2f}% of peak "
          f"({result.effective_bandwidth_bytes_per_sec / 1e9:.3f} GB/s)")
    if result.stride > 1:
        print(f"attainable   : {result.percent_of_attainable:.2f}% "
              "(stride-limited ceiling)")
    print(f"traffic      : {result.transferred_bytes} bytes moved for "
          f"{result.useful_bytes} useful")
    if result.channel_transferred_bytes:
        shares = "/".join(f"{s:.0%}" for s in result.channel_shares)
        print(f"channels     : "
              f"{list(result.channel_transferred_bytes)} bytes ({shares})")
    print(f"activity     : {result.packets_issued} packets, "
          f"{result.activations} activations, "
          f"{result.bank_conflicts} bank conflicts, "
          f"{result.refreshes} refreshes")
    if result.page_hits or result.page_misses:
        print(f"row buffer   : {result.page_hit_rate:.1%} page-hit rate "
              f"({result.page_hits} hits / {result.page_misses} misses)")
    if exported is not None:
        print(f"trace        : {exported} records written to "
              f"{args.trace_out}")
    if telemetry and obs is not None:
        windows = len(
            obs.metrics.series("telemetry.busy_cycles").samples
        )
        print(f"telemetry    : {windows} windows of {telemetry} cycles")
    if metrics_written is not None:
        print(f"metrics      : {metrics_written} records written to "
              f"{args.metrics_out}")

    if args.stats:
        print()
        print(f"access mix   : {access_mix(obs).summary()}")
        print()
        print(stalls.table())
        if obs.counters.counters:
            print()
            print("counters:")
            for name in sorted(obs.counters.counters):
                print(f"  {name:28s} {obs.counters.get(name)}")

    if args.bounds:
        cache = natural_order_bound(
            config, kernel.num_read_streams, kernel.num_write_streams,
            stride=args.stride,
        )
        smc = smc_bound(
            config, kernel.num_read_streams, kernel.num_write_streams,
            args.length, args.fifo_depth, stride=args.stride,
        )
        print(f"bounds       : natural-order {cache.percent_of_peak:.2f}%, "
              f"SMC combined {smc.percent_combined_limit:.2f}% "
              f"(startup {smc.percent_startup_limit:.2f}%, "
              f"asymptotic {smc.percent_asymptotic_limit:.2f}%)")

    if args.audit:
        geometry = config.geometry
        report = audit_trace(
            _require_trace(trace, "--audit"),
            config.timing,
            num_banks=geometry.num_banks,
            doubled_banks=geometry.doubled_banks,
        )
        print(f"audit        : OK ({report.col_packets} col packets, "
              f"{report.turnarounds} turnarounds)")

    if args.metrics:
        metrics = measure_trace(_require_trace(trace, "--metrics"), config.timing)
        print(f"bus load     : data {metrics.data_bus_utilization:.1%}, "
              f"row {metrics.row_bus_utilization:.1%}, "
              f"col {metrics.col_bus_utilization:.1%}; "
              f"bank imbalance "
              f"{bank_imbalance(metrics, config.geometry.num_banks):.2f}")

    if args.gantt is not None:
        print()
        print(render_trace(_require_trace(trace, "--gantt"), until=args.gantt))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
