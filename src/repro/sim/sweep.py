"""Parameter sweeps over the simulator.

The paper's evaluation is a grid of simulations — kernels x
organizations x FIFO depths x lengths x alignments x strides.  This
module provides that grid as a first-class object: declare the axes,
get every :class:`~repro.sim.results.SimulationResult` back, and pivot
them into the rows a table or chart needs.

    >>> from repro.sim.sweep import Sweep
    >>> sweep = Sweep(kernel=["copy", "daxpy"], fifo_depth=[8, 64],
    ...               length=[128])
    >>> results = sweep.run()
    >>> len(results)
    4
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.sim.results import SimulationResult
from repro.sim.runner import RunSpec, simulate

#: RunSpec axes a sweep understands, in canonical order.
AXES = (
    "kernel",
    "organization",
    "length",
    "fifo_depth",
    "stride",
    "alignment",
    "policy",
)

#: Defaults for axes the caller leaves out.
DEFAULTS: Mapping[str, Any] = {
    "kernel": "daxpy",
    "organization": "cli",
    "length": 1024,
    "fifo_depth": 64,
    "stride": 1,
    "alignment": "staggered",
    "policy": None,
}


@dataclass
class Sweep:
    """A cartesian sweep over simulation parameters.

    Any keyword accepted by
    :class:`~repro.sim.runner.RunSpec` can be an axis; single
    values and lists are both accepted (single values are broadcast).

    Attributes:
        axes: Mapping of axis name to the values to sweep.
    """

    axes: Dict[str, List[Any]] = field(default_factory=dict)

    def __init__(self, **axes: Any) -> None:
        unknown = set(axes) - set(AXES)
        if unknown:
            raise ConfigurationError(
                f"unknown sweep axes {sorted(unknown)}; valid: {list(AXES)}"
            )
        self.axes = {
            name: list(value) if isinstance(value, (list, tuple)) else [value]
            for name, value in axes.items()
        }

    @property
    def size(self) -> int:
        """Number of simulations the sweep will run."""
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total

    def points(self) -> Iterable[Dict[str, Any]]:
        """Yield one keyword dict per grid point, in axis order."""
        names = [name for name in AXES if name in self.axes]
        value_lists = [self.axes[name] for name in names]
        for combination in itertools.product(*value_lists):
            point = dict(DEFAULTS)
            point.update(dict(zip(names, combination)))
            yield point

    def specs(self, **fixed: Any) -> List[RunSpec]:
        """The grid as :class:`~repro.sim.runner.RunSpec` objects."""
        return [RunSpec(**point, **fixed) for point in self.points()]

    def run(
        self,
        progress: Callable[[Dict[str, Any], SimulationResult], None] = None,
        workers: Any = None,
        cache: Any = None,
        **fixed: Any,
    ) -> List[SimulationResult]:
        """Run every grid point.

        Serial in-process execution is the default; ``workers=N`` fans
        the grid out over N worker processes and ``cache=`` (a
        :class:`~repro.exec.cache.ResultCache` or directory path)
        skips previously simulated points.  Both also fall back to any
        ambient :func:`repro.exec.context.execution` context.  Results
        are bit-identical across backends.

        Args:
            progress: Optional callback invoked per completed point
                with (point, result); under a pool, completion order
                is nondeterministic.
            workers: Process-pool size (None/0/1 = serial).
            cache: Result cache or its directory path.
            **fixed: Extra keyword arguments applied to every point
                (e.g. ``audit=True``).

        Returns:
            Results in grid order.
        """
        if "obs" in fixed:
            # Instrumentation cannot cross process boundaries or be
            # replayed from a cache; keep the historical serial path.
            if workers is not None and workers > 1:
                raise ConfigurationError(
                    "obs= instrumentation cannot be combined with "
                    "workers=; run instrumented sweeps serially"
                )
            fixed = dict(fixed)
            obs = fixed.pop("obs")
            results = []
            for point in self.points():
                result = simulate(RunSpec(**point, **fixed), obs=obs)
                if progress is not None:
                    progress(point, result)
                results.append(result)
            return results

        from repro.exec.pool import run_specs

        points = list(self.points())
        specs = [RunSpec(**point, **fixed) for point in points]
        callback = None
        if progress is not None:
            callback = lambda event: progress(  # noqa: E731
                points[event.index], event.result
            )
        return run_specs(
            specs, workers=workers, cache=cache, progress=callback
        )


def sweep(
    workers: Any = None,
    cache: Any = None,
    progress: Callable[[Dict[str, Any], SimulationResult], None] = None,
    **axes: Any,
) -> List[SimulationResult]:
    """One-call cartesian sweep: ``sweep(kernel=["copy"], fifo_depth=[8, 64])``.

    Builds a :class:`Sweep` from the axis keywords and runs it; see
    :meth:`Sweep.run` for ``workers``/``cache``/``progress``.
    """
    return Sweep(**axes).run(progress=progress, workers=workers, cache=cache)


def pivot(
    results: Sequence[SimulationResult],
    row_key: Callable[[SimulationResult], Any],
    column_key: Callable[[SimulationResult], Any],
    value: Callable[[SimulationResult], Any] = lambda r: r.percent_of_peak,
) -> Tuple[List[Any], List[Any], List[List[Any]]]:
    """Pivot results into a (row labels, column labels, grid) triple.

    Args:
        results: Simulation results (e.g. from :meth:`Sweep.run`).
        row_key: Result attribute selecting the row.
        column_key: Result attribute selecting the column.
        value: Cell value extractor; defaults to percent of peak.

    Returns:
        Row labels (first-seen order), column labels, and the value
        grid with None for absent combinations.

    Raises:
        ConfigurationError: If two results land on the same cell.
    """
    row_labels: List[Any] = []
    column_labels: List[Any] = []
    cells: Dict[Tuple[Any, Any], Any] = {}
    for result in results:
        row = row_key(result)
        column = column_key(result)
        if row not in row_labels:
            row_labels.append(row)
        if column not in column_labels:
            column_labels.append(column)
        if (row, column) in cells:
            raise ConfigurationError(
                f"duplicate sweep cell ({row!r}, {column!r}); add the "
                "distinguishing parameter as a pivot key"
            )
        cells[(row, column)] = value(result)
    grid = [
        [cells.get((row, column)) for column in column_labels]
        for row in row_labels
    ]
    return row_labels, column_labels, grid
