"""Cycle-based functional simulation engine for SMC systems.

The engine advances a global interface-clock cycle counter and, at
each visited cycle, (1) lands read DATA packets that completed into
their FIFOs, (2) lets the MSU make a scheduling decision, and (3) lets
the processor retire one element access.  Between interesting cycles
the engine skips ahead: every state change happens either at a queued
data-arrival event, at the MSU's next decision cycle, or at the
processor's next paced attempt, so visiting only those cycles is
exact.  Components that are blocked are re-woken by the state changes
that can unblock them.

The simulation ends when the processor has retired every access, all
FIFOs have drained, and no data is in flight.  A watchdog raises
:class:`~repro.errors.SchedulingError` if the system stops making
progress (which would indicate a controller bug, not a slow run).
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.errors import SchedulingError
from repro.core.msu import IDLE
from repro.core.smc import SmcSystem
from repro.memsys.config import ELEMENT_BYTES
from repro.obs.core import Instrumentation
from repro.rdram.audit import audit_trace
from repro.sim.results import SimulationResult


def run_smc(
    system: SmcSystem,
    max_cycles: Optional[int] = None,
    audit: bool = False,
    dense: bool = False,
    obs: Optional[Instrumentation] = None,
) -> SimulationResult:
    """Simulate an SMC system to completion.

    Args:
        system: A wired system from
            :func:`repro.core.smc.build_smc_system`.
        max_cycles: Watchdog limit; defaults to a generous bound
            derived from the total traffic.
        audit: After completion, replay the device's packet trace
            through the independent protocol auditor (requires the
            system to have been built with ``record_trace=True``).
        dense: Visit every cycle instead of skipping to the next
            interesting one.  Slower but trivially correct; the
            property tests assert both modes produce identical
            results, validating the skip logic.
        obs: Optional instrumentation to attach to every component for
            this run.  Events are recorded only at state-change cycles,
            which both the dense and skip engines visit, so the two
            modes produce identical event streams.

    Returns:
        The simulation result.

    Raises:
        SchedulingError: On deadlock or watchdog expiry.
    """
    processor = system.processor
    msu = system.msu
    sbu = system.sbu
    if obs is not None:
        _attach_instrumentation(system, obs)
    total_units = sum(len(fifo.units) for fifo in sbu)
    if max_cycles is None:
        max_cycles = 10_000 + 100 * total_units

    heap: List[Tuple[int, int, int]] = []
    cycle = 0
    while True:
        if obs is not None:
            obs.now = cycle
        fired = False
        while heap and heap[0][0] <= cycle:
            __, fifo_index, elements = heapq.heappop(heap)
            sbu[fifo_index].note_arrival(elements)
            fired = True
        if system.refresh is not None and system.refresh.tick(cycle):
            # A refresh stole the row bus or closed a page; the MSU's
            # next access may need to re-activate.
            fired = True
        if fired:
            msu.wake(cycle)
        for event in msu.tick(cycle):
            heapq.heappush(heap, (event.cycle, event.fifo_index, event.elements))
        if processor.tick(cycle, sbu):
            # A pop freed read-FIFO space or a push fed a write FIFO:
            # an idle MSU may now have a serviceable FIFO.
            msu.wake(cycle + 1)
        if processor.done and sbu.all_drained and not heap:
            break
        if dense:
            _next_cycle(cycle, heap, msu, processor, system.refresh)
            cycle += 1
        else:
            cycle = _next_cycle(cycle, heap, msu, processor, system.refresh)
        if cycle > max_cycles:
            raise SchedulingError(
                f"simulation exceeded {max_cycles} cycles "
                f"(kernel={system.kernel.name}, "
                f"org={system.config.describe()})"
            )

    end_cycle = max(msu.last_data_end, (processor.last_retire_cycle or 0))
    if obs is not None:
        _finish_instrumentation(system, obs, end_cycle)
    if audit:
        geometry = system.config.geometry
        audit_trace(
            system.device.trace,
            timing=system.config.timing,
            num_banks=geometry.num_banks,
            doubled_banks=geometry.doubled_banks,
            banks_per_device=getattr(
                geometry, "device", geometry
            ).num_banks,
        )
    useful = sum(fifo.descriptor.length for fifo in sbu) * ELEMENT_BYTES
    return SimulationResult(
        kernel=system.kernel.name,
        organization=system.config.describe(),
        length=system.descriptors[0].length,
        stride=system.descriptors[0].stride,
        fifo_depth=sbu[0].depth,
        alignment=_alignment_name(system),
        policy=msu.policy.name,
        cycles=end_cycle,
        useful_bytes=useful,
        transferred_bytes=system.device.bytes_transferred,
        startup_cycles=processor.first_element_cycle or 0,
        cpu_stall_cycles=processor.stall_cycles,
        packets_issued=msu.packets_issued,
        activations=msu.activations,
        bank_conflicts=msu.bank_conflicts,
        page_hits=msu.page_hits,
        page_misses=msu.page_misses,
        fifo_switches=msu.fifo_switches,
        speculative_activations=msu.speculative_activations,
        refreshes=(
            system.refresh.refreshes_issued if system.refresh else 0
        ),
    )


def _attach_instrumentation(system: SmcSystem, obs: Instrumentation) -> None:
    """Point every component's ``obs`` attribute at one recorder."""
    system.device.obs = obs
    system.msu.obs = obs
    system.processor.obs = obs
    if system.refresh is not None:
        system.refresh.obs = obs
    system.sbu.attach_obs(obs)


def _finish_instrumentation(
    system: SmcSystem, obs: Instrumentation, end_cycle: int
) -> None:
    """Close open spans and record the run metadata attribution needs."""
    system.msu.finish_observation(end_cycle)
    system.device.finish_observation(end_cycle)
    timing = system.config.timing
    obs.meta.update(
        kernel=system.kernel.name,
        organization=system.config.describe(),
        policy=system.msu.policy.name,
        cycles=end_cycle,
        last_data_end=system.msu.last_data_end,
        t_pack=timing.t_pack,
        t_rw=timing.t_rw,
    )


def _next_cycle(cycle, heap, msu, processor, refresh=None) -> int:
    """The next cycle at which any component can change state."""
    candidates = []
    if heap:
        candidates.append(heap[0][0])
    if msu.next_decision < IDLE:
        candidates.append(msu.next_decision)
    attempt = processor.next_attempt_cycle
    if attempt is not None:
        candidates.append(attempt)
    if not candidates:
        # A pending refresh does not count as forward progress for the
        # computation itself, so it cannot break a deadlock.
        raise SchedulingError(
            "deadlock: processor blocked, MSU idle, no data in flight"
        )
    if refresh is not None:
        candidates.append(refresh.next_action_cycle)
    return max(cycle + 1, min(candidates))


def _alignment_name(system: SmcSystem) -> str:
    """Classify the actual placement by inspecting base banks."""
    from repro.memsys.address import AddressMap

    address_map = AddressMap(system.config)
    banks = {address_map.bank_of(d.base) for d in system.descriptors}
    return "aligned" if len(banks) == 1 else "staggered"
