"""SMC wiring over the shared discrete-event simulation kernel.

The engine assembles the Figure 3 component graph — MSU, SBU,
processor, optional refresh engine — into :class:`Component` adapters
and hands them to :class:`repro.sim.kernel.Simulation`, which owns the
cycle loop: at each visited cycle it (1) lands read DATA packets that
completed into their FIFOs, (2) lets the MSU make a scheduling
decision, and (3) lets the processor retire one element access.
Between interesting cycles the kernel skips ahead; components that are
blocked are re-woken by the state changes that can unblock them.

The simulation ends when the processor has retired every access, all
FIFOs have drained, and no data is in flight.  The kernel's watchdog
raises :class:`~repro.errors.SchedulingError` if the system stops
making progress (which would indicate a controller bug, not a slow
run).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.core.msu import ArrivalEvent, IDLE, MemorySchedulingUnit
from repro.core.sbu import StreamBufferUnit
from repro.core.smc import SmcSystem
from repro.cpu.processor import StreamProcessor
from repro.memsys.config import ELEMENT_BYTES
from repro.obs.core import Instrumentation
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import finalize_telemetry
from repro.rdram.audit import audit_trace
from repro.sim.kernel import (
    BackgroundComponent,
    Component,
    ResultBuilder,
    Simulation,
)
from repro.sim.results import SimulationResult


class _WakeFlag:
    """Arrival/refresh activity that must re-arm an idle MSU."""

    __slots__ = ("fired",)

    def __init__(self) -> None:
        self.fired = False


class _MsuComponent:
    """The MSU's decision step, plus its wake protocol.

    A data arrival or a refresh perturbation earlier in the same cycle
    re-arms an idle MSU (its next access may need to re-activate a
    bank the refresh closed, or a pop may have freed FIFO space).
    """

    def __init__(self, system: SmcSystem, wake: _WakeFlag) -> None:
        self.system = system
        self.msu = system.msu
        self._wake = wake

    def tick(self, cycle: int) -> Tuple[ArrivalEvent, ...]:
        if self._wake.fired:
            self._wake.fired = False
            self.msu.wake(cycle)
        return self.msu.tick(cycle)

    @property
    def next_action_cycle(self) -> Optional[int]:
        decision = self.msu.next_decision
        return decision if decision < IDLE else None

    def attach_obs(self, obs: Instrumentation) -> None:
        self.system.device.obs = obs
        self.msu.obs = obs
        self.system.sbu.attach_obs(obs)

    def finish_observation(self, end_cycle: int) -> None:
        self.msu.finish_observation(end_cycle)
        self.system.device.finish_observation(end_cycle)

    def sample_telemetry(self, cycle: int, metrics: MetricsRegistry) -> None:
        """Record FIFO depths and the open-bank count at ``cycle``."""
        for fifo in self.system.sbu:
            metrics.series(
                "telemetry.fifo_occupancy",
                help="FIFO occupancy in elements at window boundaries",
                stream=fifo.descriptor.name,
            ).sample(cycle, float(fifo.occupancy))
        open_banks = sum(
            1 for bank in self.system.device.banks if bank.is_open
        )
        metrics.series(
            "telemetry.banks_open",
            help="banks holding an open row at window boundaries",
        ).sample(cycle, float(open_banks))


class _CpuComponent:
    """The processor's retire step.

    A pop frees read-FIFO space and a push feeds a write FIFO, either
    of which can make an idle MSU's FIFOs serviceable again, so a
    retire wakes the MSU for the following cycle.
    """

    def __init__(
        self,
        processor: StreamProcessor,
        sbu: StreamBufferUnit,
        msu: MemorySchedulingUnit,
    ) -> None:
        self.processor = processor
        self.sbu = sbu
        self.msu = msu

    def tick(self, cycle: int) -> Tuple[ArrivalEvent, ...]:
        if self.processor.tick(cycle, self.sbu):
            self.msu.wake(cycle + 1)
        return ()

    @property
    def next_action_cycle(self) -> Optional[int]:
        return self.processor.next_attempt_cycle

    def attach_obs(self, obs: Instrumentation) -> None:
        self.processor.obs = obs


def run_smc(
    system: SmcSystem,
    max_cycles: Optional[int] = None,
    audit: bool = False,
    dense: bool = False,
    obs: Optional[Instrumentation] = None,
) -> SimulationResult:
    """Simulate an SMC system to completion.

    Args:
        system: A wired system from
            :func:`repro.core.smc.build_smc_system`.
        max_cycles: Watchdog limit; defaults to a generous bound
            derived from the total traffic.
        audit: After completion, replay the device's packet trace
            through the independent protocol auditor (requires the
            system to have been built with ``record_trace=True``).
        dense: Visit every cycle instead of skipping to the next
            interesting one.  Slower but trivially correct; the
            property tests assert both modes produce identical
            results, validating the skip logic.
        obs: Optional instrumentation to attach to every component for
            this run.  Events are recorded only at state-change cycles,
            which both the dense and skip engines visit, so the two
            modes produce identical event streams.

    Returns:
        The simulation result.

    Raises:
        SchedulingError: On deadlock or watchdog expiry.
    """
    processor = system.processor
    msu = system.msu
    sbu = system.sbu
    total_units = sum(len(fifo.units) for fifo in sbu)
    if max_cycles is None:
        max_cycles = 10_000 + 100 * total_units

    wake = _WakeFlag()
    components: List[Component] = []
    if system.refresh is not None:
        def _refresh_fired() -> None:
            wake.fired = True

        components.append(
            BackgroundComponent(system.refresh, on_fire=_refresh_fired)
        )
    components.append(_MsuComponent(system, wake))
    components.append(_CpuComponent(processor, sbu, msu))

    def deliver(event: ArrivalEvent) -> None:
        sbu[event.fifo_index].note_arrival(event.elements)
        wake.fired = True

    simulation = Simulation(
        components,
        done=lambda sim: (
            processor.done and sbu.all_drained and sim.scheduler.empty
        ),
        deliver=deliver,
        label=(
            f"kernel={system.kernel.name}, "
            f"org={system.config.describe()}"
        ),
        max_cycles=max_cycles,
        dense=dense,
        obs=obs,
    )
    simulation.run()

    end_cycle = max(msu.last_data_end, (processor.last_retire_cycle or 0))
    if obs is not None:
        simulation.finish(end_cycle)
        _record_meta(system, obs, end_cycle)
        finalize_telemetry(obs)
    if audit:
        if system.config.topology.channels > 1:
            raise ConfigurationError(
                "packet-trace auditing assumes a single channel's buses; "
                "audit per-channel runs instead of a "
                f"{system.config.topology.describe()} fabric"
            )
        geometry = system.config.geometry
        audit_trace(
            system.device.trace,
            timing=system.config.timing,
            num_banks=geometry.num_banks,
            doubled_banks=geometry.doubled_banks,
            banks_per_device=getattr(
                geometry, "device", geometry
            ).num_banks,
        )
    useful = sum(fifo.descriptor.length for fifo in sbu) * ELEMENT_BYTES
    builder = ResultBuilder(
        kernel=system.kernel.name,
        organization=system.config.describe(),
        length=system.descriptors[0].length,
        stride=system.descriptors[0].stride,
        fifo_depth=sbu[0].depth,
        alignment=_alignment_name(system),
        policy=msu.policy.name,
        first_data=processor.first_element_cycle,
        last_data_end=msu.last_data_end,
        packets_issued=msu.packets_issued,
        activations=msu.activations,
        bank_conflicts=msu.bank_conflicts,
        page_hits=msu.page_hits,
        page_misses=msu.page_misses,
    )
    builder.note_channel_bytes(system.device)
    return builder.build(
        cycles=end_cycle,
        useful_bytes=useful,
        transferred_bytes=system.device.bytes_transferred,
        cpu_stall_cycles=processor.stall_cycles,
        fifo_switches=msu.fifo_switches,
        speculative_activations=msu.speculative_activations,
        refreshes=(
            system.refresh.refreshes_issued if system.refresh else 0
        ),
    )


def _record_meta(
    system: SmcSystem, obs: Instrumentation, end_cycle: int
) -> None:
    """Record the run metadata stall attribution needs."""
    timing = system.config.timing
    useful = sum(
        fifo.descriptor.length for fifo in system.sbu
    ) * ELEMENT_BYTES
    obs.meta.update(
        kernel=system.kernel.name,
        organization=system.config.describe(),
        policy=system.msu.policy.name,
        cycles=end_cycle,
        last_data_end=system.msu.last_data_end,
        t_pack=timing.t_pack,
        t_rw=timing.t_rw,
        useful_bytes=useful,
        transferred_bytes=system.device.bytes_transferred,
    )


def _alignment_name(system: SmcSystem) -> str:
    """Classify the actual placement by inspecting base banks.

    Uses the address mapping the system was built with (which may be a
    registry override like ``swizzle``), not a freshly derived one, so
    the classification reflects the banks the run actually touched.
    """
    address_map = system.address_map
    if address_map is None:  # hand-assembled SmcSystem
        from repro.memsys.address import get_address_mapping

        address_map = get_address_mapping(system.config)
    banks = {address_map.bank_of(d.base) for d in system.descriptors}
    return "aligned" if len(banks) == 1 else "staggered"
