"""Vectorized batch fast-path simulation engine.

The event kernel (:mod:`repro.sim.kernel`) dispatches every visited
cycle through component adapters, an event heap, and the full device
object model — flexible, but the per-cycle dispatch overhead caps SMC
throughput well below what large sweeps need.  This module provides a
*batch* engine that produces bit-identical results much faster, in two
parts:

* :func:`run_smc_batch` — a monomorphized replica of the SMC loop.
  Each stream's access schedule is precomputed as flat arrays (with
  numpy when available, since the address decomposition is affine in
  the element index), and the cycle loop runs over plain integers and
  lists: bank/bus timing resolution, the round-robin MSU decision, the
  CPU retire step, and the optional refresh engine are all inlined.
  Read-data arrivals are kept in a plain deque — DATA-bus packet
  slotting makes their completion times monotonic, so no heap is
  needed.  The loop visits exactly the cycles the event kernel's
  skip-ahead clock visits, so every counter (including stall
  accounting, which depends on the visit set) matches bit for bit.

* :func:`lean_run` — a heapless replica of
  :meth:`repro.sim.kernel.Simulation.run` for controllers whose
  components never post events (the transaction-pump baselines and the
  L2 streamer).  It drives the *same* component objects with the same
  visit set, minus the event-scheduler and observability machinery.

The batch SMC loop handles the paper's core configurations: a single
plain RDRAM device, the round-robin policy, and plan-time page
policies (closed/open).  Runtime page managers, double-bank cores,
multi-device channels, auditing, and instrumented runs fall back to
the event kernel — :func:`batch_unsupported_reason` is the single
place that gate lives.  Equivalence is enforced by the event-vs-batch
hypothesis properties in ``tests/test_properties.py``, mirroring the
dense-vs-skip contract that validates the event kernel itself.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError, SchedulingError, StreamError
from repro.cpu.kernels import Kernel
from repro.cpu.streams import Alignment, Direction, StreamDescriptor, place_streams
from repro.core.fifo import build_access_units
from repro.core.policies import RoundRobinPolicy, SchedulingPolicy
from repro.memsys.address import MAPPINGS, get_address_mapping
from repro.registry import Registry
from repro.memsys.config import ELEMENT_BYTES, MemorySystemConfig
from repro.memsys.pagemanager import make_page_manager
from repro.rdram.bank import NEVER
from repro.rdram.device import RdramGeometry
from repro.rdram.refresh import DEFAULT_INTERVAL_CYCLES, RETRY_CYCLES
from repro.rdram.timing import DATA_PACKET_BYTES
from repro.sim.kernel import Component, ResultBuilder
from repro.sim.results import SimulationResult

try:  # numpy ships in the test/benchmark environment but is optional.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via _scalar_plan tests
    _np = None  # type: ignore[assignment]

#: The engine registry: name -> one-line description, in
#: documentation order (compares equal to the tuple of its names, so
#: ``ENGINES == ("event", "batch", "auto")`` keeps holding).
ENGINES: Registry[str] = Registry(
    "engine",
    unknown_template="unknown engine {name!r}; use one of {names}",
    sort_listing=False,
)
ENGINES.add("event", "the discrete-event kernel; supports every configuration")
ENGINES.add("batch", "vectorized fast path; bit-identical, core configs only")
ENGINES.add("auto", "batch when the configuration supports it, else event")

#: Back-compat alias: ``ENGINE_DESCRIPTIONS[name]`` is the one-line
#: description, exactly as the historical plain dict behaved.
ENGINE_DESCRIPTIONS: Registry[str] = ENGINES

#: MSU idle sentinel, mirrored from :mod:`repro.core.msu` (imported
#: by value to keep this module free of the object model's hot path).
_IDLE = 1 << 60


def canonical_engine(name: str) -> str:
    """Validate and normalize an engine name.

    Raises:
        ConfigurationError: If ``name`` is not a registered engine.
    """
    lowered = str(name).lower()
    if lowered not in ENGINES:
        raise ENGINES.unknown_error(name)
    return lowered


def list_engines() -> str:
    """Human-readable engine listing (mirrors ``list_policies``)."""
    lines = ["simulation engines:"]
    for engine in ENGINES:
        lines.append(f"  {engine:12s} {ENGINE_DESCRIPTIONS[engine]}")
    return "\n".join(lines)


def batch_unsupported_reason(
    config: MemorySystemConfig,
    policy: Union[str, SchedulingPolicy, None] = None,
    audit: bool = False,
) -> Optional[str]:
    """Why the batch SMC engine cannot run this configuration.

    Returns None when the batch engine supports it.  This is the
    single gate ``engine="auto"`` consults; ``engine="batch"`` raises
    :class:`~repro.errors.ConfigurationError` with the reason instead
    of falling back.
    """
    if audit:
        return "auditing needs the event engine's packet trace"
    if policy is not None:
        if isinstance(policy, str):
            if policy != RoundRobinPolicy.name:
                return (
                    f"scheduling policy {policy!r} "
                    "(batch supports round-robin only)"
                )
        elif type(policy) is not RoundRobinPolicy:
            name = getattr(policy, "name", type(policy).__name__)
            return (
                f"scheduling policy {name!r} "
                "(batch supports round-robin only)"
            )
    if not config.topology.single:
        return (
            f"{config.topology.describe()} topologies need the event "
            "engine (the batch fast path models one channel's buses)"
        )
    geometry = config.geometry
    if not isinstance(geometry, RdramGeometry):
        return "multi-device channel geometries need the event engine"
    if geometry.doubled_banks:
        return "double-bank cores need the event engine"
    mapping_cls = MAPPINGS.get(config.interleaving_name)
    if mapping_cls is not None and mapping_cls.stateful:
        return (
            f"address mapping {config.interleaving_name!r} is stateful "
            "(online re-arrangement needs the event engine)"
        )
    if config.page_policy_name not in ("closed", "open"):
        return (
            f"page policy {config.page_policy_name!r} has runtime "
            "behavior the batch engine does not model"
        )
    return None


def resolve_engine(
    engine: str,
    config: MemorySystemConfig,
    policy: Union[str, SchedulingPolicy, None] = None,
    audit: bool = False,
    instrumented: bool = False,
) -> str:
    """Resolve an engine request to "event" or "batch" for an SMC run.

    ``auto`` silently falls back to the event kernel when the batch
    engine cannot run the configuration (or when instrumentation is
    attached); an explicit ``batch`` request raises instead.
    """
    choice = canonical_engine(engine)
    if choice == "event":
        return "event"
    reason: Optional[str]
    if instrumented:
        reason = "instrumented runs need the event engine"
    else:
        reason = batch_unsupported_reason(config, policy=policy, audit=audit)
    if reason is None:
        return "batch"
    if choice == "batch":
        raise ConfigurationError(f"engine 'batch' cannot run this spec: {reason}")
    return "event"


def resolve_controller_engine(
    engine: str,
    instrumented: bool = False,
    dense: bool = False,
) -> str:
    """Resolve an engine request for a pump-style controller run.

    The transaction-pump controllers support every configuration on
    both engines (:func:`lean_run` drives the same components), so the
    only reasons to stay on the event kernel are instrumentation and
    dense verification mode.
    """
    choice = canonical_engine(engine)
    if choice == "event":
        return "event"
    reason: Optional[str] = None
    if instrumented:
        reason = "instrumented runs need the event engine"
    elif dense:
        reason = "dense verification mode needs the event engine"
    if reason is None:
        return "batch"
    if choice == "batch":
        raise ConfigurationError(f"engine 'batch' cannot run this run: {reason}")
    return "event"


# ----------------------------------------------------------------------
# access-plan precompute

#: One stream's flattened access plan: (banks, rows, columns,
#: elements, precharge flags), parallel lists in issue order.
Plan = Tuple[List[int], List[int], List[int], List[int], List[bool]]


def _vector_plan(
    descriptor: StreamDescriptor, config: MemorySystemConfig, closed: bool
) -> Plan:
    """Numpy-vectorized plan for the three built-in address mappings.

    The address decomposition is affine in the element index, so the
    whole plan — packet addresses, (bank, row, column) coordinates,
    run-length merge of same-packet elements, and the closed-policy
    precharge flags — reduces to array expressions.
    """
    geometry = config.geometry
    stride_bytes = descriptor.stride * ELEMENT_BYTES
    addr = descriptor.base + _np.arange(
        descriptor.length, dtype=_np.int64
    ) * stride_bytes
    last_addr = int(addr[-1])
    if last_addr >= geometry.capacity_bytes:
        raise ConfigurationError(
            f"address {last_addr:#x} outside device capacity "
            f"{geometry.capacity_bytes:#x}"
        )
    pkt = addr - addr % DATA_PACKET_BYTES
    num_banks = geometry.num_banks
    page_bytes = geometry.page_bytes
    name = config.interleaving_name
    if name == "cli":
        line_bytes = config.cacheline_bytes
        lines_per_page = page_bytes // line_bytes
        packets_per_line = line_bytes // DATA_PACKET_BYTES
        line = pkt // line_bytes
        bank = line % num_banks
        line_in_bank = line // num_banks
        row = line_in_bank // lines_per_page
        column = (line_in_bank % lines_per_page) * packets_per_line + (
            pkt % line_bytes
        ) // DATA_PACKET_BYTES
    elif name == "pi":
        page = pkt // page_bytes
        bank = page % num_banks
        row = page // num_banks
        column = (pkt % page_bytes) // DATA_PACKET_BYTES
    else:  # swizzle (callers route other mappings to _scalar_plan)
        page = pkt // page_bytes
        row = page // num_banks
        rank = page % num_banks
        if num_banks & (num_banks - 1) == 0:
            bank = rank ^ (row % num_banks)
        else:
            bank = (rank + row) % num_banks
        column = (pkt % page_bytes) // DATA_PACKET_BYTES
    count = descriptor.length
    if count > 1:
        # Merge consecutive elements that land in the same DATA packet
        # (same location <=> same packet address, mappings being
        # bijective at packet granularity).
        fresh = _np.empty(count, dtype=bool)
        fresh[0] = True
        fresh[1:] = (
            (bank[1:] != bank[:-1])
            | (row[1:] != row[:-1])
            | (column[1:] != column[:-1])
        )
        starts = _np.flatnonzero(fresh)
        elements = _np.diff(_np.append(starts, count))
        bank = bank[starts]
        row = row[starts]
        column = column[starts]
    else:
        elements = _np.ones(1, dtype=_np.int64)
    units = int(bank.shape[0])
    if closed:
        # Precharge rides the last COL packet of each same-(bank, row)
        # run, including the stream's final unit.
        prech = _np.empty(units, dtype=bool)
        prech[-1] = True
        if units > 1:
            prech[:-1] = (bank[1:] != bank[:-1]) | (row[1:] != row[:-1])
        precharge = prech.tolist()
    else:
        precharge = [False] * units
    return (
        bank.tolist(),
        row.tolist(),
        column.tolist(),
        elements.tolist(),
        precharge,
    )


def _scalar_plan(
    descriptor: StreamDescriptor, config: MemorySystemConfig
) -> Plan:
    """Plan via the object model (fallback for exotic mappings/no numpy)."""
    units = build_access_units(
        descriptor, get_address_mapping(config), make_page_manager(config)
    )
    return (
        [unit.location.bank for unit in units],
        [unit.location.row for unit in units],
        [unit.location.column for unit in units],
        [unit.elements for unit in units],
        [unit.precharge_after for unit in units],
    )


def build_plan(
    descriptor: StreamDescriptor, config: MemorySystemConfig
) -> Plan:
    """One stream's access plan as flat parallel lists.

    Produces exactly the unit sequence
    :func:`repro.core.fifo.build_access_units` would, using the
    vectorized path when numpy is available and the mapping is one of
    the built-ins.
    """
    if _np is not None and config.interleaving_name in ("cli", "pi", "swizzle"):
        return _vector_plan(
            descriptor, config, config.page_policy_name == "closed"
        )
    return _scalar_plan(descriptor, config)


# ----------------------------------------------------------------------
# the monomorphized SMC loop


def run_smc_batch(
    kernel: Kernel,
    config: MemorySystemConfig,
    length: int,
    fifo_depth: int,
    stride: int = 1,
    alignment: Alignment = Alignment.STAGGERED,
    refresh: bool = False,
    access_interval: int = 2,
    max_cycles: Optional[int] = None,
) -> SimulationResult:
    """Simulate an SMC system on the batch fast path.

    Bit-identical to building the system with
    :func:`repro.core.smc.build_smc_system` and running
    :func:`repro.sim.engine.run_smc`, for every configuration
    :func:`batch_unsupported_reason` returns None for.

    Raises:
        ConfigurationError: If the configuration needs the event
            engine (check :func:`batch_unsupported_reason` first).
        SchedulingError: On deadlock or watchdog expiry (same messages
            as the event kernel).
    """
    reason = batch_unsupported_reason(config)
    if reason is not None:
        raise ConfigurationError(f"engine 'batch' cannot run this spec: {reason}")
    descriptors = place_streams(
        kernel.streams, config, length=length, stride=stride, alignment=alignment
    )
    plans = [build_plan(descriptor, config) for descriptor in descriptors]

    timing = config.timing
    t_pack = timing.t_pack
    t_rcd = timing.t_rcd
    t_rp = timing.t_rp
    t_cpol = timing.t_cpol
    t_rc = timing.t_rc
    t_rr = timing.t_rr
    t_rw = timing.t_rw
    t_ras = timing.t_ras
    read_delay = timing.read_data_delay()
    write_delay = timing.write_data_delay()

    num_fifos = len(descriptors)
    is_read = [d.direction is Direction.READ for d in descriptors]
    units = [list(zip(*plan)) for plan in plans]
    unit_elems = [plan[3] for plan in plans]
    unit_count = [len(plan[0]) for plan in plans]
    total_units = sum(unit_count)
    if max_cycles is None:
        max_cycles = 10_000 + 100 * total_units
    label = f"kernel={kernel.name}, org={config.describe()}"
    depth = fifo_depth
    for descriptor, elems in zip(descriptors, unit_elems):
        max_unit = max(elems)
        if depth < max_unit:
            raise StreamError(
                f"stream {descriptor.name}: FIFO depth {depth} smaller than "
                f"a {max_unit}-element DATA packet"
            )
    # Round-robin scan orders, precomputed per current-FIFO index.
    scan_orders = [
        [(start + offset) % num_fifos for offset in range(num_fifos)]
        for start in range(num_fifos)
    ]

    cursor = [0] * num_fifos
    occupancy = [0] * num_fifos
    inflight = [0] * num_fifos

    # CPU (StreamProcessor semantics, matched-bandwidth pacing).
    pattern = [
        (index, spec.direction is Direction.READ)
        for index, spec in enumerate(kernel.streams)
    ]
    schedule = pattern * length
    total_retires = len(schedule)
    position = 0
    cpu_next = 0
    blocked_since: Optional[int] = None
    stall_cycles = 0
    first_retire: Optional[int] = None
    last_retire: Optional[int] = None

    # MSU.
    next_decision = 0
    current = 0
    packets_issued = 0
    activations = 0
    bank_conflicts = 0
    fifo_switches = 0
    page_hits = 0
    page_misses = 0
    last_data_end = 0

    # Banks and channel buses (RdramDevice power-on state).
    num_banks = config.geometry.num_banks
    open_row = [-1] * num_banks
    bank_act = [NEVER] * num_banks
    bank_prer = [NEVER] * num_banks
    bank_col_end = [NEVER] * num_banks
    row_bus_free = 0
    col_bus_free = 0
    data_bus_free = 0
    device_last_act = NEVER
    last_write_end = NEVER
    last_dir_write = False
    packets_moved = 0

    # Read-data arrivals; completion times are monotonic (each DATA
    # packet's slot starts at or after the previous slot's end), so a
    # deque replaces the event heap exactly.
    arrivals: Deque[Tuple[int, int, int]] = deque()

    # Refresh engine (RefreshEngine semantics, no double-bank cases).
    refresh_due = DEFAULT_INTERVAL_CYCLES
    refresh_bank = 0
    refresh_row = 0
    refresh_deferrals = 0
    refreshes_issued = 0
    rows_per_bank = config.geometry.rows_per_bank

    cycle = 0
    while True:
        # 1. Deliver due read-data arrivals (re-arms an idle MSU).
        if arrivals and arrivals[0][0] <= cycle:
            while arrivals and arrivals[0][0] <= cycle:
                _, fifo_index, elems = arrivals.popleft()
                inflight[fifo_index] -= elems
                occupancy[fifo_index] += elems
            if next_decision >= _IDLE:
                next_decision = cycle

        # 2. Refresh tick (before the MSU, as in the event wiring).
        if refresh and cycle >= refresh_due:
            target = refresh_bank
            fired = True
            if open_row[target] >= 0:
                if refresh_deferrals < 8:
                    refresh_deferrals += 1
                    refresh_due = cycle + RETRY_CYCLES
                    fired = False
                else:
                    # Deadline: force-precharge the in-use page.
                    start = cycle
                    bound = bank_act[target] + t_ras
                    if bound > start:
                        start = bound
                    bound = bank_col_end[target] - t_cpol
                    if bound > start:
                        start = bound
                    if row_bus_free > start:
                        start = row_bus_free
                    open_row[target] = -1
                    bank_prer[target] = start
                    row_bus_free = start + t_pack
            if fired:
                start = cycle
                bound = bank_prer[target] + t_rp
                if bound > start:
                    start = bound
                bound = bank_act[target] + t_rc
                if bound > start:
                    start = bound
                if row_bus_free > start:
                    start = row_bus_free
                bound = device_last_act + t_rr
                if bound > start:
                    start = bound
                open_row[target] = refresh_row
                bank_act[target] = start
                row_bus_free = start + t_pack
                device_last_act = start
                prer = start + t_ras
                bound = bank_col_end[target] - t_cpol
                if bound > prer:
                    prer = bound
                if row_bus_free > prer:
                    prer = row_bus_free
                open_row[target] = -1
                bank_prer[target] = prer
                row_bus_free = prer + t_pack
                refreshes_issued += 1
                refresh_deferrals = 0
                refresh_bank += 1
                if refresh_bank >= num_banks:
                    refresh_bank = 0
                    refresh_row = (refresh_row + 1) % rows_per_bank
                refresh_due += DEFAULT_INTERVAL_CYCLES
                if refresh_due <= cycle:
                    refresh_due = cycle + 1
                if next_decision >= _IDLE:
                    next_decision = cycle

        # 3. MSU decision (round-robin choose + inlined device issue).
        if cycle >= next_decision:
            choice = -1
            for index in scan_orders[current]:
                if cursor[index] < unit_count[index]:
                    elems = unit_elems[index][cursor[index]]
                    if is_read[index]:
                        if occupancy[index] + inflight[index] + elems <= depth:
                            choice = index
                            break
                    elif occupancy[index] >= elems:
                        choice = index
                        break
            if choice < 0:
                next_decision = _IDLE
            else:
                if choice != current:
                    fifo_switches += 1
                    current = choice
                bank, row, column, elems, precharge = units[choice][
                    cursor[choice]
                ]
                if open_row[bank] == row:
                    page_hits += 1
                else:
                    page_misses += 1
                    if open_row[bank] >= 0:
                        bank_conflicts += 1
                        start = cycle
                        bound = bank_act[bank] + t_ras
                        if bound > start:
                            start = bound
                        bound = bank_col_end[bank] - t_cpol
                        if bound > start:
                            start = bound
                        if row_bus_free > start:
                            start = row_bus_free
                        open_row[bank] = -1
                        bank_prer[bank] = start
                        row_bus_free = start + t_pack
                    start = cycle
                    bound = bank_prer[bank] + t_rp
                    if bound > start:
                        start = bound
                    bound = bank_act[bank] + t_rc
                    if bound > start:
                        start = bound
                    if row_bus_free > start:
                        start = row_bus_free
                    bound = device_last_act + t_rr
                    if bound > start:
                        start = bound
                    open_row[bank] = row
                    bank_act[bank] = start
                    row_bus_free = start + t_pack
                    device_last_act = start
                    activations += 1
                reading = is_read[choice]
                col_start = cycle
                bound = bank_act[bank] + t_rcd
                if bound > col_start:
                    col_start = bound
                if col_bus_free > col_start:
                    col_start = col_bus_free
                delay = read_delay if reading else write_delay
                data_start = col_start + delay
                if data_bus_free > data_start:
                    data_start = data_bus_free
                if reading and last_dir_write:
                    bound = last_write_end + t_rw
                    if bound > data_start:
                        data_start = bound
                col_start = data_start - delay
                bank_col_end[bank] = col_start + t_pack
                col_bus_free = col_start + t_pack
                data_bus_free = data_start + t_pack
                last_dir_write = not reading
                if last_dir_write:
                    last_write_end = data_start + t_pack
                packets_moved += 1
                # DataPacket.end is start + 4 regardless of t_pack;
                # replicated for bit-identity with the event engine.
                data_end = data_start + 4
                if precharge:
                    prer = col_start
                    bound = bank_act[bank] + t_ras
                    if bound > prer:
                        prer = bound
                    bound = bank_col_end[bank] - t_cpol
                    if bound > prer:
                        prer = bound
                    open_row[bank] = -1
                    bank_prer[bank] = prer
                cursor[choice] += 1
                if reading:
                    inflight[choice] += elems
                    arrivals.append((data_end, choice, elems))
                else:
                    occupancy[choice] -= elems
                packets_issued += 1
                if data_end > last_data_end:
                    last_data_end = data_end
                pace = col_start - t_rcd
                next_decision = pace if pace > cycle + 1 else cycle + 1

        # 4. CPU retire (StreamProcessor.tick + the retire wake).
        if position < total_retires and cycle >= cpu_next:
            stream_index, read_access = schedule[position]
            if read_access:
                ready = occupancy[stream_index] > 0
            else:
                ready = occupancy[stream_index] < depth
            if not ready:
                if blocked_since is None:
                    blocked_since = cycle
            else:
                if blocked_since is not None:
                    stall_cycles += cycle - blocked_since
                    blocked_since = None
                if read_access:
                    occupancy[stream_index] -= 1
                else:
                    occupancy[stream_index] += 1
                if first_retire is None:
                    first_retire = cycle
                last_retire = cycle
                position += 1
                cpu_next = cycle + access_interval
                if next_decision >= _IDLE:
                    next_decision = cycle + 1

        # 5. Termination: every access retired, FIFOs drained, no
        # data in flight.
        if position >= total_retires and not arrivals:
            drained = True
            for index in range(num_fifos):
                if cursor[index] < unit_count[index] or (
                    is_read[index]
                    and (inflight[index] or occupancy[index])
                ):
                    drained = False
                    break
            if drained:
                break

        # 6. Advance to the next interesting cycle (the event kernel's
        # skip clock, with refresh as a passive candidate).
        best = arrivals[0][0] if arrivals else -1
        if next_decision < _IDLE and (best < 0 or next_decision < best):
            best = next_decision
        if (
            position < total_retires
            and blocked_since is None
            and (best < 0 or cpu_next < best)
        ):
            best = cpu_next
        if best < 0:
            raise SchedulingError(
                "deadlock: every component is blocked and no data is "
                f"in flight ({label})"
            )
        if refresh and refresh_due < best:
            best = refresh_due
        cycle = best if best > cycle else cycle + 1
        if cycle > max_cycles:
            raise SchedulingError(
                f"simulation exceeded {max_cycles} cycles ({label})"
            )

    end_cycle = max(last_data_end, last_retire or 0)
    mapping = get_address_mapping(config)
    banks_touched = {mapping.bank_of(d.base) for d in descriptors}
    builder = ResultBuilder(
        kernel=kernel.name,
        organization=config.describe(),
        length=descriptors[0].length,
        stride=descriptors[0].stride,
        fifo_depth=depth,
        alignment="aligned" if len(banks_touched) == 1 else "staggered",
        policy=RoundRobinPolicy.name,
        first_data=first_retire,
        last_data_end=last_data_end,
        packets_issued=packets_issued,
        activations=activations,
        bank_conflicts=bank_conflicts,
        page_hits=page_hits,
        page_misses=page_misses,
    )
    return builder.build(
        cycles=end_cycle,
        useful_bytes=sum(d.length for d in descriptors) * ELEMENT_BYTES,
        transferred_bytes=packets_moved * DATA_PACKET_BYTES,
        cpu_stall_cycles=stall_cycles,
        fifo_switches=fifo_switches,
        speculative_activations=0,
        refreshes=refreshes_issued,
    )


# ----------------------------------------------------------------------
# the lean component loop (pump-style controllers)


def lean_run(
    components: Sequence[Component],
    done: Callable[[], bool],
    max_cycles: int,
    label: str = "simulation",
) -> int:
    """Heapless replica of :meth:`repro.sim.kernel.Simulation.run`.

    For component sets that never post events (the transaction-pump
    baselines, the L2 streamer) the event scheduler is dead weight:
    this loop drives the same component objects over the same visit
    set with none of the dispatch machinery, so results are identical
    by construction.  Components must not return events from ``tick``
    and must not need instrumentation attached.

    Returns:
        The final visited cycle.

    Raises:
        SchedulingError: On watchdog expiry or deadlock (the event
            kernel's exact messages).
    """
    pairs: List[Tuple[Component, bool]] = [
        (component, bool(getattr(component, "breaks_deadlock", True)))
        for component in components
    ]
    cycle = 0
    while True:
        for component, _ in pairs:
            component.tick(cycle)
        if done():
            return cycle
        best: Optional[int] = None
        passive_best: Optional[int] = None
        for component, progresses in pairs:
            action = component.next_action_cycle
            if action is None:
                continue
            if progresses:
                if best is None or action < best:
                    best = action
            elif passive_best is None or action < passive_best:
                passive_best = action
        if best is None:
            raise SchedulingError(
                "deadlock: every component is blocked and no data is "
                f"in flight ({label})"
            )
        if passive_best is not None and passive_best < best:
            best = passive_best
        cycle = best if best > cycle else cycle + 1
        if cycle > max_cycles:
            raise SchedulingError(
                f"simulation exceeded {max_cycles} cycles ({label})"
            )
