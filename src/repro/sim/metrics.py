"""Trace-derived measurement: utilization, bank pressure, turnarounds.

The paper's analysis reasons about three resources — the DATA bus, the
command buses, and the banks.  This module computes those quantities
from a recorded packet trace, independently of the simulators that
produced it, so any run can be inspected quantitatively:

* data/row/col bus utilization, overall and per time window (the
  utilization *timeline* shows warmup, steady state, and drain);
* per-bank activations, column accesses, and open intervals;
* bus turnaround count and the cycles lost to t_RW gaps;
* the same percent-of-peak figure the simulators report, recomputed
  from the trace alone (tests assert the two agree).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.rdram.packets import (
    BusDirection,
    ColPacket,
    DataPacket,
    RowCommand,
    RowPacket,
)
from repro.rdram.timing import RdramTiming


@dataclass(frozen=True)
class BankStats:
    """Activity of one bank over a trace.

    Attributes:
        bank: Bank index.
        activations: ROW ACT packets received.
        precharges: PRER operations (row-bus or col-carried).
        column_accesses: COL RD/WR packets served.
    """

    bank: int
    activations: int
    precharges: int
    column_accesses: int


@dataclass(frozen=True)
class TraceMetrics:
    """Aggregate measurements over one packet trace.

    Attributes:
        cycles: Extent of the trace (end of its last packet).
        data_bus_utilization: Fraction of cycles the DATA bus carried
            packets.
        row_bus_utilization: Same for ROW command packets (col-carried
            precharges excluded — they cost no row-bus bandwidth).
        col_bus_utilization: Same for COL command packets.
        data_packets: DATA packets moved.
        turnarounds: Write-to-read bus direction flips.
        turnaround_cycles: DATA-bus idle cycles attributable to t_RW
            gaps at those flips.
        bank_stats: Per-bank activity, indexed by bank.
        utilization_timeline: (window start, data-bus utilization) per
            window.
    """

    cycles: int
    data_bus_utilization: float
    row_bus_utilization: float
    col_bus_utilization: float
    data_packets: int
    turnarounds: int
    turnaround_cycles: int
    bank_stats: Dict[int, BankStats]
    utilization_timeline: Tuple[Tuple[int, float], ...]

    @property
    def percent_of_peak(self) -> float:
        """Peak fraction delivered, from the trace alone."""
        return 100.0 * self.data_bus_utilization


def measure_trace(
    trace: Sequence[object],
    timing: Optional[RdramTiming] = None,
    window: int = 256,
) -> TraceMetrics:
    """Compute :class:`TraceMetrics` for a recorded trace.

    Args:
        trace: Packets recorded by a device or channel.
        timing: Timing parameters (for packet width and t_RW).
        window: Cycles per utilization-timeline bucket.

    Returns:
        The measurements.

    Raises:
        ConfigurationError: If the window is not positive.
    """
    timing = timing or RdramTiming()
    if window <= 0:
        raise ConfigurationError("window must be positive")
    t_pack = timing.t_pack

    end = 0
    data_cycles = 0
    row_cycles = 0
    col_cycles = 0
    data_packets = 0
    turnarounds = 0
    turnaround_cycles = 0
    last_data_dir: Optional[BusDirection] = None
    last_write_end = 0
    activations: Dict[int, int] = {}
    precharges: Dict[int, int] = {}
    column_accesses: Dict[int, int] = {}
    windows: Dict[int, int] = {}

    for packet in sorted(trace, key=lambda p: p.start):
        end = max(end, packet.start + t_pack)
        if isinstance(packet, RowPacket):
            if packet.command is RowCommand.ACT:
                activations[packet.bank] = activations.get(packet.bank, 0) + 1
                row_cycles += t_pack
            else:
                precharges[packet.bank] = precharges.get(packet.bank, 0) + 1
                if not packet.via_col:
                    row_cycles += t_pack
        elif isinstance(packet, ColPacket):
            col_cycles += t_pack
            if packet.command.value in ("RD", "WR"):
                column_accesses[packet.bank] = (
                    column_accesses.get(packet.bank, 0) + 1
                )
        elif isinstance(packet, DataPacket):
            data_packets += 1
            data_cycles += t_pack
            for offset in range(t_pack):
                bucket = (packet.start + offset) // window
                windows[bucket] = windows.get(bucket, 0) + 1
            if (
                packet.direction is BusDirection.READ
                and last_data_dir is BusDirection.WRITE
            ):
                turnarounds += 1
                turnaround_cycles += max(
                    0, min(packet.start - last_write_end, timing.t_rw)
                )
            if packet.direction is BusDirection.WRITE:
                last_write_end = packet.start + t_pack
            last_data_dir = packet.direction

    banks = {
        bank: BankStats(
            bank=bank,
            activations=activations.get(bank, 0),
            precharges=precharges.get(bank, 0),
            column_accesses=column_accesses.get(bank, 0),
        )
        for bank in sorted(
            set(activations) | set(precharges) | set(column_accesses)
        )
    }
    # The final window is usually cut short by the end of the trace;
    # divide by the covered extent, not the nominal width, so a fully
    # busy tail reads 1.0 instead of an artifact below it.
    timeline = tuple(
        (bucket * window, count / min(window, end - bucket * window))
        for bucket, count in sorted(windows.items())
    )
    return TraceMetrics(
        cycles=end,
        data_bus_utilization=data_cycles / end if end else 0.0,
        row_bus_utilization=row_cycles / end if end else 0.0,
        col_bus_utilization=col_cycles / end if end else 0.0,
        data_packets=data_packets,
        turnarounds=turnarounds,
        turnaround_cycles=turnaround_cycles,
        bank_stats=banks,
        utilization_timeline=timeline,
    )


def bank_imbalance(metrics: TraceMetrics, num_banks: Optional[int] = None) -> float:
    """Max/mean ratio of per-bank column accesses (1.0 = balanced).

    Args:
        metrics: Measurements from :func:`measure_trace`.
        num_banks: Total banks in the system; banks the trace never
            touched then count as zero, so concentration on a few
            banks (e.g. CLI at stride 16) shows up as a high ratio.
            Defaults to only the touched banks.
    """
    counts = [stats.column_accesses for stats in metrics.bank_stats.values()]
    if not counts or sum(counts) == 0:
        return 1.0
    population = max(num_banks or len(counts), len(counts))
    mean = sum(counts) / population
    return max(counts) / mean
