"""Shared discrete-event simulation kernel.

Every execution loop in the library runs through this module: the SMC
engine (:func:`repro.sim.engine.run_smc`), the natural-order and
cache-realistic baselines, the L2-streaming variant, the random-access
driver, and the FPM heritage model.  Each of those controllers used to
maintain a private cycle loop with its own bookkeeping; now they wire
:class:`Component` adapters into a :class:`Simulation` and the kernel
owns the mechanics they all share:

* the **event heap** (:class:`EventScheduler`) delivering queued
  events — read-data arrivals, line landings — at their due cycle,
* **skip-to-next-interesting-cycle** advancement: every state change
  happens either at a queued event or at a component's declared
  ``next_action_cycle``, so visiting only those cycles is exact,
* **dense-mode verification**: ``dense=True`` visits every cycle
  instead; the property tests assert both modes produce identical
  results, validating each controller's skip contract,
* **watchdog and deadlock detection**: a run that stops making
  progress raises :class:`~repro.errors.SchedulingError` instead of
  spinning,
* **observability attachment**: instrumentation is pointed at every
  component that accepts it and ``obs.now`` is maintained at each
  visited cycle, so stall attribution works the same way for every
  controller.

Controllers contribute only their wiring (component adapters and a
termination predicate) plus result assembly, for which
:class:`ResultBuilder` provides the uniform counter set.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Generic,
    Iterable,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    TypeVar,
    runtime_checkable,
)

from repro.errors import SchedulingError
from repro.obs.core import Instrumentation
from repro.obs.telemetry import TelemetryProbe, TelemetrySource
from repro.sim.results import SimulationResult


@runtime_checkable
class TimedEvent(Protocol):
    """Anything the :class:`EventScheduler` can queue.

    An event carries only its due cycle; what it *means* is decided by
    the simulation's ``deliver`` callback, which receives the event
    back when the cycle is reached.
    """

    @property
    def cycle(self) -> int:
        """Interface-clock cycle at which the event is due."""
        ...


E = TypeVar("E", bound=TimedEvent)


class EventScheduler(Generic[E]):
    """Time-ordered event queue (the kernel's wake/sleep backbone).

    Events posted with :meth:`post` are held in a heap keyed by
    ``(cycle, posting order)`` and handed back by :meth:`pop_due` once
    the clock reaches them.  Components that are blocked waiting for
    data do not poll: the cycle of the earliest pending event
    (:attr:`next_event_cycle`) is one of the candidates the simulation
    skips to, so a sleeping component is re-visited exactly when the
    event that can unblock it fires.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, E]] = []
        self._posted = 0

    def post(self, event: E) -> None:
        """Queue ``event`` for delivery at ``event.cycle``."""
        heapq.heappush(self._heap, (event.cycle, self._posted, event))
        self._posted += 1

    def pop_due(self, cycle: int) -> List[E]:
        """Remove and return every event due at or before ``cycle``.

        Events fire in (cycle, posting-order) order, so same-cycle
        events are delivered in the order they were posted.
        """
        due: List[E] = []
        heap = self._heap
        while heap and heap[0][0] <= cycle:
            due.append(heapq.heappop(heap)[2])
        return due

    @property
    def next_event_cycle(self) -> Optional[int]:
        """Due cycle of the earliest pending event, or None if empty."""
        return self._heap[0][0] if self._heap else None

    @property
    def empty(self) -> bool:
        """True when no events are pending."""
        return not self._heap

    def __len__(self) -> int:
        return len(self._heap)


class Component(Protocol):
    """What the kernel needs from anything it drives.

    A component is ticked once at every visited cycle, in the order
    components were wired, and tells the kernel when it next needs to
    act so the clock can skip straight there.
    """

    def tick(self, cycle: int) -> Iterable[TimedEvent]:
        """Act at ``cycle``; return any events to schedule."""
        ...

    @property
    def next_action_cycle(self) -> Optional[int]:
        """Next cycle this component can change state on its own.

        None means the component is blocked (it will be re-visited
        when a queued event fires) or finished.  A component may also
        define a class attribute ``breaks_deadlock = False`` when its
        pending action does not constitute forward progress for the
        computation (the refresh engine: a pending refresh cannot
        unblock a stalled processor).
        """
        ...


@runtime_checkable
class ObservableComponent(Protocol):
    """Optional instrumentation hooks a component may implement."""

    def attach_obs(self, obs: Instrumentation) -> None:
        """Point the wrapped model's ``obs`` attribute at ``obs``."""
        ...


@runtime_checkable
class FinishingComponent(Protocol):
    """Optional end-of-run hook a component may implement."""

    def finish_observation(self, end_cycle: int) -> None:
        """Close any open spans when the simulation ends."""
        ...


class SimClock:
    """The simulation's cycle counter.

    In skip mode the clock jumps straight to the next interesting
    cycle; in dense mode it advances one cycle at a time (slower but
    trivially correct — the property tests assert both modes agree).
    Either way the clock is strictly monotonic: a visited cycle is
    never revisited.
    """

    __slots__ = ("cycle", "dense")

    def __init__(self, dense: bool = False) -> None:
        self.cycle = 0
        self.dense = dense

    def advance(self, next_interesting: int) -> int:
        """Move to the next visited cycle and return it."""
        if self.dense:
            self.cycle += 1
        else:
            self.cycle = max(self.cycle + 1, next_interesting)
        return self.cycle


class Simulation:
    """One discrete-event run over a set of wired components.

    The kernel visits a cycle, delivers due events through the
    ``deliver`` callback, ticks every component in wiring order
    (posting any events they return), checks the termination
    predicate, and advances the clock — skipping to the next
    interesting cycle unless ``dense``.  The watchdog and deadlock
    detector guard every run; instrumentation, when given, is attached
    to every component that accepts it and ``obs.now`` tracks the
    visited cycle.

    Args:
        components: Ticked in order at every visited cycle.
        done: Termination predicate, checked after all components have
            ticked at a cycle; receives this simulation (for access to
            the scheduler).
        max_cycles: Watchdog limit on the cycle counter.
        deliver: Called with each due event before components tick.
        label: Identifies the run in watchdog/deadlock errors.
        dense: Visit every cycle instead of skipping.
        obs: Optional instrumentation to attach for this run.
    """

    def __init__(
        self,
        components: Sequence[Component],
        *,
        done: Callable[["Simulation"], bool],
        max_cycles: int,
        deliver: Optional[Callable[[Any], None]] = None,
        label: str = "simulation",
        dense: bool = False,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        self.scheduler: EventScheduler[Any] = EventScheduler()
        self.components: List[Component] = list(components)
        self.clock = SimClock(dense=dense)
        self.max_cycles = max_cycles
        self.label = label
        self.obs = obs
        self._done = done
        self._deliver = deliver
        if obs is not None and getattr(obs, "telemetry_window", None):
            # The probe is passive (it cannot mask a deadlock) and only
            # forces window-boundary visits, which the dense/skip
            # equivalence contract proves cannot change results.
            self.components.append(
                TelemetryProbe(
                    obs.telemetry_window,  # type: ignore[arg-type]
                    obs.metrics,
                    tuple(
                        component
                        for component in self.components
                        if isinstance(component, TelemetrySource)
                    ),
                    pending_events=self.scheduler.__len__,
                )
            )
        # Per-cycle hot path: precompute which components count as
        # forward progress so _next_cycle avoids getattr each visit.
        self._progress_pairs: List[Tuple[Component, bool]] = [
            (component, bool(getattr(component, "breaks_deadlock", True)))
            for component in self.components
        ]
        if obs is not None:
            for component in self.components:
                if isinstance(component, ObservableComponent):
                    component.attach_obs(obs)

    def run(self) -> int:
        """Drive the loop to completion.

        Returns:
            The final visited cycle (the cycle at which the
            termination predicate first held).

        Raises:
            SchedulingError: On watchdog expiry, or on deadlock (no
            pending event and no progress-making component has a next
            action).
        """
        scheduler = self.scheduler
        clock = self.clock
        components = self.components
        deliver = self._deliver
        done = self._done
        obs = self.obs
        max_cycles = self.max_cycles
        heap = scheduler._heap
        cycle = clock.cycle
        while True:
            if obs is not None:
                obs.now = cycle
            if deliver is not None and heap and heap[0][0] <= cycle:
                for event in scheduler.pop_due(cycle):
                    deliver(event)
            for component in components:
                for event in component.tick(cycle):
                    scheduler.post(event)
            if done(self):
                break
            # Computed in dense mode too: the deadlock check must fire
            # regardless of how the clock advances.
            target = self._next_cycle(cycle)
            cycle = clock.advance(target)
            if cycle > max_cycles:
                raise SchedulingError(
                    f"simulation exceeded {max_cycles} cycles "
                    f"({self.label})"
                )
        return cycle

    def finish(self, end_cycle: int) -> None:
        """Close open observation spans on every component.

        No-op for uninstrumented runs; callers invoke it with the
        run's logical end cycle once that is known.
        """
        if self.obs is None:
            return
        for component in self.components:
            if isinstance(component, FinishingComponent):
                component.finish_observation(end_cycle)

    def _next_cycle(self, cycle: int) -> int:
        """The next cycle at which any component can change state."""
        heap = self.scheduler._heap
        best: Optional[int] = heap[0][0] if heap else None
        passive_best: Optional[int] = None
        for component, progresses in self._progress_pairs:
            action = component.next_action_cycle
            if action is None:
                continue
            if progresses:
                if best is None or action < best:
                    best = action
            elif passive_best is None or action < passive_best:
                # A pending action that cannot unblock the computation
                # (e.g. a refresh) does not count as forward progress,
                # so it cannot mask a deadlock.
                passive_best = action
        if best is None:
            raise SchedulingError(
                "deadlock: every component is blocked and no data is "
                f"in flight ({self.label})"
            )
        if passive_best is not None and passive_best < best:
            best = passive_best
        return best if best > cycle else cycle + 1


class BackgroundEngine(Protocol):
    """What :class:`BackgroundComponent` adapts (e.g. a refresh engine)."""

    obs: Optional[Instrumentation]

    def tick(self, cycle: int) -> bool:
        """Act at ``cycle``; return True if device state was perturbed."""
        ...

    @property
    def next_action_cycle(self) -> int:
        """Cycle at which the engine next wants to act."""
        ...


class BackgroundComponent:
    """Adapts a background engine into a kernel component.

    Background work (refresh is the canonical case) perturbs device
    state on its own cadence but does not constitute forward progress
    for the computation, so it never breaks a deadlock.  The optional
    ``on_fire`` callback runs whenever the engine acted — wirings use
    it to wake a scheduler whose bank state may have changed under it.
    """

    breaks_deadlock = False

    def __init__(
        self,
        engine: BackgroundEngine,
        on_fire: Optional[Callable[[], None]] = None,
    ) -> None:
        self.engine = engine
        self._on_fire = on_fire

    def tick(self, cycle: int) -> Tuple[TimedEvent, ...]:
        if self.engine.tick(cycle) and self._on_fire is not None:
            self._on_fire()
        return ()

    @property
    def next_action_cycle(self) -> Optional[int]:
        return self.engine.next_action_cycle

    def attach_obs(self, obs: Instrumentation) -> None:
        self.engine.obs = obs


class TransactionPump:
    """Drives a transaction-level controller as a kernel component.

    Adapts a generator of transaction steps: the generator yields the
    lower-bound start cycle of its next transaction, the kernel skips
    to that cycle (or the next visited cycle after it), and the pump
    resumes the generator, which issues the transaction against the
    device at its *stored* lower bound — the device's earliest-legal-
    issue interface makes the outcome independent of which later cycle
    the pump was actually visited on, so dense and skip modes agree.

    Args:
        steps: Generator yielding each transaction's start lower
            bound; issuing happens inside the generator between
            yields.
        on_attach_obs: Called with the instrumentation when the
            simulation attaches it (controllers point their device's
            ``obs`` here).
        on_finish: Called with the end cycle from
            :meth:`Simulation.finish`.
    """

    def __init__(
        self,
        steps: Iterator[int],
        on_attach_obs: Optional[Callable[[Instrumentation], None]] = None,
        on_finish: Optional[Callable[[int], None]] = None,
    ) -> None:
        self._steps = steps
        self._on_attach_obs = on_attach_obs
        self._on_finish = on_finish
        self._next_start: Optional[int] = next(steps, None)

    @property
    def done(self) -> bool:
        """True once the generator is exhausted."""
        return self._next_start is None

    def tick(self, cycle: int) -> Tuple[TimedEvent, ...]:
        if self._next_start is not None and cycle >= self._next_start:
            self._next_start = next(self._steps, None)
        return ()

    @property
    def next_action_cycle(self) -> Optional[int]:
        return self._next_start

    def attach_obs(self, obs: Instrumentation) -> None:
        if self._on_attach_obs is not None:
            self._on_attach_obs(obs)

    def finish_observation(self, end_cycle: int) -> None:
        if self._on_finish is not None:
            self._on_finish(end_cycle)


@dataclass
class ResultBuilder:
    """Uniform accumulation and assembly of a :class:`SimulationResult`.

    Every controller reports through the same counter set: the run's
    identity fields are fixed at construction, the wiring accumulates
    into the counter fields while the simulation runs, and
    :meth:`build` assembles the final record — controller-specific
    values (stall cycles, FIFO switches, refresh counts) ride in as
    keyword overrides.

    Attributes:
        first_data: Cycle of the first DATA packet noted via
            :meth:`note_first_data` (becomes ``startup_cycles``).
        last_data_end: Latest DATA packet end noted via
            :meth:`note_data_end`.
        transactions: Line-granularity transactions issued (used by
            cacheline controllers to derive ``packets_issued``).
        packets_issued: COL packets issued.
        activations: ROW ACT packets issued.
        bank_conflicts: Conflict precharges (or the controller's
            conflict analogue, e.g. L2 refetches).
        page_hits: Accesses that hit an open row.
        page_misses: Accesses that had to activate.
        channel_transferred_bytes: Per-channel DATA-bus byte tallies
            noted via :meth:`note_channel_bytes` (empty for
            single-channel runs).
    """

    kernel: str
    organization: str
    length: int
    stride: int
    fifo_depth: int
    alignment: str
    policy: str
    first_data: Optional[int] = None
    last_data_end: int = 0
    transactions: int = 0
    packets_issued: int = 0
    activations: int = 0
    bank_conflicts: int = 0
    page_hits: int = 0
    page_misses: int = 0
    channel_transferred_bytes: Tuple[int, ...] = ()

    def note_channel_bytes(self, device: Any) -> None:
        """Record cross-channel DATA tallies from a memory model.

        Multi-channel fabrics expose ``channel_bytes()``; for any
        other memory model this is a no-op, keeping single-channel
        results byte-identical to their historical form.
        """
        channel_bytes = getattr(device, "channel_bytes", None)
        if channel_bytes is not None:
            self.channel_transferred_bytes = tuple(channel_bytes())

    def note_first_data(self, cycle: int) -> None:
        """Record the start of the run's first DATA packet."""
        if self.first_data is None:
            self.first_data = cycle

    def note_data_end(self, cycle: int) -> None:
        """Record a DATA packet end (keeps the latest)."""
        if cycle > self.last_data_end:
            self.last_data_end = cycle

    def build(
        self,
        *,
        cycles: int,
        useful_bytes: int,
        transferred_bytes: int,
        **overrides: int,
    ) -> SimulationResult:
        """Assemble the result from the accumulated counters.

        Args:
            cycles: Total run length in interface-clock cycles.
            useful_bytes: Stream bytes the processor consumed/produced.
            transferred_bytes: Bytes actually moved on the DATA bus.
            **overrides: Any :class:`SimulationResult` counter field to
                set or replace (e.g. ``cpu_stall_cycles=...``,
                ``packets_issued=...`` where the accumulated default is
                not the right accounting for this controller).

        Returns:
            The assembled, frozen result record.
        """
        fields: Dict[str, Any] = dict(
            kernel=self.kernel,
            organization=self.organization,
            length=self.length,
            stride=self.stride,
            fifo_depth=self.fifo_depth,
            alignment=self.alignment,
            policy=self.policy,
            cycles=cycles,
            useful_bytes=useful_bytes,
            transferred_bytes=transferred_bytes,
            startup_cycles=self.first_data or 0,
            packets_issued=self.packets_issued,
            activations=self.activations,
            bank_conflicts=self.bank_conflicts,
            page_hits=self.page_hits,
            page_misses=self.page_misses,
            channel_transferred_bytes=self.channel_transferred_bytes,
        )
        fields.update(overrides)
        return SimulationResult(**fields)
