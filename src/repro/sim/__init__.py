"""Simulation kernel, engine wiring, runner API, and result records."""

from repro.sim.batch import (
    ENGINES,
    batch_unsupported_reason,
    lean_run,
    list_engines,
    run_smc_batch,
)
from repro.sim.engine import run_smc
from repro.sim.kernel import (
    BackgroundComponent,
    Component,
    EventScheduler,
    ResultBuilder,
    SimClock,
    Simulation,
    TimedEvent,
    TransactionPump,
)
from repro.sim.metrics import BankStats, TraceMetrics, bank_imbalance, measure_trace
from repro.sim.results import SimulationResult
from repro.sim.runner import (
    ORGANIZATIONS,
    RunSpec,
    default_engine,
    resolve_config,
    resolve_policy,
    set_default_engine,
    simulate,
    simulate_kernel,
)
from repro.sim.sweep import Sweep, pivot, sweep

__all__ = [
    "ENGINES",
    "batch_unsupported_reason",
    "lean_run",
    "list_engines",
    "run_smc_batch",
    "run_smc",
    "default_engine",
    "set_default_engine",
    "BackgroundComponent",
    "Component",
    "EventScheduler",
    "ResultBuilder",
    "SimClock",
    "Simulation",
    "TimedEvent",
    "TransactionPump",
    "BankStats",
    "TraceMetrics",
    "bank_imbalance",
    "measure_trace",
    "SimulationResult",
    "ORGANIZATIONS",
    "RunSpec",
    "resolve_config",
    "resolve_policy",
    "simulate",
    "simulate_kernel",
    "Sweep",
    "pivot",
    "sweep",
]
