"""Simulation result records and bandwidth accounting.

Throughout the paper, "effective bandwidth" and "percentage of peak
bandwidth" describe the fraction of the memory system's total
bandwidth exploited by a configuration (Section 5).  Peak bandwidth
for a single Direct RDRAM is 1.6 GB/s — 4 bytes per 400 MHz interface
cycle — so percent-of-peak reduces to useful bytes delivered per
cycle over 4.

For non-unit strides only half of every DATA packet carries useful
words, capping *attainable* bandwidth at 50 % of peak; Figure 9 plots
percent of attainable, provided here as
:attr:`SimulationResult.percent_of_attainable`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

from repro.errors import ConfigurationError
from repro.rdram.timing import BYTES_PER_CYCLE_PEAK


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulated inner-loop computation.

    Attributes:
        kernel: Kernel name.
        organization: Human-readable memory organization summary.
        length: Vector length in elements (L_s).
        stride: Stride in elements.
        fifo_depth: FIFO depth in elements (f); 0 for non-SMC runs.
        alignment: Placement name ("aligned"/"staggered").
        policy: Scheduling policy name ("natural-order" for the
            baseline controller).
        cycles: Interface-clock cycles to complete all stream accesses.
        useful_bytes: Bytes of stream elements the processor consumed
            or produced (s * L_s * 8).
        transferred_bytes: Bytes actually moved on the DATA bus,
            including unused words of sparsely filled packets.
        startup_cycles: Cycle at which the processor retired its first
            element access.
        cpu_stall_cycles: Cycles the processor spent blocked on FIFOs.
        packets_issued: COL packets issued.
        activations: ROW ACT packets issued.
        bank_conflicts: Precharges forced by a needed bank holding a
            different open row.
        page_hits: Accesses whose needed row was already open.
        page_misses: Accesses that had to activate (closed bank or
            conflicting open row).
        fifo_switches: Times the MSU moved to a different FIFO.
        speculative_activations: Row activations issued ahead of need
            by a speculative policy.
        refreshes: Background row refreshes performed during the run
            (zero unless the system was built with ``refresh=True``).
        channel_transferred_bytes: Bytes moved on each channel's DATA
            bus, in channel order; empty for single-channel runs (the
            paper's system), where ``transferred_bytes`` is the whole
            story.
    """

    kernel: str
    organization: str
    length: int
    stride: int
    fifo_depth: int
    alignment: str
    policy: str
    cycles: int
    useful_bytes: int
    transferred_bytes: int
    startup_cycles: int = 0
    cpu_stall_cycles: int = 0
    packets_issued: int = 0
    activations: int = 0
    bank_conflicts: int = 0
    page_hits: int = 0
    page_misses: int = 0
    fifo_switches: int = 0
    speculative_activations: int = 0
    refreshes: int = 0
    channel_transferred_bytes: Tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        # JSON round-trips deliver lists; normalize so equality between
        # a fresh result and a cache-loaded one holds bit-for-bit.
        if not isinstance(self.channel_transferred_bytes, tuple):
            object.__setattr__(
                self,
                "channel_transferred_bytes",
                tuple(self.channel_transferred_bytes),
            )

    @property
    def channel_shares(self) -> Tuple[float, ...]:
        """Each channel's fraction of the bytes moved (empty if N=1)."""
        total = sum(self.channel_transferred_bytes)
        if total <= 0:
            return tuple(0.0 for _ in self.channel_transferred_bytes)
        return tuple(
            bytes_moved / total for bytes_moved in self.channel_transferred_bytes
        )

    @property
    def channels(self) -> int:
        """Channel count behind this result (1 unless a fabric ran)."""
        return max(1, len(self.channel_transferred_bytes))

    @property
    def page_hit_rate(self) -> float:
        """Fraction of accesses served from an already-open row."""
        total = self.page_hits + self.page_misses
        if total <= 0:
            return 0.0
        return self.page_hits / total

    @property
    def percent_of_peak(self) -> float:
        """Useful bytes per cycle as a percentage of the system peak.

        Peak is 4 B/cycle per channel (the paper's single-channel
        figure), scaled by the channel count — an N-channel fabric has
        N independent DATA buses, so a serial controller that saturates
        one of them reports ``100 / N`` percent here, not 100.
        """
        if self.cycles <= 0:
            return 0.0
        peak = self.cycles * BYTES_PER_CYCLE_PEAK * self.channels
        return 100.0 * self.useful_bytes / peak

    @property
    def attainable_fraction(self) -> float:
        """Fraction of peak that dense packets could ever deliver.

        1.0 at stride one; 0.5 for larger strides, where every DATA
        packet carries one useful 64-bit word out of two.
        """
        if self.transferred_bytes <= 0:
            return 1.0
        return min(1.0, self.useful_bytes / self.transferred_bytes)

    @property
    def percent_of_attainable(self) -> float:
        """Percent of the stride-limited attainable bandwidth (Figure 9)."""
        fraction = self.attainable_fraction
        if fraction <= 0:
            return 0.0
        return self.percent_of_peak / fraction

    @property
    def effective_bandwidth_bytes_per_sec(self) -> float:
        """Delivered useful bandwidth in bytes/second."""
        return self.percent_of_peak / 100.0 * 1_600_000_000 * self.channels

    def to_dict(self) -> Dict[str, Any]:
        """This result as a JSON-safe dict (all fields, no derived values).

        The inverse of :meth:`from_dict`; used by the on-disk result
        cache and for cross-process transport (:mod:`repro.exec`).
        """
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimulationResult":
        """Rebuild a result from a :meth:`to_dict` dict.

        Unknown keys are ignored so payloads may carry derived values
        (e.g. ``percent_of_peak``) alongside the stored fields.

        Raises:
            ConfigurationError: If a required field is missing.
        """
        names = {f.name for f in dataclasses.fields(cls)}
        try:
            return cls(**{k: v for k, v in data.items() if k in names})
        except TypeError as err:
            raise ConfigurationError(
                f"malformed SimulationResult payload: {err}"
            ) from None

    def summary(self) -> str:
        """One-line human-readable result."""
        return (
            f"{self.kernel:8s} {self.organization:38s} "
            f"L={self.length:5d} stride={self.stride:2d} f={self.fifo_depth:3d} "
            f"{self.alignment:9s} {self.policy:12s} "
            f"{self.cycles:7d} cyc  {self.percent_of_peak:6.2f}% peak"
        )
