"""Section 6 / abstract headline numbers, paper vs. reproduction.

Regenerates every specific number the paper's prose quotes:

* 8-stream (7 read + 1 write) natural-order bounds at strides 1 and 4
  (88.68 % / 76.11 % and 22.17 % / 19.03 %),
* copy on the SMC exploiting over 98 % of peak for 1024-element
  vectors, and about 95 % for 128-element vectors (startup-limited),
* the natural-order benchmark range (44-76 % of peak),
* the stride-one SMC improvement factors over the natural-order limit
  (1.18x to 2.25x).
"""

from __future__ import annotations

from typing import List

from repro.analytic.cache import natural_order_bound
from repro.analytic.smc import smc_bound
from repro.cpu.kernels import PAPER_KERNELS
from repro.experiments.rendering import ExperimentTable
from repro.memsys.config import MemorySystemConfig
from repro.sim.runner import RunSpec, simulate

DEEP_FIFO = 128
LONG = 1024
SHORT = 128


def run() -> List[ExperimentTable]:
    """Regenerate the quoted-number comparisons."""
    cli = MemorySystemConfig.cli()
    pi = MemorySystemConfig.pi()

    bounds = ExperimentTable(
        title="Section 6 — eight-stream natural-order bounds",
        headers=("configuration", "paper %", "ours %"),
    )
    bounds.add_row(
        "PI, 8 streams, stride 1", 88.68,
        natural_order_bound(pi, 7, 1, stride=1).percent_of_peak,
    )
    bounds.add_row(
        "CLI, 8 streams, stride 1", 76.11,
        natural_order_bound(cli, 7, 1, stride=1).percent_of_peak,
    )
    bounds.add_row(
        "PI, 8 streams, stride 4", 22.17,
        natural_order_bound(pi, 7, 1, stride=4).percent_of_peak,
    )
    bounds.add_row(
        "CLI, 8 streams, stride 4", 19.03,
        natural_order_bound(cli, 7, 1, stride=4).percent_of_peak,
    )

    copy_smc = ExperimentTable(
        title="Section 6 — copy on the SMC",
        headers=("configuration", "paper %", "ours %"),
    )
    long_copy = simulate(
        RunSpec(kernel="copy", organization=cli,
                length=LONG, fifo_depth=DEEP_FIFO)
    )
    copy_smc.add_row("copy, CLI, 1024 elems, f=128 (sim)", ">98", long_copy.percent_of_peak)
    short_bound = smc_bound(cli, 1, 1, SHORT, DEEP_FIFO)
    copy_smc.add_row(
        "copy, CLI, 128 elems, f=128 (startup limit)", "~95",
        short_bound.percent_startup_limit,
    )
    short_copy = simulate(
        RunSpec(kernel="copy", organization=cli,
                length=SHORT, fifo_depth=DEEP_FIFO)
    )
    copy_smc.add_row("copy, CLI, 128 elems, f=128 (sim)", "<=~95", short_copy.percent_of_peak)

    improvement = ExperimentTable(
        title="Abstract — SMC improvement over natural-order limit (stride 1)",
        headers=(
            "kernel", "org", "cache limit %", "SMC sim %", "improvement x"
        ),
        notes=["Paper quotes improvement factors of 1.18x to 2.25x."],
    )
    factors = []
    cache_range = []
    for name, kernel in PAPER_KERNELS.items():
        for org_name, config in (("cli", cli), ("pi", pi)):
            cache = natural_order_bound(
                config, kernel.num_read_streams, kernel.num_write_streams
            ).percent_of_peak
            cache_range.append(cache)
            smc = simulate(
                RunSpec(kernel=kernel, organization=config,
                        length=LONG, fifo_depth=DEEP_FIFO)
            ).percent_of_peak
            factor = smc / cache
            factors.append(factor)
            improvement.add_row(name, org_name.upper(), cache, smc, factor)
    improvement.notes.append(
        f"our factor range: {min(factors):.2f}x to {max(factors):.2f}x"
    )

    coverage = ExperimentTable(
        title="Abstract — natural-order bandwidth range across benchmarks",
        headers=("metric", "paper", "ours"),
        notes=[
            "Paper: accessing unit-stride streams by cachelines in "
            "natural order exploits 44-76% of peak for the benchmarks."
        ],
    )
    coverage.add_row(
        "natural-order range over kernels x orgs",
        "44-76 %",
        f"{min(cache_range):.1f}-{max(cache_range):.1f} %",
    )

    return [bounds, copy_smc, improvement, coverage]
