"""Double-bank ablation: "effectively eight" independent banks.

Section 2.2: "Some RDRAM cores incorporate 16 banks in a 'double
bank' architecture, but two adjacent banks cannot be accessed
simultaneously, making the total number of independent banks
effectively eight."

This experiment measures that claim on the simulator: a 16-bank
double-bank core (with the controller's even/odd bank permutation)
against the paper's 8 independent banks and a hypothetical 16
independent banks.
"""

from __future__ import annotations

from typing import Sequence

from repro.cpu.kernels import PAPER_KERNELS
from repro.exec.pool import run_specs
from repro.experiments.rendering import ExperimentTable
from repro.memsys.config import MemorySystemConfig
from repro.rdram.device import RdramGeometry
from repro.sim.runner import RunSpec

LENGTH = 1024
FIFO_DEPTH = 64

CORES = {
    "8 independent": RdramGeometry(num_banks=8),
    "16 double-bank": RdramGeometry(num_banks=16, doubled_banks=True),
    "16 independent": RdramGeometry(num_banks=16),
}


def run(kernels: Sequence[str] = tuple(PAPER_KERNELS)) -> ExperimentTable:
    """Measure SMC bandwidth across bank architectures."""
    table = ExperimentTable(
        title="Double-bank ablation — SMC % of peak by core architecture",
        headers=("kernel", "org") + tuple(CORES),
    )
    grid = [(name, org) for name in kernels for org in ("cli", "pi")]
    specs = [
        RunSpec(
            kernel=name,
            organization=getattr(MemorySystemConfig, org)(geometry=geometry),
            length=LENGTH,
            fifo_depth=FIFO_DEPTH,
        )
        for name, org in grid
        for geometry in CORES.values()
    ]
    simulated = iter(run_specs(specs))
    for name, org in grid:
        row = [name, org.upper()]
        row.extend(next(simulated).percent_of_peak for _ in CORES)
        table.add_row(*row)
    table.notes.append(
        "The 16-bank double-bank core tracks the 8-independent-bank "
        "device, confirming the paper's 'effectively eight' remark; "
        "16 truly independent banks buy little more for streams."
    )
    return table
