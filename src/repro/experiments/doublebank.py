"""Double-bank ablation: "effectively eight" independent banks.

Section 2.2: "Some RDRAM cores incorporate 16 banks in a 'double
bank' architecture, but two adjacent banks cannot be accessed
simultaneously, making the total number of independent banks
effectively eight."

This experiment measures that claim on the simulator: a 16-bank
double-bank core (with the controller's even/odd bank permutation)
against the paper's 8 independent banks and a hypothetical 16
independent banks.
"""

from __future__ import annotations

from typing import Sequence

from repro.cpu.kernels import PAPER_KERNELS, get_kernel
from repro.experiments.rendering import ExperimentTable
from repro.memsys.config import MemorySystemConfig
from repro.rdram.device import RdramGeometry
from repro.sim.runner import simulate_kernel

LENGTH = 1024
FIFO_DEPTH = 64

CORES = {
    "8 independent": RdramGeometry(num_banks=8),
    "16 double-bank": RdramGeometry(num_banks=16, doubled_banks=True),
    "16 independent": RdramGeometry(num_banks=16),
}


def run(kernels: Sequence[str] = tuple(PAPER_KERNELS)) -> ExperimentTable:
    """Measure SMC bandwidth across bank architectures."""
    table = ExperimentTable(
        title="Double-bank ablation — SMC % of peak by core architecture",
        headers=("kernel", "org") + tuple(CORES),
    )
    for name in kernels:
        kernel = get_kernel(name)
        for org in ("cli", "pi"):
            row = [name, org.upper()]
            for geometry in CORES.values():
                config = getattr(MemorySystemConfig, org)(geometry=geometry)
                result = simulate_kernel(
                    kernel, config, length=LENGTH, fifo_depth=FIFO_DEPTH
                )
                row.append(result.percent_of_peak)
            table.add_row(*row)
    table.notes.append(
        "The 16-bank double-bank core tracks the 8-independent-bank "
        "device, confirming the paper's 'effectively eight' remark; "
        "16 truly independent banks buy little more for streams."
    )
    return table
