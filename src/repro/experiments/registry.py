"""Uniform registry over the per-module experiment ``run()`` functions.

Every experiment registers under a short name with a description and
a builder producing ``(slug, ExperimentTable)`` pairs — one per table
or figure panel it regenerates.  The CLI, the test suite, and
programmatic callers all resolve experiments the same way::

    >>> from repro.experiments.registry import get_experiment
    >>> tables = get_experiment("figure8").build()

:func:`list_experiments` preserves registration order, which is the
paper's presentation order and the CLI's default run order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.experiments import (
    cache_reality,
    channel,
    doublebank,
    figure7,
    figure8,
    figure9,
    fpm_heritage,
    headline,
    l2_tradeoff,
    multi_client,
    policy_matrix,
    refresh_ablation,
    tables,
    timelines,
)
from repro.experiments.rendering import ExperimentTable

#: What a registered builder returns: named tables ready to render.
Tables = List[Tuple[str, ExperimentTable]]


@dataclass(frozen=True)
class Experiment:
    """One registered experiment.

    Attributes:
        name: Registry name (CLI argument).
        description: One-line summary of what it regenerates.
        build: Runs the experiment, returning (slug, table) pairs.
    """

    name: str
    description: str
    build: Callable[[], Tables]


_REGISTRY: Dict[str, Experiment] = {}


def register(name: str, description: str) -> Callable[[Callable[[], Tables]], Callable[[], Tables]]:
    """Decorator registering a builder under ``name``."""

    def decorator(build: Callable[[], Tables]) -> Callable[[], Tables]:
        if name in _REGISTRY:
            raise ConfigurationError(f"experiment {name!r} registered twice")
        _REGISTRY[name] = Experiment(name, description, build)
        return build

    return decorator


def get_experiment(name: str) -> Experiment:
    """Look up an experiment by registry name.

    Raises:
        ConfigurationError: If no experiment has that name.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {name!r}; choose from "
            f"{', '.join(_REGISTRY)}"
        ) from None


def list_experiments() -> List[str]:
    """Registered experiment names, in registration (paper) order."""
    return list(_REGISTRY)


@register("figure1", "DRAM family timing parameters (static table)")
def _figure1() -> Tables:
    return [("figure1", tables.figure1_table())]


@register("figure2", "Direct RDRAM -50/-800 timing parameters (static table)")
def _figure2() -> Tables:
    return [("figure2", tables.figure2_table())]


@register("timelines", "Figure 5/6 three-stream access timelines")
def _timelines() -> Tables:
    return [
        (f"timeline_{org}", timelines.three_stream_timeline(org).table)
        for org in ("cli", "pi")
    ]


@register("figure7", "Percent of peak vs FIFO depth, 16 panels")
def _figure7() -> Tables:
    return [
        (f"figure7_{p.kernel}_{p.organization}_{p.length}", p.table)
        for p in figure7.run()
    ]


@register("figure8", "Single-stream cacheline fill vs stride")
def _figure8() -> Tables:
    return [("figure8", figure8.run())]


@register("figure9", "vaxpy with non-unit strides (% of attainable)")
def _figure9() -> Tables:
    return [("figure9", figure9.run())]


@register("headline", "Section 6 / abstract quoted numbers, paper vs ours")
def _headline() -> Tables:
    return [
        (f"headline_{index}", table)
        for index, table in enumerate(headline.run())
    ]


@register("channel", "Channel efficiency vs device count (Crisp's 95%)")
def _channel() -> Tables:
    return [("channel", channel.run())]


@register("refresh", "Refresh ablation: the ignore-refresh assumption")
def _refresh() -> Tables:
    return [("refresh", refresh_ablation.run())]


@register("doublebank", "Double-bank cores vs independent banks")
def _doublebank() -> Tables:
    return [("doublebank", doublebank.run())]


@register("cache", "Natural-order controller with a real L2 in front")
def _cache() -> Tables:
    return [
        (f"cache_{index}", table)
        for index, table in enumerate(cache_reality.run())
    ]


@register("l2", "L2 capacity vs SMC FIFO tradeoff")
def _l2() -> Tables:
    return [
        (f"l2_{index}", table)
        for index, table in enumerate(l2_tradeoff.run())
    ]


@register("fpm", "Fast-page-mode heritage comparison")
def _fpm() -> Tables:
    return [("fpm", fpm_heritage.run())]


@register("multi_client", "Open-loop multi-client traffic over N channels")
def _multi_client() -> Tables:
    return [
        (f"multi_client_{name}", table)
        for name, table in zip(
            ("scaling", "attribution", "regulation", "scheduling"),
            multi_client.run(),
        )
    ]


@register("policy_matrix", "Address mapping x page policy cross product")
def _policy_matrix() -> Tables:
    return [
        (f"policy_matrix_{name}", table)
        for name, table in zip(
            ("smc", "natural"), policy_matrix.run()
        )
    ]


@register("policy_search", "Seeded evolve-and-evaluate search over the policy registries")
def _policy_search() -> Tables:
    # Imported lazily: repro.search depends on the traffic and exec
    # layers only, and the experiments package must stay importable
    # without pulling the search driver in at module-import time.
    from repro.search import SearchConfig, run_search

    result = run_search(SearchConfig(generations=3, population=6))
    table = ExperimentTable(
        title="Policy search: per-generation winners",
        headers=("generation", "best genome", "score", "% of peak", "p99 (cyc)"),
    )
    for report in result.generations:
        best = report.best
        table.add_row(
            report.index,
            best.genome.key(),
            best.score,
            best.percent_of_peak,
            best.p99_latency,
        )
    table.notes.append(
        f"winner: {result.winner.genome.key()} (seed 0; fitness = "
        "mean % of peak - p99/100 on the matched-load Zipf hot-set workload)"
    )
    return [("policy_search", table)]
