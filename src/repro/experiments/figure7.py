"""Figure 7: percent of peak bandwidth vs FIFO depth, 16 panels.

For each benchmark kernel (copy, daxpy, hydro, vaxpy), each memory
organization (CLI closed-page, PI open-page), and each vector length
(128 and 1024 elements), sweep FIFO depth from 8 to 128 elements and
report the same four series the paper plots:

* the natural-order cacheline access limit (flat line, analytic),
* the combined SMC analytic limit (startup + asymptotic bounds),
* simulated SMC performance with staggered vector bases,
* simulated SMC performance with aligned vector bases (maximal bank
  conflicts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analytic.cache import natural_order_bound
from repro.analytic.smc import smc_bound
from repro.cpu.kernels import PAPER_KERNELS, Kernel, get_kernel
from repro.exec.pool import run_specs
from repro.experiments.rendering import ExperimentTable
from repro.memsys.config import MemorySystemConfig
from repro.sim.results import SimulationResult
from repro.sim.runner import RunSpec

#: FIFO depths the paper sweeps (Section 6).
DEPTHS: Tuple[int, ...] = (8, 16, 32, 64, 128)

#: Vector lengths the paper evaluates (Section 6).
LENGTHS: Tuple[int, ...] = (128, 1024)

ORGS: Tuple[str, ...] = ("cli", "pi")


@dataclass
class Figure7Panel:
    """One of the sixteen panels of Figure 7.

    Attributes:
        kernel: Kernel name.
        organization: "cli" or "pi".
        length: Vector length in elements.
        table: Depth-indexed series (see module docstring).
    """

    kernel: str
    organization: str
    length: int
    table: ExperimentTable


def _panel_specs(
    kernel: Kernel, organization: str, length: int, depths: Sequence[int]
) -> List[RunSpec]:
    """The simulation grid behind one panel, in table order."""
    return [
        RunSpec(
            kernel=kernel,
            organization=organization,
            length=length,
            fifo_depth=depth,
            alignment=alignment,
        )
        for depth in depths
        for alignment in ("staggered", "aligned")
    ]


def _assemble_panel(
    kernel: Kernel,
    organization: str,
    length: int,
    depths: Sequence[int],
    simulated: Dict[RunSpec, SimulationResult],
) -> Figure7Panel:
    """Build one panel's table from already-simulated grid points."""
    config = (
        MemorySystemConfig.cli()
        if organization == "cli"
        else MemorySystemConfig.pi()
    )
    cache_limit = natural_order_bound(
        config, kernel.num_read_streams, kernel.num_write_streams
    ).percent_of_peak
    table = ExperimentTable(
        title=(
            f"Figure 7 — {kernel.name}, {organization.upper()}, "
            f"{length}-element vectors"
        ),
        headers=(
            "fifo depth",
            "cache limit %",
            "SMC combined limit %",
            "SMC staggered %",
            "SMC aligned %",
        ),
    )
    for depth in depths:
        bound = smc_bound(
            config,
            kernel.num_read_streams,
            kernel.num_write_streams,
            length,
            depth,
        )
        staggered, aligned = (
            simulated[
                RunSpec(
                    kernel=kernel,
                    organization=organization,
                    length=length,
                    fifo_depth=depth,
                    alignment=alignment,
                )
            ]
            for alignment in ("staggered", "aligned")
        )
        table.add_row(
            depth,
            cache_limit,
            bound.percent_combined_limit,
            staggered.percent_of_peak,
            aligned.percent_of_peak,
        )
    return Figure7Panel(
        kernel=kernel.name,
        organization=organization,
        length=length,
        table=table,
    )


def run_panel(
    kernel: Kernel,
    organization: str,
    length: int,
    depths: Sequence[int] = DEPTHS,
) -> Figure7Panel:
    """Compute one panel: sweep FIFO depth for a fixed kernel/org/length."""
    specs = _panel_specs(kernel, organization, length, depths)
    simulated = dict(zip(specs, run_specs(specs)))
    return _assemble_panel(kernel, organization, length, depths, simulated)


def run(
    kernels: Sequence[str] = tuple(PAPER_KERNELS),
    organizations: Sequence[str] = ORGS,
    lengths: Sequence[int] = LENGTHS,
    depths: Sequence[int] = DEPTHS,
) -> List[Figure7Panel]:
    """Regenerate all panels of Figure 7.

    Defaults reproduce the full 16-panel figure; narrow the arguments
    for quicker spot checks.  The entire figure is submitted as one
    batch to :func:`repro.exec.pool.run_specs`, so an ambient
    ``workers=`` context parallelizes across panels, not just within
    one.
    """
    grid = [
        (get_kernel(name), organization, length)
        for name in kernels
        for organization in organizations
        for length in lengths
    ]
    specs: List[RunSpec] = []
    for kernel, organization, length in grid:
        specs.extend(_panel_specs(kernel, organization, length, depths))
    simulated = dict(zip(specs, run_specs(specs)))
    return [
        _assemble_panel(kernel, organization, length, depths, simulated)
        for kernel, organization, length in grid
    ]
