"""Plain-text and CSV rendering helpers for experiment output.

Every experiment produces an :class:`ExperimentTable` — the same rows
and series the paper's tables and figures report — which renders to an
aligned text table for the terminal and to CSV for downstream
plotting.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import List, Sequence, Union

Cell = Union[str, int, float, None]


@dataclass
class ExperimentTable:
    """One table or figure's worth of regenerated data.

    Attributes:
        title: Experiment identifier (e.g. "Figure 8").
        headers: Column names.
        rows: Data rows; floats are rendered to two decimals.
        notes: Free-form caveats appended under the table.
    """

    title: str
    headers: Sequence[str]
    rows: List[Sequence[Cell]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> None:
        """Append one data row."""
        self.rows.append(cells)

    def render(self) -> str:
        """Aligned, boxed text rendering."""
        cells = [[_format(c) for c in row] for row in self.rows]
        widths = [
            max(
                len(str(header)),
                *(len(row[i]) for row in cells) if cells else (0,),
            )
            for i, header in enumerate(self.headers)
        ]
        out = io.StringIO()
        out.write(f"== {self.title} ==\n")
        out.write(
            "  ".join(str(h).ljust(w) for h, w in zip(self.headers, widths))
            + "\n"
        )
        out.write("  ".join("-" * w for w in widths) + "\n")
        for row in cells:
            out.write(
                "  ".join(c.rjust(w) for c, w in zip(row, widths)) + "\n"
            )
        for note in self.notes:
            out.write(f"note: {note}\n")
        return out.getvalue()

    def to_csv(self) -> str:
        """CSV rendering (comma-separated, header row first)."""
        out = io.StringIO()
        out.write(",".join(str(h) for h in self.headers) + "\n")
        for row in self.rows:
            out.write(",".join(_format(c) for c in row) + "\n")
        return out.getvalue()


def _format(cell: Cell) -> str:
    if cell is None:
        return ""
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def render_all(tables: Sequence[ExperimentTable]) -> str:
    """Concatenate renderings with blank-line separators."""
    return "\n".join(table.render() for table in tables)


#: Plot markers assigned to series in order.
MARKERS = "*o+x#@%&"


def render_chart(
    table: ExperimentTable,
    height: int = 16,
    y_min: float = 0.0,
    y_max: float = 100.0,
) -> str:
    """Render a table's numeric columns as a text chart.

    The first column supplies the x axis (one plot column per row, in
    row order); every other column becomes a series drawn with its own
    marker.  Designed for the percent-of-bandwidth figures, hence the
    default 0-100 y range.

    Args:
        table: The experiment table to plot.
        height: Plot rows between y_min and y_max.
        y_min: Bottom of the y axis.
        y_max: Top of the y axis.

    Returns:
        The chart plus a marker legend.
    """
    if not table.rows:
        return f"== {table.title} ==\n(no data)\n"
    series_names = list(table.headers[1:])
    xs = [row[0] for row in table.rows]
    grid = [[" "] * len(xs) for __ in range(height + 1)]
    for series_index, name in enumerate(series_names):
        marker = MARKERS[series_index % len(MARKERS)]
        for column, row in enumerate(table.rows):
            value = row[series_index + 1]
            if value is None:
                continue
            clamped = min(max(float(value), y_min), y_max)
            level = round((clamped - y_min) / (y_max - y_min) * height)
            cell = grid[height - level][column]
            # Overlapping series show the later marker; exact overlap
            # of more than two is rare at chart resolution.
            grid[height - level][column] = marker if cell == " " else "="
    out = io.StringIO()
    out.write(f"== {table.title} (chart) ==\n")
    for level, cells in enumerate(grid):
        y_value = y_max - (y_max - y_min) * level / height
        out.write(f"{y_value:6.1f} |" + " ".join(cells) + "\n")
    out.write("       +" + "-" * (2 * len(xs) - 1) + "\n")
    labels = " ".join(str(x)[0] for x in xs)
    out.write("        " + labels + f"   (x: {xs[0]}..{xs[-1]}, "
              f"{table.headers[0]})\n")
    for series_index, name in enumerate(series_names):
        marker = MARKERS[series_index % len(MARKERS)]
        out.write(f"        {marker} = {name}\n")
    out.write("        = marks overlapping series\n")
    return out.getvalue()
