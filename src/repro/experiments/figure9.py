"""Figure 9: vaxpy with non-unit strides.

Percent of *attainable* bandwidth (50 % of peak once every DATA packet
carries a single useful 64-bit word) for the vaxpy kernel on
1024-element vectors with 128-element FIFOs, at strides from 4 to 64:

* simulated SMC on PI and CLI systems (staggered bases),
* natural-order cacheline access bounds on PI and CLI.

The paper's observations to look for in the output: SMC performance is
stride-sensitive through bank conflicts; CLI-SMC dips at strides that
are multiples of 16 (all accesses land in few banks); for large
strides the flat cache bound can approach or beat the simple
round-robin SMC on PI.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.analytic.cache import natural_order_bound
from repro.analytic.smc import smc_bound
from repro.cpu.kernels import VAXPY
from repro.exec.pool import run_specs
from repro.experiments.rendering import ExperimentTable
from repro.memsys.config import MemorySystemConfig
from repro.sim.runner import RunSpec

#: The paper's x-axis ticks run 4, 12, ..., 60; we sample every
#: multiple of 4 to expose the multiple-of-16 dips it describes.
STRIDES: Tuple[int, ...] = tuple(range(4, 65, 4))

FIFO_DEPTH = 128
LENGTH = 1024


def run(
    strides: Sequence[int] = STRIDES,
    length: int = LENGTH,
    fifo_depth: int = FIFO_DEPTH,
) -> ExperimentTable:
    """Regenerate Figure 9's four series."""
    cli = MemorySystemConfig.cli()
    pi = MemorySystemConfig.pi()
    table = ExperimentTable(
        title=(
            f"Figure 9 — vaxpy, non-unit strides "
            f"(L={length}, f={fifo_depth}, % of attainable)"
        ),
        headers=(
            "stride",
            "PI SMC %",
            "CLI SMC %",
            "PI cache %",
            "CLI cache %",
            "SMC bound %",
        ),
    )
    s_r, s_w = VAXPY.num_read_streams, VAXPY.num_write_streams
    specs = [
        RunSpec(
            kernel=VAXPY,
            organization=org,
            length=length,
            fifo_depth=fifo_depth,
            stride=stride,
        )
        for stride in strides
        for org in (pi, cli)
    ]
    simulated = iter(run_specs(specs))
    for stride in strides:
        pi_smc = next(simulated)
        cli_smc = next(simulated)
        pi_cache = natural_order_bound(pi, s_r, s_w, stride=stride)
        cli_cache = natural_order_bound(cli, s_r, s_w, stride=stride)
        # The non-unit-stride Section 5.2 extension (one element per
        # packet) bounds either organization's SMC; at stride > 1 the
        # eq. 5.15 percentage is already relative to attainable.
        bound = smc_bound(pi, s_r, s_w, length, fifo_depth, stride=stride)
        table.add_row(
            stride,
            pi_smc.percent_of_attainable,
            cli_smc.percent_of_attainable,
            pi_cache.percent_of_attainable,
            cli_cache.percent_of_attainable,
            bound.percent_combined_limit,
        )
    table.notes.append(
        "Attainable bandwidth for non-unit strides is 50% of the "
        "1.6 GB/s peak (one useful 64-bit word per 128-bit DATA packet)."
    )
    return table
