"""Figures 1 and 2 of the paper: DRAM timing parameter tables.

These are data tables in the paper; we regenerate them from the
library's timing models, which also exercises the derived-parameter
validation (t_RAC = t_RCD + t_CAC + 1, peak bandwidth arithmetic).
"""

from __future__ import annotations

from repro.experiments.rendering import ExperimentTable
from repro.rdram.timing import DRAM_FAMILIES, DEFAULT_TIMING, RdramTiming, figure2_rows


def figure1_table() -> ExperimentTable:
    """Figure 1: typical timing parameters across DRAM families."""
    table = ExperimentTable(
        title="Figure 1 — Typical DRAM timing parameters",
        headers=(
            "family",
            "tRAC (ns)",
            "tCAC (ns)",
            "tRC (ns)",
            "tPC (ns)",
            "max freq (MHz)",
            "peak BW (MB/s)",
        ),
    )
    order = ("fast-page-mode", "edo", "burst-edo", "sdram", "direct-rdram")
    for key in order:
        family = DRAM_FAMILIES[key]
        table.add_row(
            family.name,
            family.t_rac_ns,
            family.t_cac_ns,
            family.t_rc_ns,
            family.t_pc_ns,
            family.max_freq_mhz,
            round(family.peak_bandwidth_bytes_per_sec / 1e6),
        )
    table.notes.append(
        "Direct RDRAM's tPC entry is the 10 ns packet transfer time "
        "(16 bytes/packet), recovering the advertised 1.6 GB/s."
    )
    return table


def figure2_table(timing: RdramTiming = DEFAULT_TIMING) -> ExperimentTable:
    """Figure 2: Direct RDRAM -50 -800 timing parameter definitions."""
    table = ExperimentTable(
        title="Figure 2 — Direct RDRAM (-50 -800) timing parameters",
        headers=("parameter", "description", "cycles", "ns"),
    )
    for name, description, cycles, nanoseconds in figure2_rows(timing):
        table.add_row(name, description, cycles, nanoseconds)
    table.notes.append(
        "All cycle counts are 400 MHz interface-clock cycles (2.5 ns)."
    )
    return table
