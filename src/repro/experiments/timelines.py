"""Figures 5 and 6: command/data timelines for a three-stream loop.

The paper illustrates CLI closed-page and PI open-page behavior with
packet-level timelines of the loop {rd x[i]; rd y[i]; st z[i]} (the
``triad`` kernel shape).  This module replays the natural-order
controller on that loop, renders the first packets as a text timeline,
and checks the headline spacings the figures call out: successive load
ROW ACT packets separated by t_RR, and the dependent store initiated
t_RAC after the last load on the closed-page system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cpu.kernels import TRIAD
from repro.cpu.streams import Alignment
from repro.experiments.rendering import ExperimentTable
from repro.memsys.config import MemorySystemConfig
from repro.naturalorder.controller import NaturalOrderController
from repro.rdram.packets import ColPacket, DataPacket, RowPacket
from repro.rdram.tracefmt import render_trace


@dataclass
class Timeline:
    """A rendered packet timeline plus the spacings under test.

    Attributes:
        table: Per-packet listing.
        act_spacings: Start-to-start gaps between the first ROW ACTs.
        chart: Gantt-style three-lane rendering of the same window.
    """

    table: ExperimentTable
    act_spacings: List[int]
    chart: str = ""


def three_stream_timeline(
    organization: str = "cli", packets: int = 24, length: int = 64
) -> Timeline:
    """Replay Figure 5 (CLI) or Figure 6 (PI) on the device model.

    Args:
        organization: "cli" or "pi".
        packets: Number of leading trace records to render.
        length: Vector length for the underlying run.

    Returns:
        The timeline and the observed ROW ACT spacings.
    """
    config = (
        MemorySystemConfig.cli()
        if organization == "cli"
        else MemorySystemConfig.pi()
    )
    controller = NaturalOrderController(config, record_trace=True)
    controller.run(TRIAD, length=length, alignment=Alignment.STAGGERED)
    trace = sorted(controller.device.trace, key=lambda p: p.start)

    figure = "Figure 5 (CLI closed-page)" if organization == "cli" else "Figure 6 (PI open-page)"
    table = ExperimentTable(
        title=f"{figure} — three-stream loop timeline",
        headers=("cycle", "bus", "packet", "bank", "detail"),
    )
    act_starts: List[int] = []
    for packet in trace[:packets]:
        if isinstance(packet, RowPacket):
            bus = "row" if not packet.via_col else "(col)"
            detail = f"row={packet.row}" if packet.row is not None else "precharge"
            table.add_row(packet.start, bus, packet.command.value, packet.bank, detail)
            if packet.command.value == "ACT":
                act_starts.append(packet.start)
        elif isinstance(packet, ColPacket):
            table.add_row(
                packet.start, "col", packet.command.value, packet.bank,
                f"row={packet.row} col={packet.column}",
            )
        elif isinstance(packet, DataPacket):
            table.add_row(
                packet.start, "data", packet.direction.value.upper(),
                packet.bank, "16-byte DATA packet",
            )
    spacings = [b - a for a, b in zip(act_starts, act_starts[1:])]
    table.notes.append(f"ROW ACT start-to-start spacings: {spacings}")
    chart = render_trace(controller.device.trace, until=96)
    table.notes.append("gantt rendering:\n" + chart)
    return Timeline(table=table, act_spacings=spacings, chart=chart)
