"""Policy matrix: every address mapping crossed with every page policy.

The paper fixes two pairings — cacheline interleaving with the
closed-page policy and page interleaving with open-page — and argues
each choice from the stream access pattern (Section 5).  The pluggable
policy layer makes the full cross product cheap to measure, so this
experiment runs every registered address mapping against every
registered page-management policy over the four paper kernels, for
both the SMC and the natural-order baseline.

The matrix puts the paper's pairings in context: CLI wants closed
pages because consecutive lines leave the bank forever, PI wants open
pages because they return, and the adaptive policies (timeout, hybrid)
approach the better static choice under either mapping without being
told which pattern they face.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.cpu.kernels import PAPER_KERNELS, get_kernel
from repro.exec.pool import run_specs
from repro.experiments.rendering import ExperimentTable
from repro.memsys.address import list_mappings
from repro.memsys.pagemanager import list_page_policies
from repro.naturalorder.controller import NaturalOrderController
from repro.sim.runner import RunSpec, apply_policy_overrides, resolve_config

LENGTH = 128
FIFO_DEPTH = 32

#: Module-level filters the experiments CLI sets; None means "all
#: registered" at run time, so out-of-tree registrations show up.
_mapping_filter: Optional[Tuple[str, ...]] = None
_policy_filter: Optional[Tuple[str, ...]] = None


def configure(
    mappings: Optional[Sequence[str]] = None,
    page_policies: Optional[Sequence[str]] = None,
) -> None:
    """Restrict the matrix to a subset of registry names.

    Used by ``repro-experiments --interleaving/--page-policy``; pass
    None to restore the full registry sweep.
    """
    global _mapping_filter, _policy_filter
    _mapping_filter = tuple(mappings) if mappings is not None else None
    _policy_filter = tuple(page_policies) if page_policies is not None else None


def run(
    kernels: Sequence[str] = tuple(sorted(PAPER_KERNELS)),
    length: int = LENGTH,
    fifo_depth: int = FIFO_DEPTH,
) -> List[ExperimentTable]:
    """Measure % of peak for every mapping x page-policy pairing.

    Returns:
        Two tables: SMC results, then the natural-order baseline.
    """
    mappings = list(_mapping_filter or list_mappings())
    policies = list(_policy_filter or list_page_policies())
    grid = [
        (kernel, policy) for kernel in kernels for policy in policies
    ]

    specs = [
        RunSpec(
            kernel=kernel,
            organization="cli",
            length=length,
            fifo_depth=fifo_depth,
            interleaving=mapping,
            page_policy=policy,
        )
        for kernel, policy in grid
        for mapping in mappings
    ]
    simulated = iter(run_specs(specs))
    smc = ExperimentTable(
        title=(
            "Policy matrix — SMC % of peak, address mapping x page "
            f"policy (L={length}, f={fifo_depth})"
        ),
        headers=("kernel", "page policy") + tuple(mappings),
    )
    for kernel, policy in grid:
        row = [kernel, policy]
        row.extend(next(simulated).percent_of_peak for _ in mappings)
        smc.add_row(*row)
    smc.notes.append(
        "The paper's pairings are cli+closed and pi+open; the adaptive "
        "policies (timeout, hybrid) track the better static choice "
        "under each mapping."
    )

    natural = ExperimentTable(
        title=(
            "Policy matrix — natural-order % of peak, address mapping "
            f"x page policy (L={length})"
        ),
        headers=("kernel", "page policy") + tuple(mappings),
    )
    base = resolve_config("cli")
    for kernel, policy in grid:
        row = [kernel, policy]
        for mapping in mappings:
            config = apply_policy_overrides(
                base, interleaving=mapping, page_policy=policy
            )
            result = NaturalOrderController(config).run(
                get_kernel(kernel), length=length
            )
            row.append(result.percent_of_peak)
        natural.add_row(*row)
    natural.notes.append(
        "Natural-order runs are serial (no RunSpec path); the same "
        "device model and policy objects as the SMC rows."
    )
    return [smc, natural]
