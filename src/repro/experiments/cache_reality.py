"""Cache-reality experiment: the paper's closing claim, measured.

Conclusions: "When we take non-unit strides, cache conflicts, and
cache writebacks into account, the SMC's advantages become even more
significant."  The paper leaves measuring this "beyond the scope of
this study"; here we measure it.

For each kernel and organization we report percent of peak for:

* the paper's idealized natural-order simulation (no writebacks, no
  conflicts — Section 5.1's assumptions);
* a cache-realistic baseline behind a 16 KB direct-mapped cache
  (write-allocate fills, dirty writebacks, conflict misses);
* the same behind a 4-way cache;
* the SMC with deep FIFOs.

A second table repeats the comparison for the stride-4 vaxpy of
Figure 9, where vector footprints quadruple and the conflict effects
the paper predicts appear in force.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.cache.controller import CachedNaturalOrderController
from repro.cache.model import CacheConfig
from repro.cpu.kernels import PAPER_KERNELS, get_kernel
from repro.experiments.rendering import ExperimentTable
from repro.memsys.config import MemorySystemConfig
from repro.naturalorder.controller import NaturalOrderController
from repro.sim.runner import RunSpec, simulate

LENGTH = 1024
FIFO_DEPTH = 128


def _row(kernel, config, stride: int):
    ideal = NaturalOrderController(config).run(
        kernel, length=LENGTH, stride=stride
    )
    direct = CachedNaturalOrderController(
        config, CacheConfig(associativity=1)
    ).run(kernel, length=LENGTH, stride=stride)
    four_way = CachedNaturalOrderController(
        config, CacheConfig(associativity=4)
    ).run(kernel, length=LENGTH, stride=stride)
    smc = simulate(
        RunSpec(kernel=kernel, organization=config, length=LENGTH,
                fifo_depth=FIFO_DEPTH, stride=stride)
    )
    return ideal, direct, four_way, smc


def run(kernels: Sequence[str] = tuple(PAPER_KERNELS)) -> List[ExperimentTable]:
    """Regenerate the cache-reality comparison tables."""
    tables = []
    for stride, label in ((1, "stride 1"), (4, "stride 4")):
        table = ExperimentTable(
            title=f"Cache reality — % of peak, {label}",
            headers=(
                "kernel",
                "org",
                "idealized natural order",
                "16KB direct-mapped",
                "16KB 4-way",
                "SMC f=128",
                "SMC / direct-mapped",
            ),
        )
        for name in kernels:
            kernel = get_kernel(name)
            for org in ("cli", "pi"):
                config = getattr(MemorySystemConfig, org)()
                ideal, direct, four_way, smc = _row(kernel, config, stride)
                table.add_row(
                    name,
                    org.upper(),
                    ideal.percent_of_peak,
                    direct.percent_of_peak,
                    four_way.percent_of_peak,
                    smc.percent_of_peak,
                    smc.percent_of_peak / direct.percent_of_peak,
                )
        table.notes.append(
            "Write-allocate fills and writebacks that the paper's "
            "Section 5.1 bounds ignore reduce the realistic baseline; "
            "the SMC's advantage grows accordingly (the paper's "
            "closing claim)."
        )
        tables.append(table)
    return tables
