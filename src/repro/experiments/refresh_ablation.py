"""Refresh ablation: quantifying the paper's ignore-refresh assumption.

Section 4.1 ignores refresh delays.  This experiment runs every paper
kernel on both organizations with and without the background refresh
engine and reports the bandwidth delta, showing the assumption costs
at most a couple of points.
"""

from __future__ import annotations

from typing import Sequence

from repro.cpu.kernels import PAPER_KERNELS, get_kernel
from repro.experiments.rendering import ExperimentTable
from repro.sim.runner import simulate_kernel

LENGTH = 1024
FIFO_DEPTH = 64


def run(kernels: Sequence[str] = tuple(PAPER_KERNELS)) -> ExperimentTable:
    """Measure SMC bandwidth with and without background refresh."""
    table = ExperimentTable(
        title="Refresh ablation — SMC % of peak with/without refresh",
        headers=(
            "kernel",
            "org",
            "no refresh %",
            "with refresh %",
            "delta",
            "refreshes",
        ),
    )
    for name in kernels:
        kernel = get_kernel(name)
        for org in ("cli", "pi"):
            base = simulate_kernel(
                kernel, org, length=LENGTH, fifo_depth=FIFO_DEPTH
            )
            refreshed = simulate_kernel(
                kernel, org, length=LENGTH, fifo_depth=FIFO_DEPTH,
                refresh=True,
            )
            table.add_row(
                name,
                org.upper(),
                base.percent_of_peak,
                refreshed.percent_of_peak,
                refreshed.percent_of_peak - base.percent_of_peak,
                refreshed.refreshes,
            )
    table.notes.append(
        "One row refresh every ~1562 cycles meets a 32 ms retention "
        "window; the cost stays within ~3 points (usually under 1.5), "
        "validating the paper's Section 4.1 assumption."
    )
    return table
