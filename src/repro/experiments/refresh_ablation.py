"""Refresh ablation: quantifying the paper's ignore-refresh assumption.

Section 4.1 ignores refresh delays.  This experiment runs every paper
kernel on both organizations with and without the background refresh
engine and reports the bandwidth delta, showing the assumption costs
at most a couple of points.
"""

from __future__ import annotations

from typing import Sequence

from repro.cpu.kernels import PAPER_KERNELS
from repro.exec.pool import run_specs
from repro.experiments.rendering import ExperimentTable
from repro.sim.runner import RunSpec

LENGTH = 1024
FIFO_DEPTH = 64


def run(kernels: Sequence[str] = tuple(PAPER_KERNELS)) -> ExperimentTable:
    """Measure SMC bandwidth with and without background refresh."""
    table = ExperimentTable(
        title="Refresh ablation — SMC % of peak with/without refresh",
        headers=(
            "kernel",
            "org",
            "no refresh %",
            "with refresh %",
            "delta",
            "refreshes",
        ),
    )
    grid = [(name, org) for name in kernels for org in ("cli", "pi")]
    specs = [
        RunSpec(
            kernel=name, organization=org, length=LENGTH,
            fifo_depth=FIFO_DEPTH, refresh=refresh,
        )
        for name, org in grid
        for refresh in (False, True)
    ]
    simulated = iter(run_specs(specs))
    for name, org in grid:
        base = next(simulated)
        refreshed = next(simulated)
        table.add_row(
            name,
            org.upper(),
            base.percent_of_peak,
            refreshed.percent_of_peak,
            refreshed.percent_of_peak - base.percent_of_peak,
            refreshed.refreshes,
        )
    table.notes.append(
        "One row refresh every ~1562 cycles meets a 32 ms retention "
        "window; the cost stays within ~3 points (usually under 1.5), "
        "validating the paper's Section 4.1 assumption."
    )
    return table
