"""Channel-scaling experiment: reconciling with Crisp's 95 %.

Section 6: "Our results for cacheline accesses of streams ... are
lower than the 95 % efficiency rate that Crisp reports.  This
difference is due to the fact that we model streaming kernels on a
memory system composed of a single RDRAM device, whereas Crisp's
experiments model more random access patterns on a system with many
devices."

This experiment makes that sentence quantitative: it measures channel
efficiency for (a) random cacheline reads and (b) the daxpy stream
kernel under the SMC and the natural-order baseline, as the device
count grows from 1 to 16.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.cpu.kernels import DAXPY
from repro.experiments.rendering import ExperimentTable
from repro.memsys.config import MemorySystemConfig
from repro.naturalorder.controller import NaturalOrderController
from repro.naturalorder.random_driver import RandomAccessDriver
from repro.rdram.channel import ChannelGeometry
from repro.sim.runner import RunSpec, simulate

DEVICE_COUNTS: Tuple[int, ...] = (1, 2, 4, 8, 16)

#: Random transactions per measurement; enough to wash out warm-up.
RANDOM_TRANSACTIONS = 2000

#: Outstanding-transaction budget for the random driver; Crisp-style
#: systems keep many independent requests in flight.
RANDOM_QUEUE_DEPTH = 8


def run(
    device_counts: Sequence[int] = DEVICE_COUNTS,
    transactions: int = RANDOM_TRANSACTIONS,
    seed: int = 7,
) -> ExperimentTable:
    """Measure channel efficiency vs device count."""
    table = ExperimentTable(
        title="Channel scaling — random accesses vs streams (% of peak)",
        headers=(
            "devices",
            "random reads %",
            "daxpy natural-order %",
            "daxpy SMC (f=64) %",
        ),
    )
    for count in device_counts:
        config = MemorySystemConfig.cli(
            geometry=ChannelGeometry(num_devices=count)
        )
        random_result = RandomAccessDriver(
            config, queue_depth=RANDOM_QUEUE_DEPTH
        ).run(transactions, seed=seed)
        natural = NaturalOrderController(config).run(DAXPY, length=1024)
        smc = simulate(
            RunSpec(kernel=DAXPY, organization=config,
                    length=1024, fifo_depth=64)
        )
        table.add_row(
            count,
            random_result.percent_of_peak,
            natural.percent_of_peak,
            smc.percent_of_peak,
        )
    table.notes.append(
        "Random accesses on a many-device channel approach Crisp's 95% "
        "efficiency; the single-device stream baseline cannot, which is "
        "the gap the paper explains in Section 6."
    )
    return table
