"""Experiment harness: regenerates every table and figure of the paper."""

from repro.experiments import (
    cache_reality,
    channel,
    doublebank,
    figure7,
    figure8,
    figure9,
    fpm_heritage,
    headline,
    l2_tradeoff,
    refresh_ablation,
    report,
    tables,
    timelines,
)
from repro.experiments.rendering import ExperimentTable, render_all
from repro.experiments.registry import (
    Experiment,
    get_experiment,
    list_experiments,
)

__all__ = [
    "Experiment",
    "get_experiment",
    "list_experiments",
    "cache_reality",
    "channel",
    "doublebank",
    "figure7",
    "figure8",
    "figure9",
    "fpm_heritage",
    "headline",
    "l2_tradeoff",
    "refresh_ablation",
    "report",
    "tables",
    "timelines",
    "ExperimentTable",
    "render_all",
]
