"""Multi-client open-loop traffic across channel topologies.

The paper (and Crisp's 95 % figure it reconciles with in Section 6)
evaluates closed-loop streams against one channel.  This experiment
runs the other operating point production parts face: thousands of
independent clients with Zipf hot sets offering load open-loop.
Three tables come out of it:

* **Topology scaling** — the same offered load against 1, 2 and 4
  channels: request-latency percentiles fall and per-channel bandwidth
  shares stay balanced because the channel-striping selector spreads
  consecutive cachelines round-robin.
* **Latency attribution** — the same runs decomposed into the
  per-request latency components (queue wait, bank busy, bus
  contention, transfer, ...), showing *where* the added channels
  recover cycles.
* **Bank-budget regulation** — a deliberately abusive population
  (few clients, maximally skewed hot sets) with and without the
  per-client bank-budget regulator, showing the regulator trading a
  longer run for a bounded worst-client bank share.
* **Request scheduling** — the Zipf hot-set population offered at
  matched load (arrival rate near service capacity) under each
  registered scheduler: FR-FCFS and MARS batching turn the hot rows'
  requests into back-to-back page hits, cutting tail latency vs FCFS
  at identical offered load.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.experiments.rendering import ExperimentTable
from repro.memsys.config import MemorySystemConfig
from repro.traffic import (
    COMPONENTS,
    BankBudgetRegulator,
    TrafficWorkload,
    list_schedulers,
    run_traffic,
)

CHANNEL_COUNTS: Tuple[int, ...] = (1, 2, 4)

#: Baseline population: many clients, mild skew, open-loop Poisson.
SCALING_WORKLOAD = TrafficWorkload(
    clients=1024, requests=2048, mean_gap=2.0, seed=11
)

#: Abusive population for the regulator table: a handful of clients
#: hammering two-line hot sets as fast as they can.
HOT_WORKLOAD = TrafficWorkload(
    clients=8,
    requests=1024,
    mean_gap=1.0,
    zipf_s=2.5,
    hot_lines=2,
    hot_fraction=1.0,
    seed=5,
)

REGULATOR_WINDOW = 512
REGULATOR_BUDGET = 32

#: Zipf hot-set population at *matched* offered load for the
#: scheduling table: the aggregate arrival rate sits just under the
#: channel's service capacity, so queues form in bursts (where
#: reordering can act) without the unbounded backlog of the abusive
#: population (where the MARS starvation cap correctly forces FCFS).
SCHED_WORKLOAD = TrafficWorkload(
    clients=8,
    requests=2048,
    mean_gap=32.0,
    zipf_s=2.0,
    hot_lines=4,
    hot_fraction=0.9,
    seed=5,
)

#: The scheduling table runs open-page so batched same-row requests
#: actually land as page hits.
SCHED_CONFIG = MemorySystemConfig.cli(page_policy="open")


def run(
    channel_counts: Sequence[int] = CHANNEL_COUNTS,
) -> List[ExperimentTable]:
    """Build the topology-scaling and regulation tables."""
    scaling = ExperimentTable(
        title="Open-loop multi-client traffic vs channel count",
        headers=(
            "channels",
            "p50 lat (cyc)",
            "p90 lat (cyc)",
            "p99 lat (cyc)",
            "cycles",
            "channel shares",
        ),
    )
    scaling_results = []
    for channels in channel_counts:
        result = run_traffic(workload=SCALING_WORKLOAD, channels=channels)
        scaling_results.append((channels, result))
        scaling.add_row(
            channels,
            round(result.p50_latency),
            round(result.p90_latency),
            round(result.p99_latency),
            result.cycles,
            "/".join(f"{s:.0%}" for s in result.channel_shares),
        )
    scaling.notes.append(
        f"{SCALING_WORKLOAD.clients} clients, "
        f"{SCALING_WORKLOAD.requests} requests, mean gap "
        f"{SCALING_WORKLOAD.mean_gap} cycles; channel striping keeps "
        "per-channel shares balanced while added channels cut queueing "
        "delay."
    )

    attribution = ExperimentTable(
        title="Mean request-latency attribution (cycles per request)",
        headers=("channels",) + COMPONENTS,
    )
    for channels, result in scaling_results:
        means = result.mean_component_cycles()
        attribution.add_row(
            channels,
            *(round(means[name], 1) for name in COMPONENTS),
        )
    attribution.notes.append(
        "Components sum to mean request latency exactly (closure is "
        "checked per request); added channels shrink queue_wait and "
        "bus_contention while transfer time stays fixed."
    )

    regulation = ExperimentTable(
        title="Per-client bank-budget regulation under a hot workload",
        headers=(
            "regulator",
            "p50 lat (cyc)",
            "p99 lat (cyc)",
            "cycles",
            "worst client-bank B/cyc",
            "deferrals",
        ),
    )
    for label, regulator in (
        ("off", None),
        (
            f"{REGULATOR_BUDGET} B / {REGULATOR_WINDOW} cyc",
            BankBudgetRegulator(
                window_cycles=REGULATOR_WINDOW,
                budget_bytes=REGULATOR_BUDGET,
            ),
        ),
    ):
        result = run_traffic(workload=HOT_WORKLOAD, regulator=regulator)
        regulation.add_row(
            label,
            round(result.p50_latency),
            round(result.p99_latency),
            result.cycles,
            f"{result.max_client_bank_rate:.3f}",
            result.deferrals,
        )
    regulation.notes.append(
        "All requests are eventually served either way; the regulator "
        "defers over-budget clients to the next window, capping any one "
        "client's sustained rate through any one bank at "
        f"{REGULATOR_BUDGET / REGULATOR_WINDOW:.3f} B/cyc."
    )

    scheduling = ExperimentTable(
        title=(
            "Request scheduling under the matched-load Zipf hot-set "
            "workload"
        ),
        headers=(
            "scheduler",
            "p50 lat (cyc)",
            "p90 lat (cyc)",
            "p99 lat (cyc)",
            "cycles",
        ),
    )
    for name in list_schedulers():
        result = run_traffic(
            SCHED_CONFIG, workload=SCHED_WORKLOAD, scheduler=name
        )
        scheduling.add_row(
            name,
            round(result.p50_latency),
            round(result.p90_latency),
            round(result.p99_latency),
            result.cycles,
        )
    scheduling.notes.append(
        f"{SCHED_WORKLOAD.clients} clients, {SCHED_WORKLOAD.requests} "
        f"requests at matched load (mean gap {SCHED_WORKLOAD.mean_gap} "
        "cycles) over an open-page system; identical offered load per "
        "row.  FR-FCFS and MARS serve hot-row batches back to back, "
        "cutting p99 vs FCFS; under unbounded backlog the MARS "
        "starvation age cap deliberately reverts to FCFS."
    )
    return [scaling, attribution, regulation, scheduling]
