"""Figure 8: cacheline-fill bandwidth for a single strided stream.

Maximum percent of peak bandwidth deliverable by natural-order
cacheline accesses when reading one stream at strides 1-32, for CLI
(closed page, eq. 5.2/5.3) and PI (open page, eq. 5.7/5.8) systems.

Two PI variants are reported: charging the per-page precharge and
first-line miss (the printed eq. 5.8), and the
page-overheads-overlapped reading under which the curve "remains
constant once the stride exceeds the number of words in the
cacheline", as the figure's caption text describes.  Both drop to 10 %
or less of potential bandwidth once lines are sparsely used — the
paper's Section 6 point.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.analytic.cache import single_stream_fill_bound
from repro.experiments.rendering import ExperimentTable
from repro.memsys.config import MemorySystemConfig

#: Strides on the paper's x-axis (1 through 32 64-bit words).
STRIDES: Tuple[int, ...] = tuple(range(1, 33))


def run(strides: Sequence[int] = STRIDES) -> ExperimentTable:
    """Regenerate Figure 8's two curves (plus the PI variant)."""
    cli = MemorySystemConfig.cli()
    pi = MemorySystemConfig.pi()
    table = ExperimentTable(
        title="Figure 8 — single-stream cacheline fill vs stride",
        headers=(
            "stride",
            "CLI closed-page %",
            "PI open-page % (eq 5.8)",
            "PI open-page % (overheads overlapped)",
        ),
    )
    for stride in strides:
        table.add_row(
            stride,
            single_stream_fill_bound(cli, stride),
            single_stream_fill_bound(pi, stride, include_page_overhead=True),
            single_stream_fill_bound(pi, stride, include_page_overhead=False),
        )
    table.notes.append(
        "Beyond the 4-word cacheline, CLI stays at 8.33% and the "
        "overlapped PI variant at 16.67%; eq 5.8's variant keeps "
        "declining slowly as fewer lines amortize each page's overhead."
    )
    return table
