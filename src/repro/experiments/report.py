"""One-shot reproduction report.

Runs the full experiment harness and writes a single markdown document
— paper claims on the left, this build's measurements on the right,
with a PASS/NEAR/DIFF verdict per row — so a reader can judge the
reproduction without running anything themselves.

    repro-experiments --report results/REPORT.md
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.analytic.cache import natural_order_bound
from repro.cpu.kernels import PAPER_KERNELS, get_kernel
from repro.memsys.config import MemorySystemConfig
from repro.sim.runner import RunSpec, simulate


@dataclass(frozen=True)
class Claim:
    """One checkable sentence from the paper.

    Attributes:
        source: Where the paper says it.
        statement: The claim, paraphrased.
        paper_value: The number(s) the paper quotes (as text).
        measure: Callable producing (our value as text, verdict).
    """

    source: str
    statement: str
    paper_value: str
    measure: Callable[[], Tuple[str, str]]


def _verdict(ours: float, target: float, near: float, far: float) -> str:
    delta = abs(ours - target)
    if delta <= near:
        return "PASS"
    if delta <= far:
        return "NEAR"
    return "DIFF"


def _bound(org: str, s_r: int, s_w: int, stride: int = 1) -> float:
    config = getattr(MemorySystemConfig, org)()
    return natural_order_bound(config, s_r, s_w, stride=stride).percent_of_peak


def _smc(kernel: str, org: str, depth: int = 128, length: int = 1024) -> float:
    spec = RunSpec(
        kernel=kernel, organization=org, length=length, fifo_depth=depth
    )
    return simulate(spec).percent_of_peak


def _claims() -> List[Claim]:
    def bound_claim(org, stride, target):
        def run():
            ours = _bound(org, 7, 1, stride)
            return f"{ours:.2f} %", _verdict(ours, target, 0.3, 1.5)
        return run

    def copy_claim():
        ours = _smc("copy", "cli")
        if ours > 98:
            verdict = "PASS"
        elif ours > 96.5:
            verdict = "NEAR"
        else:
            verdict = "DIFF"
        return f"{ours:.2f} %", verdict

    def improvement_claim():
        factors = []
        for name in PAPER_KERNELS:
            kernel = get_kernel(name)
            for org in ("cli", "pi"):
                cache = _bound(org, kernel.num_read_streams, kernel.num_write_streams)
                factors.append(_smc(name, org) / cache)
        low, high = min(factors), max(factors)
        verdict = (
            "PASS"
            if abs(low - 1.18) < 0.1 and abs(high - 2.25) < 0.25
            else "NEAR"
        )
        return f"{low:.2f}x - {high:.2f}x", verdict

    def range_claim():
        bounds = []
        for name in PAPER_KERNELS:
            kernel = get_kernel(name)
            for org in ("cli", "pi"):
                bounds.append(
                    _bound(org, kernel.num_read_streams, kernel.num_write_streams)
                )
        low, high = min(bounds), max(bounds)
        # The low end reproduces exactly; our reconciled model puts
        # the 4-stream PI bound at 80 % where the paper says "less
        # than 76 %", so the range is honestly NEAR, not PASS.
        verdict = "NEAR" if abs(low - 44) < 2 and high <= 81 else "DIFF"
        return f"{low:.1f} - {high:.1f} %", verdict

    def strided_claim():
        cache = natural_order_bound(
            MemorySystemConfig.pi(), 3, 1, stride=4
        ).percent_of_attainable
        smc = simulate(
            RunSpec(
                kernel="vaxpy", organization="pi",
                length=1024, fifo_depth=128, stride=4,
            )
        ).percent_of_attainable
        ratio = smc / cache
        # "up to 2.2x" is a ceiling claim; we land a bit above it.
        return f"{ratio:.2f}x", _verdict(ratio, 2.2, 0.1, 0.4)

    return [
        Claim(
            "Section 6", "8-stream natural-order bound, PI, stride 1",
            "88.68 %", bound_claim("pi", 1, 88.68),
        ),
        Claim(
            "Section 6", "8-stream natural-order bound, CLI, stride 1",
            "76.11 %", bound_claim("cli", 1, 76.11),
        ),
        Claim(
            "Section 6", "8-stream natural-order bound, PI, stride 4",
            "22.17 %", bound_claim("pi", 4, 22.17),
        ),
        Claim(
            "Section 6", "8-stream natural-order bound, CLI, stride 4",
            "19.03 %", bound_claim("cli", 4, 19.03),
        ),
        Claim(
            "Section 6", "copy, 1024 elements, deep-FIFO SMC",
            "> 98 %", copy_claim,
        ),
        Claim(
            "Abstract", "SMC improvement factors over natural order, stride 1",
            "1.18x - 2.25x", improvement_claim,
        ),
        Claim(
            "Abstract", "natural-order range across the benchmarks",
            "44 - 76 %", range_claim,
        ),
        Claim(
            "Section 6 / Figure 9", "strided SMC vs naive on PI (stride 4)",
            "up to 2.2x", strided_claim,
        ),
    ]


def generate_report() -> str:
    """Produce the markdown reproduction report."""
    out = io.StringIO()
    out.write("# Reproduction report\n\n")
    out.write(
        "Hong et al., *Access Order and Effective Bandwidth for Streams "
        "on a Direct Rambus Memory* (HPCA 1999) — paper claims vs this "
        "build, regenerated live by `repro.experiments.report`.\n\n"
    )
    out.write("| source | claim | paper | this build | verdict |\n")
    out.write("|---|---|---|---|---|\n")
    verdicts = []
    for claim in _claims():
        ours, verdict = claim.measure()
        verdicts.append(verdict)
        out.write(
            f"| {claim.source} | {claim.statement} | {claim.paper_value} "
            f"| {ours} | {verdict} |\n"
        )
    passed = verdicts.count("PASS")
    out.write(
        f"\n**{passed}/{len(verdicts)} PASS**, "
        f"{verdicts.count('NEAR')} NEAR, {verdicts.count('DIFF')} DIFF.  "
        "See `EXPERIMENTS.md` for the full per-figure accounting and "
        "modeling caveats.\n"
    )
    return out.getvalue()
