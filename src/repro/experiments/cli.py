"""Command-line entry point regenerating every table and figure.

Run ``repro-experiments`` (installed console script) or
``python -m repro.experiments.cli``.  Experiments are resolved
through :mod:`repro.experiments.registry`; text renderings go to
stdout, ``--csv-dir`` additionally writes one CSV per experiment, and
``--workers``/``--cache`` install a sweep-execution context so the
simulation grids fan out across processes and reuse previously
simulated points (see :mod:`repro.exec`)::

    repro-experiments figure7 figure9 --workers 4 --cache ~/.cache/repro
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.exec import execution
from repro.exec.stats import SweepStats
from repro.experiments import rendering
from repro.experiments.registry import get_experiment, list_experiments
from repro.experiments.rendering import ExperimentTable


def _chartable(slug: str) -> bool:
    """Sweep experiments whose columns are percentages to plot."""
    return slug.startswith(("figure7", "figure8", "figure9", "channel"))


#: Registry names in default run order (kept as a tuple for back-compat).
EXPERIMENTS = tuple(list_experiments())


def collect(names: Sequence[str]) -> List[Tuple[str, ExperimentTable]]:
    """Run the named experiments, returning (slug, table) pairs."""
    out: List[Tuple[str, ExperimentTable]] = []
    for name in names:
        try:
            experiment = get_experiment(name)
        except ConfigurationError as error:
            raise SystemExit(str(error)) from None
        out.extend(experiment.build())
    return out


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures."
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=list(EXPERIMENTS),
        help=f"subset to run (default: all of {', '.join(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--csv-dir",
        type=Path,
        default=None,
        help="also write one CSV per experiment into this directory",
    )
    parser.add_argument(
        "--report",
        type=Path,
        default=None,
        metavar="FILE",
        help="also write the markdown reproduction report to FILE",
    )
    parser.add_argument(
        "--charts",
        action="store_true",
        help="additionally render sweep experiments as text charts",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="fan simulation grids out over N worker processes",
    )
    parser.add_argument(
        "--cache",
        type=Path,
        default=None,
        metavar="DIR",
        help="content-addressed result cache directory; previously "
             "simulated points are reused instead of re-run",
    )
    parser.add_argument(
        "--ledger",
        type=Path,
        default=None,
        metavar="FILE",
        help="append one JSONL event per sweep-point lifecycle "
             "transition to FILE (render with repro-report)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress live per-point progress on stderr (implied "
             "when stderr is not a terminal or CI is set); the "
             "end-of-run summary still prints",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list the registered experiments and exit",
    )
    parser.add_argument(
        "--list-policies",
        action="store_true",
        help="list registered address mappings, page policies, MSU "
             "scheduling policies, traffic schedulers, and simulation "
             "engines, then exit",
    )
    parser.add_argument(
        "--engine",
        default="auto",
        choices=("event", "batch", "auto"),
        help="simulation engine for every run in the session: the "
             "discrete-event kernel, the vectorized batch fast path, "
             "or auto selection (default auto)",
    )
    parser.add_argument(
        "--list-engines",
        action="store_true",
        help="list the simulation engines, then exit",
    )
    parser.add_argument(
        "--interleaving",
        action="append",
        default=None,
        metavar="NAME",
        help="restrict the policy_matrix sweep to this registered "
             "address mapping (repeatable)",
    )
    parser.add_argument(
        "--page-policy",
        action="append",
        default=None,
        metavar="NAME",
        help="restrict the policy_matrix sweep to this registered "
             "page-management policy (repeatable)",
    )
    args = parser.parse_args(argv)
    if args.list_policies:
        from repro.sim.cli import list_policies

        sys.stdout.write(list_policies() + "\n")
        return 0
    if args.list_engines:
        from repro.sim.batch import list_engines

        sys.stdout.write(list_engines() + "\n")
        return 0
    if args.list:
        for name in list_experiments():
            sys.stdout.write(
                f"{name:14s} {get_experiment(name).description}\n"
            )
        return 0
    if args.interleaving or args.page_policy:
        from repro.experiments import policy_matrix
        from repro.sim.runner import (
            _canonical_mapping_name,
            _canonical_policy_name,
        )

        try:
            policy_matrix.configure(
                mappings=(
                    [_canonical_mapping_name(n) for n in args.interleaving]
                    if args.interleaving else None
                ),
                page_policies=(
                    [_canonical_policy_name(n) for n in args.page_policy]
                    if args.page_policy else None
                ),
            )
        except ConfigurationError as error:
            raise SystemExit(str(error)) from None
    if args.engine != "auto":
        from repro.sim.runner import set_default_engine

        set_default_engine(args.engine)
    started = time.time()
    live = (
        sys.stderr.isatty()
        and not args.quiet
        and not os.environ.get("CI")
    )
    stats = SweepStats(stream=sys.stderr if live else None)
    with execution(
        workers=args.workers, cache=args.cache, stats=stats,
        ledger=args.ledger,
    ):
        results = collect(args.experiments or EXPERIMENTS)
        for slug, table in results:
            sys.stdout.write(table.render())
            sys.stdout.write("\n")
            if args.charts and _chartable(slug):
                sys.stdout.write(rendering.render_chart(table))
                sys.stdout.write("\n")
            if args.csv_dir:
                args.csv_dir.mkdir(parents=True, exist_ok=True)
                (args.csv_dir / f"{slug}.csv").write_text(table.to_csv())
        if args.report:
            from repro.experiments.report import generate_report

            args.report.parent.mkdir(parents=True, exist_ok=True)
            args.report.write_text(generate_report())
            sys.stdout.write(f"wrote reproduction report to {args.report}\n")
    sys.stdout.write(
        f"ran {len(results)} tables in {time.time() - started:.1f}s\n"
    )
    if stats.specs > 0:
        sys.stdout.write(stats.summary() + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
