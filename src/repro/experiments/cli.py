"""Command-line entry point regenerating every table and figure.

Run ``repro-experiments`` (installed console script) or
``python -m repro.experiments.cli``.  Text renderings go to stdout;
``--csv-dir`` additionally writes one CSV per experiment.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.experiments import (
    cache_reality,
    fpm_heritage,
    l2_tradeoff,
    channel,
    doublebank,
    figure7,
    figure8,
    figure9,
    headline,
    refresh_ablation,
    tables,
    timelines,
)
from repro.experiments import rendering
from repro.experiments.rendering import ExperimentTable


def _chartable(slug: str) -> bool:
    """Sweep experiments whose columns are percentages to plot."""
    return slug.startswith(("figure7", "figure8", "figure9", "channel"))

EXPERIMENTS = (
    "figure1",
    "figure2",
    "timelines",
    "figure7",
    "figure8",
    "figure9",
    "headline",
    "channel",
    "refresh",
    "doublebank",
    "cache",
    "l2",
    "fpm",
)


def collect(names: Sequence[str]) -> List[Tuple[str, ExperimentTable]]:
    """Run the named experiments, returning (slug, table) pairs."""
    out: List[Tuple[str, ExperimentTable]] = []
    for name in names:
        if name == "figure1":
            out.append(("figure1", tables.figure1_table()))
        elif name == "figure2":
            out.append(("figure2", tables.figure2_table()))
        elif name == "timelines":
            for org in ("cli", "pi"):
                out.append((f"timeline_{org}", timelines.three_stream_timeline(org).table))
        elif name == "figure7":
            for panel in figure7.run():
                slug = f"figure7_{panel.kernel}_{panel.organization}_{panel.length}"
                out.append((slug, panel.table))
        elif name == "figure8":
            out.append(("figure8", figure8.run()))
        elif name == "figure9":
            out.append(("figure9", figure9.run()))
        elif name == "headline":
            for index, table in enumerate(headline.run()):
                out.append((f"headline_{index}", table))
        elif name == "channel":
            out.append(("channel", channel.run()))
        elif name == "refresh":
            out.append(("refresh", refresh_ablation.run()))
        elif name == "doublebank":
            out.append(("doublebank", doublebank.run()))
        elif name == "cache":
            for index, table in enumerate(cache_reality.run()):
                out.append((f"cache_{index}", table))
        elif name == "l2":
            for index, table in enumerate(l2_tradeoff.run()):
                out.append((f"l2_{index}", table))
        elif name == "fpm":
            out.append(("fpm", fpm_heritage.run()))
        else:
            raise SystemExit(f"unknown experiment {name!r}; choose from {EXPERIMENTS}")
    return out


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures."
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=list(EXPERIMENTS),
        help=f"subset to run (default: all of {', '.join(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--csv-dir",
        type=Path,
        default=None,
        help="also write one CSV per experiment into this directory",
    )
    parser.add_argument(
        "--report",
        type=Path,
        default=None,
        metavar="FILE",
        help="also write the markdown reproduction report to FILE",
    )
    parser.add_argument(
        "--charts",
        action="store_true",
        help="additionally render sweep experiments as text charts",
    )
    args = parser.parse_args(argv)
    started = time.time()
    results = collect(args.experiments or EXPERIMENTS)
    for slug, table in results:
        sys.stdout.write(table.render())
        sys.stdout.write("\n")
        if args.charts and _chartable(slug):
            sys.stdout.write(rendering.render_chart(table))
            sys.stdout.write("\n")
        if args.csv_dir:
            args.csv_dir.mkdir(parents=True, exist_ok=True)
            (args.csv_dir / f"{slug}.csv").write_text(table.to_csv())
    if args.report:
        from repro.experiments.report import generate_report

        args.report.parent.mkdir(parents=True, exist_ok=True)
        args.report.write_text(generate_report())
        sys.stdout.write(f"wrote reproduction report to {args.report}\n")
    sys.stdout.write(
        f"ran {len(results)} tables in {time.time() - started:.1f}s\n"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
