"""FPM heritage experiment: the Section 3 background claims.

"We found that an SMC significantly improves the effective memory
bandwidth, exploiting over 90% of the attainable bandwidth for
long-vector computations" — on two banks of fast-page-mode DRAM with
1 Kbyte pages.  This experiment replays that comparison on the FPM
substrate for every paper kernel and a FIFO-depth sweep.

The paper's quoted hardware speedups (2x-13x over caching, up to 23x
over natural-order non-caching accesses) include processor-side
effects (load stalls on an i860 host) that this memory-only model
excludes; the memory-level speedup it reproduces is bounded by
t_RC / t_PC ≈ 3.2x, which the SMC approaches.
"""

from __future__ import annotations

from typing import Sequence

from repro.cpu.kernels import PAPER_KERNELS, get_kernel
from repro.cpu.streams import Alignment
from repro.experiments.rendering import ExperimentTable
from repro.fpm.smc import run_fpm

DEPTHS = (8, 16, 32, 64, 128)


def run(kernels: Sequence[str] = tuple(PAPER_KERNELS)) -> ExperimentTable:
    """Regenerate the FPM SMC-vs-natural-order comparison."""
    table = ExperimentTable(
        title="FPM heritage — % of attainable bandwidth (2 banks, 1KB pages)",
        headers=(
            "kernel",
            "natural order %",
            *(f"SMC f={depth} %" for depth in DEPTHS),
            "speedup (f=64)",
        ),
    )
    for name in kernels:
        kernel = get_kernel(name)
        natural = run_fpm(
            kernel, "natural-order", length=1024, alignment=Alignment.ALIGNED
        )
        smc_results = [
            run_fpm(
                kernel, "smc", length=1024, fifo_depth=depth,
                alignment=Alignment.ALIGNED,
            )
            for depth in DEPTHS
        ]
        deep = smc_results[DEPTHS.index(64)]
        table.add_row(
            name,
            natural.percent_of_attainable,
            *(result.percent_of_attainable for result in smc_results),
            natural.total_ns / deep.total_ns,
        )
    table.notes.append(
        "Paper Section 3: the FPM SMC exploited 'over 90% of the "
        "attainable bandwidth for long-vector computations' — every "
        "SMC column at f>=32 clears 90%.  The hardware speedup quotes "
        "(2-23x) included i860 load-stall effects outside this "
        "memory-only model, whose ceiling is t_RC/t_PC = 3.17x."
    )
    return table
