"""L2-staging tradeoff experiment (conclusion future work, measured).

Compares the FIFO-based SBU against the conclusion's alternative —
"using dynamic access ordering to stream data into and out of the L2
cache" — across prefetch windows and L2 organizations, including the
conflict-thrash case the paper warns about.
"""

from __future__ import annotations

from typing import List

from repro.cache.model import CacheConfig
from repro.core.l2stream import L2StreamingController
from repro.cpu.kernels import PAPER_KERNELS, VAXPY, get_kernel
from repro.cpu.streams import Alignment
from repro.experiments.rendering import ExperimentTable
from repro.memsys.config import MemorySystemConfig
from repro.sim.runner import RunSpec, simulate

LENGTH = 1024


def run() -> List[ExperimentTable]:
    """Regenerate the two L2-tradeoff tables."""
    comparison = ExperimentTable(
        title="L2 staging vs FIFO SBU — % of peak (window/f = 8, 32)",
        headers=(
            "kernel",
            "org",
            "L2 stream (w=8)",
            "L2 stream (w=32)",
            "FIFO SMC (f=32)",
            "writebacks",
        ),
    )
    for name in PAPER_KERNELS:
        kernel = get_kernel(name)
        for org in ("cli", "pi"):
            config = getattr(MemorySystemConfig, org)()
            narrow = L2StreamingController(config, prefetch_window=8)
            narrow_result = narrow.run(kernel, length=LENGTH)
            wide = L2StreamingController(config, prefetch_window=32)
            wide_result = wide.run(kernel, length=LENGTH)
            fifo = simulate(
                RunSpec(kernel=kernel, organization=config,
                        length=LENGTH, fifo_depth=32)
            )
            comparison.add_row(
                name,
                org.upper(),
                narrow_result.percent_of_peak,
                wide_result.percent_of_peak,
                fifo.percent_of_peak,
                narrow.writebacks_streamed,
            )
    comparison.notes.append(
        "Staging in the L2 simplifies coherence (stream data is where "
        "the hierarchy expects it) but costs bandwidth: evictions "
        "trickle out as single-line writebacks, paying more bus "
        "turnarounds than the SBU's batched FIFO drains."
    )

    thrash = ExperimentTable(
        title="L2 conflict thrash — vaxpy, aligned vectors, small L2",
        headers=(
            "L2 config",
            "% of peak",
            "refetches",
        ),
    )
    config = MemorySystemConfig.cli()
    cases = (
        ("64KB 2-way (ample)", CacheConfig(64 * 1024, 2, 32)),
        ("4KB 4-way", CacheConfig(4 * 1024, 4, 32)),
        ("4KB direct-mapped", CacheConfig(4 * 1024, 1, 32)),
        ("2KB direct-mapped", CacheConfig(2 * 1024, 1, 32)),
    )
    for label, l2_config in cases:
        controller = L2StreamingController(
            config, l2_config=l2_config, prefetch_window=16
        )
        result = controller.run(
            VAXPY, length=512, alignment=Alignment.ALIGNED
        )
        thrash.add_row(label, result.percent_of_peak, controller.refetches)
    thrash.notes.append(
        "The paper's warning realized: conflicts evict prefetched "
        "lines before the processor reaches them, forcing demand "
        "refetches and collapsing bandwidth."
    )
    return [comparison, thrash]
