"""Random cacheline-access workload driver.

Section 6 explains why the paper's stream results sit below the 95 %
efficiency Crisp reports for Direct Rambus systems: "Crisp's
experiments model more random access patterns on a system with many
devices."  This driver reproduces that workload class — independent
cacheline transactions at random addresses, a bounded number
outstanding — so the channel model can be measured under it and the
comparison made quantitative (see ``repro.experiments.channel``).

Unlike the stream baseline, random transactions carry no data
dependences, so the controller issues them back-to-back as fast as the
device/channel accepts them; multi-bank and multi-device parallelism
is the only thing hiding the per-bank dead time.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Optional

from repro.errors import ConfigurationError
from repro.memsys.address import get_address_mapping
from repro.memsys.config import MemorySystemConfig
from repro.memsys.pagemanager import make_page_manager
from repro.naturalorder.controller import MAX_OUTSTANDING
from repro.rdram.channel import make_memory
from repro.rdram.packets import BusDirection
from repro.sim.results import SimulationResult


class RandomAccessDriver:
    """Issues independent random cacheline transactions.

    Args:
        config: Memory organization (geometry may be a channel).
        queue_depth: Maximum outstanding transactions; defaults to the
            device pipeline depth, scaled by the experiment if needed.
        record_trace: Record packets for auditing.
    """

    def __init__(
        self,
        config: MemorySystemConfig,
        queue_depth: int = MAX_OUTSTANDING,
        record_trace: bool = False,
    ) -> None:
        if queue_depth < 1:
            raise ConfigurationError("queue depth must be at least 1")
        self.config = config
        self.queue_depth = queue_depth
        self.page_manager = make_page_manager(config)
        self.device = make_memory(
            timing=config.timing,
            geometry=config.geometry,
            record_trace=record_trace,
            page_manager=self.page_manager,
        )
        self.address_map = get_address_mapping(config)

    def run(
        self,
        num_transactions: int,
        write_fraction: float = 0.0,
        seed: int = 1,
    ) -> SimulationResult:
        """Execute random cacheline transactions and report bandwidth.

        Args:
            num_transactions: Cacheline transactions to issue.
            write_fraction: Fraction of transactions that are writes.
            seed: PRNG seed (runs are deterministic per seed).

        Returns:
            A result whose ``percent_of_peak`` is the channel
            efficiency under this random load.
        """
        if not 0.0 <= write_fraction <= 1.0:
            raise ConfigurationError("write_fraction must be in [0, 1]")
        self.device.reset()
        rng = random.Random(seed)
        line_bytes = self.config.cacheline_bytes
        total_lines = self.config.geometry.capacity_bytes // line_bytes
        packets = self.config.packets_per_cacheline

        outstanding: Deque[int] = deque()
        last_data_end = 0
        first_data: Optional[int] = None
        conflicts = 0

        for __ in range(num_transactions):
            line = rng.randrange(total_lines)
            direction = (
                BusDirection.WRITE
                if rng.random() < write_fraction
                else BusDirection.READ
            )
            start_at = 0
            if len(outstanding) >= self.queue_depth:
                start_at = outstanding.popleft()
            for offset in range(packets):
                location = self.address_map.decompose(
                    line * line_bytes + offset * 16
                )
                outcome = self.device.issue_access(
                    location.bank,
                    location.row,
                    location.column,
                    start_at,
                    direction,
                    precharge=(
                        self.page_manager.plans_precharge
                        and offset == packets - 1
                    ),
                )
                conflicts += outcome.conflicts
                if first_data is None:
                    first_data = outcome.access.data.start
                last_data_end = outcome.access.data.end
            outstanding.append(last_data_end)

        moved = self.device.bytes_transferred
        return SimulationResult(
            kernel="random-access",
            organization=self.config.describe(),
            length=num_transactions,
            stride=1,
            fifo_depth=0,
            alignment="random",
            policy=f"random-q{self.queue_depth}",
            cycles=last_data_end,
            useful_bytes=moved,
            transferred_bytes=moved,
            startup_cycles=first_data or 0,
            packets_issued=num_transactions * packets,
            bank_conflicts=conflicts,
        )
