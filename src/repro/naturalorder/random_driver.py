"""Random cacheline-access workload driver.

Section 6 explains why the paper's stream results sit below the 95 %
efficiency Crisp reports for Direct Rambus systems: "Crisp's
experiments model more random access patterns on a system with many
devices."  This driver reproduces that workload class — independent
cacheline transactions at random addresses, a bounded number
outstanding — so the channel model can be measured under it and the
comparison made quantitative (see ``repro.experiments.channel``).

Unlike the stream baseline, random transactions carry no data
dependences, so the controller issues them back-to-back as fast as the
device/channel accepts them; multi-bank and multi-device parallelism
is the only thing hiding the per-bank dead time.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Iterator, List

from repro.errors import ConfigurationError
from repro.memsys.address import get_address_mapping
from repro.memsys.config import MemorySystemConfig
from repro.memsys.pagemanager import make_page_manager
from repro.naturalorder.controller import MAX_OUTSTANDING
from repro.rdram.channel import make_memory
from repro.rdram.packets import BusDirection
from repro.rdram.refresh import RefreshEngine
from repro.sim.batch import lean_run, resolve_controller_engine
from repro.sim.kernel import (
    BackgroundComponent,
    Component,
    ResultBuilder,
    Simulation,
    TransactionPump,
)
from repro.sim.results import SimulationResult


class RandomAccessDriver:
    """Issues independent random cacheline transactions.

    Args:
        config: Memory organization (geometry may be a channel).
        queue_depth: Maximum outstanding transactions; defaults to the
            device pipeline depth, scaled by the experiment if needed.
        record_trace: Record packets for auditing.
        refresh: Run a background refresh engine alongside the
            transaction stream.
    """

    def __init__(
        self,
        config: MemorySystemConfig,
        queue_depth: int = MAX_OUTSTANDING,
        record_trace: bool = False,
        refresh: bool = False,
    ) -> None:
        if queue_depth < 1:
            raise ConfigurationError("queue depth must be at least 1")
        self.config = config
        self.queue_depth = queue_depth
        self.page_manager = make_page_manager(config)
        self.device = make_memory(
            timing=config.timing,
            geometry=config.geometry,
            record_trace=record_trace,
            page_manager=self.page_manager,
        )
        self.address_map = get_address_mapping(config)
        self.device.mapping = self.address_map
        self.refresh = refresh
        self.refreshes_issued = 0

    def run(
        self,
        num_transactions: int,
        write_fraction: float = 0.0,
        seed: int = 1,
        dense: bool = False,
        engine: str = "auto",
    ) -> SimulationResult:
        """Execute random cacheline transactions and report bandwidth.

        Args:
            num_transactions: Cacheline transactions to issue.
            write_fraction: Fraction of transactions that are writes.
            seed: PRNG seed (runs are deterministic per seed).
            dense: Visit every cycle in the simulation kernel instead
                of skipping to the next transaction start.
            engine: ``"event"``, ``"batch"``, or ``"auto"`` (see
                :func:`repro.sim.batch.resolve_controller_engine`).

        Returns:
            A result whose ``percent_of_peak`` is the channel
            efficiency under this random load.
        """
        if not 0.0 <= write_fraction <= 1.0:
            raise ConfigurationError("write_fraction must be in [0, 1]")
        self.device.reset()
        self.refreshes_issued = 0
        builder = ResultBuilder(
            kernel="random-access",
            organization=self.config.describe(),
            length=num_transactions,
            stride=1,
            fifo_depth=0,
            alignment="random",
            policy=f"random-q{self.queue_depth}",
        )
        resolved = resolve_controller_engine(engine, dense=dense)
        components: List[Component] = []
        if self.refresh:
            refresh_engine = RefreshEngine(self.device)
            components.append(BackgroundComponent(refresh_engine))
        pump = TransactionPump(
            self._transaction_steps(
                num_transactions, write_fraction, seed, builder
            )
        )
        components.append(pump)
        max_cycles = 20_000 + 500 * max(num_transactions, 1)
        label = f"random-q{self.queue_depth}: org={self.config.describe()}"
        if resolved == "batch":
            lean_run(
                components,
                done=lambda: pump.done,
                max_cycles=max_cycles,
                label=label,
            )
        else:
            Simulation(
                components,
                done=lambda sim: pump.done,
                max_cycles=max_cycles,
                label=label,
                dense=dense,
            ).run()
        if self.refresh:
            self.refreshes_issued = refresh_engine.refreshes_issued

        moved = self.device.bytes_transferred
        return builder.build(
            cycles=builder.last_data_end,
            useful_bytes=moved,
            transferred_bytes=moved,
            packets_issued=(
                num_transactions * self.config.packets_per_cacheline
            ),
            refreshes=self.refreshes_issued,
        )

    def _transaction_steps(
        self,
        num_transactions: int,
        write_fraction: float,
        seed: int,
        builder: ResultBuilder,
    ) -> Iterator[int]:
        """Generate the random transaction stream.

        PRNG draws happen between yields in the exact order the
        original loop made them (line, then direction, per
        transaction), so results are reproducible per seed regardless
        of how the kernel paces the pump.
        """
        rng = random.Random(seed)
        line_bytes = self.config.cacheline_bytes
        total_lines = self.config.geometry.capacity_bytes // line_bytes
        packets = self.config.packets_per_cacheline
        outstanding: Deque[int] = deque()

        for __ in range(num_transactions):
            line = rng.randrange(total_lines)
            direction = (
                BusDirection.WRITE
                if rng.random() < write_fraction
                else BusDirection.READ
            )
            start_at = 0
            if len(outstanding) >= self.queue_depth:
                start_at = outstanding.popleft()
            yield start_at
            data_end = 0
            for offset in range(packets):
                location = self.address_map.decompose(
                    line * line_bytes + offset * 16
                )
                outcome = self.device.issue_access(
                    location.bank,
                    location.row,
                    location.column,
                    start_at,
                    direction,
                    precharge=(
                        self.page_manager.plans_precharge
                        and offset == packets - 1
                    ),
                )
                builder.bank_conflicts += outcome.conflicts
                builder.note_first_data(outcome.access.data.start)
                data_end = outcome.access.data.end
            builder.transactions += 1
            builder.note_data_end(data_end)
            outstanding.append(data_end)
