"""Baseline: traditional natural-order cacheline memory controller."""

from repro.naturalorder.controller import MAX_OUTSTANDING, NaturalOrderController
from repro.naturalorder.random_driver import RandomAccessDriver

__all__ = ["MAX_OUTSTANDING", "NaturalOrderController", "RandomAccessDriver"]
