"""Traditional memory controller: cacheline accesses in program order.

This simulates the paper's baseline — "cacheline accesses in the
natural order of the computation" — against the same RDRAM device
model the SMC uses, giving an independent check on the Section 5.1
analytic bounds.

The model follows Figure 5's conventions:

* The processor walks the kernel's accesses element by element; the
  first touch of each cacheline generates one line-granularity
  transaction (a fill for loads, a full-line write for stores —
  dirty-writeback traffic is ignored, Section 5.1).
* Transactions issue strictly in program order, pipelined across the
  device's banks: the controller may begin a transaction's commands as
  soon as the previous transaction's first command went out, and the
  device model enforces t_RR spacing, bus occupancy and bank timing.
* Linefill forwarding (as in the PowerPC the paper cites): a dependent
  store may be initiated as soon as the first DATA packet of its
  iteration's last load arrives — t_RAC after the load's ROW request
  on a closed-page system.
* At most four transactions are outstanding, matching the Direct
  RDRAM's pipeline depth.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, List, Optional, Tuple

from repro.cpu.kernels import Kernel
from repro.cpu.streams import (
    Alignment,
    Direction,
    StreamDescriptor,
    place_streams,
)
from repro.memsys.address import get_address_mapping
from repro.memsys.config import ELEMENT_BYTES, MemorySystemConfig
from repro.memsys.pagemanager import make_page_manager
from repro.obs.core import Instrumentation
from repro.obs.telemetry import finalize_telemetry
from repro.rdram.channel import make_memory
from repro.rdram.packets import BusDirection
from repro.rdram.refresh import RefreshEngine
from repro.sim.batch import lean_run, resolve_controller_engine
from repro.sim.kernel import (
    BackgroundComponent,
    Component,
    ResultBuilder,
    Simulation,
    TransactionPump,
)
from repro.sim.results import SimulationResult

#: The Direct RDRAM's pipelined microarchitecture "supports up to four
#: outstanding requests" (Section 2.2).
MAX_OUTSTANDING = 4


class NaturalOrderController:
    """Blocking-order cacheline controller over one RDRAM device.

    Args:
        config: Memory organization; CLI pairs with the closed-page
            policy and PI with open-page, as in the paper, but any
            pairing given in the config is honored.
        record_trace: Record the device packet trace for auditing.
        refresh: Run a background :class:`RefreshEngine` alongside the
            transaction stream (the paper ignores refresh; this
            quantifies that assumption for the baseline too).
    """

    #: Result ``policy`` name reported by this controller.
    POLICY = "natural-order"

    def __init__(
        self,
        config: MemorySystemConfig,
        record_trace: bool = False,
        refresh: bool = False,
    ) -> None:
        self.config = config
        self.page_manager = make_page_manager(config)
        self.device = make_memory(
            timing=config.timing,
            geometry=config.geometry,
            record_trace=record_trace,
            page_manager=self.page_manager,
        )
        self.address_map = get_address_mapping(config)
        self.device.mapping = self.address_map
        self.refresh = refresh
        self.refreshes_issued = 0

    def _simulate(
        self,
        steps: Iterator[int],
        *,
        max_steps: int,
        label: str,
        dense: bool,
        obs: Optional[Instrumentation] = None,
        engine: str = "auto",
    ) -> None:
        """Drive ``steps`` through the shared simulation kernel.

        One kernel run per controller run: an optional background
        refresh engine plus a :class:`TransactionPump` resuming the
        controller's transaction generator at each start cycle.  With
        ``engine="batch"`` (or ``"auto"`` when neither instrumentation
        nor dense mode is requested) the same components run on the
        heapless :func:`repro.sim.batch.lean_run` loop instead.
        """
        resolved = resolve_controller_engine(
            engine, instrumented=obs is not None, dense=dense
        )
        self.refreshes_issued = 0
        components: List[Component] = []
        if self.refresh:
            refresh_engine = RefreshEngine(self.device)
            components.append(BackgroundComponent(refresh_engine))
        pump = TransactionPump(
            steps,
            on_attach_obs=lambda o: setattr(self.device, "obs", o),
        )
        components.append(pump)
        max_cycles = 20_000 + 500 * max(max_steps, 1)
        if resolved == "batch":
            lean_run(
                components,
                done=lambda: pump.done,
                max_cycles=max_cycles,
                label=label,
            )
        else:
            Simulation(
                components,
                done=lambda sim: pump.done,
                max_cycles=max_cycles,
                label=label,
                dense=dense,
                obs=obs,
            ).run()
        if self.refresh:
            self.refreshes_issued = refresh_engine.refreshes_issued

    def run(
        self,
        kernel: Kernel,
        length: int,
        stride: int = 1,
        alignment: Alignment = Alignment.STAGGERED,
        descriptors: Optional[List[StreamDescriptor]] = None,
        obs: Optional[Instrumentation] = None,
        dense: bool = False,
        engine: str = "auto",
    ) -> SimulationResult:
        """Execute one kernel and report effective bandwidth.

        Args:
            kernel: The inner loop.
            length: Vector length in elements.
            stride: Stride in elements.
            alignment: Vector base placement.
            descriptors: Pre-placed streams overriding placement.
            obs: Optional instrumentation; records one "controller"
                span per cacheline transaction plus the device-level
                gaps and counters (see :mod:`repro.obs`).
            dense: Visit every cycle in the simulation kernel instead
                of skipping to the next transaction start (the
                property tests assert both modes agree).
            engine: ``"event"``, ``"batch"``, or ``"auto"`` (see
                :func:`repro.sim.batch.resolve_controller_engine`).

        Returns:
            The result; ``useful_bytes`` counts stream elements only,
            so sparse strides show the paper's bandwidth collapse even
            though whole lines move on the bus.
        """
        self.device.reset()
        if descriptors is None:
            descriptors = place_streams(
                kernel.streams,
                self.config,
                length=length,
                stride=stride,
                alignment=alignment,
            )
        builder = ResultBuilder(
            kernel=kernel.name,
            organization=self.config.describe(),
            length=length,
            stride=stride,
            fifo_depth=0,
            alignment=alignment.value,
            policy=self.POLICY,
        )
        self._simulate(
            self._transaction_steps(length, descriptors, builder, obs),
            max_steps=length * len(descriptors),
            label=f"{self.POLICY}: kernel={kernel.name}, "
            f"org={self.config.describe()}",
            dense=dense,
            obs=obs,
            engine=engine,
        )

        useful = len(descriptors) * length * ELEMENT_BYTES
        last_data_end = builder.last_data_end
        if obs is not None:
            self.device.finish_observation(last_data_end)
            obs.meta.update(
                kernel=kernel.name,
                organization=self.config.describe(),
                policy=self.POLICY,
                cycles=last_data_end,
                last_data_end=last_data_end,
                t_pack=self.config.timing.t_pack,
                t_rw=self.config.timing.t_rw,
                useful_bytes=useful,
                transferred_bytes=self.device.bytes_transferred,
            )
            finalize_telemetry(obs)
            self.device.obs = None
        return builder.build(
            cycles=last_data_end,
            useful_bytes=useful,
            transferred_bytes=self.device.bytes_transferred,
            packets_issued=(
                builder.transactions * self.config.packets_per_cacheline
            ),
            refreshes=self.refreshes_issued,
        )

    def _transaction_steps(
        self,
        length: int,
        descriptors: List[StreamDescriptor],
        builder: ResultBuilder,
        obs: Optional[Instrumentation],
    ) -> Iterator[int]:
        """Generate the program-order cacheline transactions.

        Yields each transaction's start lower bound; the kernel's
        :class:`TransactionPump` resumes the generator once the clock
        reaches it, and the issue happens here at the stored bound.
        """
        line_bytes = self.config.cacheline_bytes
        current_line: Dict[str, Optional[int]] = {
            d.name: None for d in descriptors
        }
        # First-data arrival time of each read stream's current line,
        # for the store dependence (linefill forwarding).
        line_first_data: Dict[str, int] = {d.name: 0 for d in descriptors}
        outstanding: Deque[int] = deque()
        program_clock = 0

        for index in range(length):
            for descriptor in descriptors:
                address = descriptor.element_address(index)
                line = address // line_bytes
                if line == current_line[descriptor.name]:
                    continue
                current_line[descriptor.name] = line
                start_at = program_clock
                if descriptor.direction is Direction.WRITE:
                    dependence = max(
                        (
                            line_first_data[d.name]
                            for d in descriptors
                            if d.direction is Direction.READ
                        ),
                        default=0,
                    )
                    start_at = max(start_at, dependence)
                if len(outstanding) >= MAX_OUTSTANDING:
                    start_at = max(start_at, outstanding.popleft())
                yield start_at
                (first_cmd, first_arrival, data_end, had_conflict,
                 hits, misses) = self._issue_line(
                    line * line_bytes, descriptor.direction, start_at
                )
                builder.transactions += 1
                builder.bank_conflicts += int(had_conflict)
                builder.page_hits += hits
                builder.page_misses += misses
                if obs is not None:
                    obs.counters.incr("controller.transactions")
                    if had_conflict:
                        obs.counters.incr("controller.conflicts")
                    obs.tracer.add_span(
                        "controller",
                        ("RD " if descriptor.direction is Direction.READ
                         else "WR ") + descriptor.name,
                        first_cmd,
                        data_end,
                        line=line,
                    )
                program_clock = max(program_clock, first_cmd)
                builder.note_data_end(data_end)
                if descriptor.direction is Direction.READ:
                    line_first_data[descriptor.name] = first_arrival
                    builder.note_first_data(first_arrival)
                outstanding.append(data_end)

    def _issue_line(
        self,
        line_address: int,
        direction: Direction,
        start_at: int,
    ) -> Tuple[int, int, int, bool, int, int]:
        """Issue one full-cacheline transaction.

        Each packet routes through the device's shared access path
        (:func:`repro.rdram.device.perform_access`), which owns the
        open/conflict decision and consults the page manager; the
        plan-time precharge flag goes on the last packet of the line
        when the manager plants precharges (the closed-page policy).

        Returns:
            (first command start, first DATA packet start, last DATA
            packet end, whether a bank conflict forced a precharge,
            page hits, page misses).
        """
        packets = self.config.packets_per_cacheline
        bus_dir = (
            BusDirection.READ
            if direction is Direction.READ
            else BusDirection.WRITE
        )
        first_cmd: Optional[int] = None
        first_arrival = 0
        data_end = 0
        had_conflict = False
        hits = 0
        misses = 0
        for offset in range(packets):
            location = self.address_map.decompose(line_address + offset * 16)
            precharge = (
                self.page_manager.plans_precharge and offset == packets - 1
            )
            outcome = self.device.issue_access(
                location.bank,
                location.row,
                location.column,
                start_at,
                bus_dir,
                precharge=precharge,
            )
            had_conflict = had_conflict or outcome.conflicts > 0
            if outcome.page_hit:
                hits += 1
            else:
                misses += 1
            if first_cmd is None:
                first_cmd = outcome.first_cmd
            if offset == 0:
                first_arrival = outcome.access.data.start
            data_end = outcome.access.data.end
        assert first_cmd is not None
        return first_cmd, first_arrival, data_end, had_conflict, hits, misses
