"""Indexed (gather/scatter) streams through the SMC.

The paper's related work points at the Impulse memory controller,
which "dynamically remaps physical memory to support scatter/gather
operations to sparse or non-contiguous data structures", and notes
"Our dynamic access ordering approach can be adapted to further
improve bandwidth utilization between the Impulse controller and main
memory."  This module is that adaptation: a stream whose element
addresses come from an explicit index vector instead of an affine
stride, run through the unmodified SBU/MSU/device stack.

Because the MSU's access planning works from element addresses, the
entire machinery — packet merging, page-run detection, closed-page
precharge flags, bank accounting — applies to gathers unchanged, and
the experiments show exactly the paper's thesis transplanted to
irregular access: *order determines bandwidth*.  A gather over a
sorted index vector enjoys page locality; the same gather with a
shuffled index vector pays a row activation per element.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.errors import StreamError
from repro.core.msu import MemorySchedulingUnit
from repro.core.policies import RoundRobinPolicy, SchedulingPolicy
from repro.core.sbu import StreamBufferUnit
from repro.core.smc import SmcSystem
from repro.cpu.kernels import Kernel
from repro.cpu.processor import MATCHED_ACCESS_INTERVAL, StreamProcessor
from repro.cpu.streams import Direction, StreamSpec
from repro.memsys.config import ELEMENT_BYTES, MemorySystemConfig
from repro.rdram.channel import make_memory
from repro.sim.results import SimulationResult


@dataclass(frozen=True)
class IndexedStreamDescriptor:
    """A stream addressed through an explicit index vector.

    Duck-compatible with
    :class:`~repro.cpu.streams.StreamDescriptor` everywhere the SMC
    needs one; ``stride`` reports 0 to mark the access pattern as
    indexed.

    Attributes:
        name: Stream name.
        base: Byte address of the underlying vector's element 0.
        indices: Element index touched on each iteration.
        direction: READ (gather) or WRITE (scatter).
    """

    name: str
    base: int
    indices: Tuple[int, ...]
    direction: Direction

    def __post_init__(self) -> None:
        if self.base % ELEMENT_BYTES:
            raise StreamError(
                f"stream {self.name}: base {self.base:#x} not aligned to "
                f"{ELEMENT_BYTES}-byte elements"
            )
        if not self.indices:
            raise StreamError(f"stream {self.name}: empty index vector")
        if any(index < 0 for index in self.indices):
            raise StreamError(f"stream {self.name}: negative index")

    @property
    def length(self) -> int:
        return len(self.indices)

    @property
    def stride(self) -> int:
        """Reported stride; 0 flags an indexed access pattern."""
        return 0

    @property
    def is_read(self) -> bool:
        return self.direction is Direction.READ

    @property
    def footprint_bytes(self) -> int:
        return (max(self.indices) + 1) * ELEMENT_BYTES

    def element_address(self, position: int) -> int:
        if not 0 <= position < len(self.indices):
            raise StreamError(
                f"stream {self.name}: position {position} outside "
                f"0..{len(self.indices) - 1}"
            )
        return self.base + self.indices[position] * ELEMENT_BYTES


def build_gather_system(
    descriptors: Sequence[object],
    config: MemorySystemConfig,
    fifo_depth: int,
    policy: Optional[SchedulingPolicy] = None,
    access_interval: int = MATCHED_ACCESS_INTERVAL,
    record_trace: bool = False,
    name: str = "gather",
) -> SmcSystem:
    """Wire indexed and/or dense streams into an SMC system.

    All descriptors must have equal length (the processor touches one
    element of each per iteration, as in the paper's loop model).

    Args:
        descriptors: Placed stream descriptors, indexed or dense, in
            access order.
        config: Memory organization.
        fifo_depth: FIFO depth in elements.
        policy: MSU policy (paper round-robin by default).
        access_interval: CPU pacing (2 = matched bandwidth).
        record_trace: Record packets for auditing.
        name: Kernel name for reports.

    Returns:
        A system ready for :func:`repro.sim.engine.run_smc`.
    """
    descriptors = list(descriptors)
    if not descriptors:
        raise StreamError("gather system needs at least one stream")
    lengths = {d.length for d in descriptors}
    if len(lengths) != 1:
        raise StreamError(
            f"streams must have equal length, got {sorted(lengths)}"
        )
    length = lengths.pop()
    kernel = Kernel(
        name=name,
        expression="indexed gather/scatter",
        streams=tuple(
            StreamSpec(name=d.name, vector=d.name, direction=d.direction)
            for d in descriptors
        ),
    )
    device = make_memory(
        timing=config.timing,
        geometry=config.geometry,
        record_trace=record_trace,
    )
    sbu = StreamBufferUnit.from_descriptors(descriptors, config, fifo_depth)
    msu = MemorySchedulingUnit(device, sbu, policy or RoundRobinPolicy())
    processor = StreamProcessor(kernel, length, access_interval=access_interval)
    return SmcSystem(
        kernel=kernel,
        config=config,
        descriptors=descriptors,
        device=device,
        sbu=sbu,
        msu=msu,
        processor=processor,
    )


def simulate_gather(
    indices: Sequence[int],
    organization: MemorySystemConfig,
    fifo_depth: int = 64,
    vector_base: int = 0,
    output_base: Optional[int] = None,
    policy: Optional[SchedulingPolicy] = None,
    record_trace: bool = False,
) -> SimulationResult:
    """Simulate ``y[i] = x[indices[i]]`` — a gather into a dense vector.

    Args:
        indices: Element indices into the source vector x.
        organization: Memory organization.
        fifo_depth: FIFO depth in elements.
        vector_base: Byte address of x.
        output_base: Byte address of y; defaults to a bank-rotation-
            aligned region past x's footprint.
        policy: MSU policy.
        record_trace: Record packets for auditing.

    Returns:
        The simulation result.
    """
    from repro.cpu.streams import StreamDescriptor
    from repro.sim.engine import run_smc

    gather = IndexedStreamDescriptor(
        name="x.gather",
        base=vector_base,
        indices=tuple(indices),
        direction=Direction.READ,
    )
    if output_base is None:
        rotation = (
            organization.geometry.num_banks * organization.geometry.page_bytes
        )
        past = vector_base + gather.footprint_bytes
        output_base = -(-past // rotation) * rotation
    dense = StreamDescriptor(
        name="y",
        base=output_base,
        stride=1,
        length=len(indices),
        direction=Direction.WRITE,
    )
    system = build_gather_system(
        [gather, dense],
        organization,
        fifo_depth=fifo_depth,
        policy=policy,
        record_trace=record_trace,
    )
    return run_smc(system, audit=record_trace)
