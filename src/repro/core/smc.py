"""Stream Memory Controller assembly.

Wires a kernel, a memory-system configuration and the SMC parameters
(FIFO depth, scheduling policy, data placement) into the component
graph of Figure 3: CPU -> SBU (FIFOs) -> MSU -> Direct RDRAM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cpu.kernels import Kernel
from repro.cpu.processor import MATCHED_ACCESS_INTERVAL, StreamProcessor
from repro.cpu.streams import Alignment, StreamDescriptor, place_streams
from repro.core.msu import MemorySchedulingUnit
from repro.core.policies import RoundRobinPolicy, SchedulingPolicy
from repro.core.sbu import StreamBufferUnit
from repro.memsys.address import AddressMapping, get_address_mapping
from repro.memsys.config import MemorySystemConfig
from repro.memsys.pagemanager import make_page_manager
from repro.rdram.channel import make_memory
from repro.rdram.device import RdramDevice
from repro.rdram.fabric import FabricRefreshEngine, MemoryFabric
from repro.rdram.refresh import RefreshEngine


@dataclass
class SmcSystem:
    """A fully wired SMC simulation instance.

    Attributes:
        kernel: The inner loop being executed.
        config: Memory-system configuration.
        descriptors: Placed streams, in kernel order.
        device: The Direct RDRAM device model.
        sbu: Stream buffer unit (FIFOs).
        msu: Memory scheduling unit.
        processor: Natural-order element access generator.
        address_map: The address mapping the access plans were built
            with (shared, possibly a registry override).
    """

    kernel: Kernel
    config: MemorySystemConfig
    descriptors: List[StreamDescriptor]
    device: RdramDevice
    sbu: StreamBufferUnit
    msu: MemorySchedulingUnit
    processor: StreamProcessor
    refresh: Optional[RefreshEngine] = None
    address_map: Optional[AddressMapping] = None


def build_smc_system(
    kernel: Kernel,
    config: MemorySystemConfig,
    length: int,
    fifo_depth: int,
    stride: int = 1,
    alignment: Alignment = Alignment.STAGGERED,
    policy: Optional[SchedulingPolicy] = None,
    access_interval: int = MATCHED_ACCESS_INTERVAL,
    record_trace: bool = False,
    descriptors: Optional[Sequence[StreamDescriptor]] = None,
    refresh: bool = False,
) -> SmcSystem:
    """Build an SMC system ready for :func:`repro.sim.engine.run_smc`.

    Args:
        kernel: Inner loop to execute.
        config: Memory organization (CLI/PI, page policy, sizes).
        length: Vector length in elements (the paper's L_s).
        fifo_depth: FIFO depth in elements (the paper's f).
        stride: Stream stride in elements.
        alignment: ALIGNED (maximal bank conflicts) or STAGGERED
            placement of vector base addresses.
        policy: MSU scheduling policy; defaults to the paper's
            round-robin.
        access_interval: CPU pacing in cycles per element; 2 matches
            bandwidths as the paper assumes.
        record_trace: Record the full packet trace on the device (for
            auditing/timelines; slows long runs).
        descriptors: Pre-placed streams, overriding automatic
            placement (must match the kernel's stream order).
        refresh: Attach a background :class:`RefreshEngine` (the paper
            ignores refresh; this quantifies that assumption).

    Returns:
        The wired system.
    """
    if descriptors is None:
        placed = place_streams(
            kernel.streams,
            config,
            length=length,
            stride=stride,
            alignment=alignment,
        )
    else:
        placed = list(descriptors)
    page_manager = make_page_manager(config)
    address_map = get_address_mapping(config)
    device = make_memory(
        timing=config.timing,
        geometry=config.geometry,
        record_trace=record_trace,
        page_manager=(
            None if config.topology.channels > 1 else page_manager
        ),
        topology=config.topology if not config.topology.single else None,
        page_manager_factory=lambda: make_page_manager(config),
    )
    device.mapping = address_map
    sbu = StreamBufferUnit.from_descriptors(
        placed,
        config,
        fifo_depth,
        page_manager=page_manager,
        address_map=address_map,
    )
    msu = MemorySchedulingUnit(device, sbu, policy or RoundRobinPolicy())
    processor = StreamProcessor(kernel, length, access_interval=access_interval)
    refresh_engine = None
    if refresh:
        refresh_engine = (
            FabricRefreshEngine(device)
            if isinstance(device, MemoryFabric)
            else RefreshEngine(device)
        )
    return SmcSystem(
        kernel=kernel,
        config=config,
        descriptors=placed,
        device=device,
        sbu=sbu,
        msu=msu,
        processor=processor,
        refresh=refresh_engine,
        address_map=address_map,
    )
