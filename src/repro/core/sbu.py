"""Stream Buffer Unit: the SMC's bank of per-stream FIFOs.

"To avoid polluting the cache, we provide a separate Stream Buffer
Unit (SBU) for stream elements; all stream data — and only stream
data — use these buffers.  From the processor's point of view, each
buffer is a FIFO ... the head of which is a memory-mapped register."
(Section 3.)

The SBU implements the :class:`~repro.cpu.processor.StreamPort`
protocol for the processor side and gives the MSU indexed access to
the same FIFOs on the memory side.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.errors import StreamError
from repro.cpu.streams import StreamDescriptor
from repro.core.fifo import StreamFifo, build_access_units
from repro.memsys.address import AddressMapping, get_address_mapping
from repro.memsys.config import MemorySystemConfig
from repro.memsys.pagemanager import PageManager, make_page_manager
from repro.obs.core import Instrumentation


class StreamBufferUnit:
    """The SMC's FIFO array.

    Args:
        fifos: One FIFO per stream, in kernel access order (the MSU's
            round-robin tour follows this order).
    """

    def __init__(self, fifos: Sequence[StreamFifo]) -> None:
        if not fifos:
            raise StreamError("SBU needs at least one FIFO")
        names = [f.descriptor.name for f in fifos]
        if len(set(names)) != len(names):
            raise StreamError(f"duplicate stream names in SBU: {names}")
        self.fifos: List[StreamFifo] = list(fifos)

    @classmethod
    def from_descriptors(
        cls,
        descriptors: Sequence[StreamDescriptor],
        config: MemorySystemConfig,
        fifo_depth: int,
        page_manager: Optional[PageManager] = None,
        address_map: Optional[AddressMapping] = None,
    ) -> "StreamBufferUnit":
        """Build FIFOs and access plans for placed streams.

        ``page_manager`` and ``address_map`` let the caller share one
        instance of each between the access plans and the memory model
        (as :func:`~repro.core.smc.build_smc_system` does); by default
        fresh ones are made from the config's registry names.
        """
        if address_map is None:
            address_map = get_address_mapping(config)
        manager = (
            page_manager if page_manager is not None
            else make_page_manager(config)
        )
        fifos = [
            StreamFifo(
                descriptor=descriptor,
                depth=fifo_depth,
                units=build_access_units(descriptor, address_map, manager),
            )
            for descriptor in descriptors
        ]
        return cls(fifos)

    def __len__(self) -> int:
        return len(self.fifos)

    def __iter__(self) -> Iterator[StreamFifo]:
        return iter(self.fifos)

    def __getitem__(self, index: int) -> StreamFifo:
        return self.fifos[index]

    @property
    def all_drained(self) -> bool:
        """True once every FIFO has finished its stream completely."""
        return all(fifo.fully_drained for fifo in self.fifos)

    def attach_obs(self, obs: Optional[Instrumentation]) -> None:
        """Point every FIFO's occupancy-gauge hook at ``obs``."""
        for fifo in self.fifos:
            fifo.obs = obs

    # ------------------------------------------------------------------
    # StreamPort protocol (processor side)

    def cpu_can_pop(self, stream_index: int) -> bool:
        return self.fifos[stream_index].cpu_can_pop()

    def cpu_pop(self, stream_index: int) -> None:
        self.fifos[stream_index].cpu_pop()

    def cpu_can_push(self, stream_index: int) -> bool:
        return self.fifos[stream_index].cpu_can_push()

    def cpu_push(self, stream_index: int) -> None:
        self.fifos[stream_index].cpu_push()
