"""The paper's contribution: the Stream Memory Controller (SMC)."""

from repro.core.fifo import AccessUnit, StreamFifo, build_access_units
from repro.core.gather import (
    IndexedStreamDescriptor,
    build_gather_system,
    simulate_gather,
)
from repro.core.l2stream import L2StreamingController
from repro.core.msu import ArrivalEvent, MemorySchedulingUnit
from repro.core.policies import (
    POLICIES,
    BankAwarePolicy,
    RoundRobinPolicy,
    SchedulingPolicy,
    SpeculativePrechargePolicy,
)
from repro.core.sbu import StreamBufferUnit
from repro.core.smc import SmcSystem, build_smc_system

__all__ = [
    "AccessUnit",
    "StreamFifo",
    "build_access_units",
    "IndexedStreamDescriptor",
    "build_gather_system",
    "simulate_gather",
    "L2StreamingController",
    "ArrivalEvent",
    "MemorySchedulingUnit",
    "POLICIES",
    "BankAwarePolicy",
    "RoundRobinPolicy",
    "SchedulingPolicy",
    "SpeculativePrechargePolicy",
    "StreamBufferUnit",
    "SmcSystem",
    "build_smc_system",
]
