"""MSU scheduling policies.

The paper's MSU "considers each FIFO in turn, performing as many
accesses as possible for the current FIFO before moving on.  This
simple round-robin scheduling strategy represents a reasonable
compromise between design complexity and performance, but it prevents
the MSU from fully exploiting the independent banks of the RDRAM when
a FIFO is ready for a data transfer but the associated memory bank is
busy."  (Section 4.2.)

Three policies are provided:

* :class:`RoundRobinPolicy` — the paper's policy, including its
  wait-on-busy-bank deficiency.
* :class:`BankAwarePolicy` — the more sophisticated scheduler the
  paper attributes to Hong's thesis: when the current FIFO's bank is
  busy, service another serviceable FIFO whose bank is ready.
* :class:`SpeculativePrechargePolicy` — the Section 6 suggestion: "a
  scheduling policy that speculatively precharges a page and issues a
  ROW ACT command before the stream crosses the page boundary would
  mitigate some of these costs".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.fifo import AccessUnit
from repro.core.sbu import StreamBufferUnit
from repro.rdram.device import RdramDevice, ScheduledAccess
from repro.rdram.timing import RdramTiming

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.msu import MemorySchedulingUnit


class SchedulingPolicy:
    """Base policy: FIFO selection, decision pacing, speculation hook."""

    #: Registry name used by configuration and the experiment CLI.
    name = "base"

    def choose(
        self,
        cycle: int,
        sbu: StreamBufferUnit,
        current: int,
        device: RdramDevice,
    ) -> Optional[int]:
        """Pick the FIFO to issue the next access for, or None to idle."""
        raise NotImplementedError

    def pace(
        self, access: ScheduledAccess, cycle: int, timing: RdramTiming
    ) -> int:
        """Cycle at which the MSU makes its next decision.

        The default lets the controller prepare its next access up to
        t_RCD cycles before the previous COL packet goes out — enough
        command pipelining for the next cacheline's ROW ACT to overlap
        the current line's data transfer (Figure 5 shows ACT packets
        paced by t_RR while data flows), and consistent with the
        Direct RDRAM's four outstanding requests.  When the just-issued
        access was pushed far into the future by a busy bank, the next
        decision is deferred with it: the MSU waits on the current
        FIFO's bank, which is the paper's stated round-robin
        deficiency.
        """
        return max(cycle + 1, access.col.start - timing.t_rcd)

    def speculate(
        self,
        msu: "MemorySchedulingUnit",
        cycle: int,
        fifo_index: int,
        unit: AccessUnit,
    ) -> None:
        """Optional hook run after each issued access."""

    @staticmethod
    def _scan_order(current: int, count: int) -> range:
        """Indices in round-robin order starting at ``current``."""
        return range(current, current + count)

    @staticmethod
    def bank_ready(
        device: RdramDevice,
        unit: AccessUnit,
        cycle: int,
        slack: int,
    ) -> bool:
        """True if issuing ``unit`` now would not wait on its bank.

        A bank is ready when the needed row is already open and a COL
        packet could start within ``slack`` cycles, or the bank is
        closed and an ACT could start within ``slack`` cycles.  A bank
        holding a different open row is never "ready" — it needs a
        precharge/activate pair first.
        """
        # A runtime page manager may owe this bank a precharge;
        # materialize it before reading the open-row state.
        device.sync_bank(unit.location.bank, cycle)
        bank = device.bank(unit.location.bank)
        if bank.open_row == unit.location.row:
            return bank.earliest_col(cycle, unit.location.row) <= cycle + slack
        if not bank.is_open:
            return bank.earliest_act(cycle) <= cycle + slack
        return False


class RoundRobinPolicy(SchedulingPolicy):
    """The paper's MSU: stay on the current FIFO while it can accept
    accesses, then advance to the next serviceable FIFO in order."""

    name = "round-robin"

    def choose(
        self,
        cycle: int,
        sbu: StreamBufferUnit,
        current: int,
        device: RdramDevice,
    ) -> Optional[int]:
        count = len(sbu)
        for offset in self._scan_order(current, count):
            index = offset % count
            if sbu[index].serviceable:
                return index
        return None


class BankAwarePolicy(SchedulingPolicy):
    """Service the FIFO whose bank can deliver data soonest.

    The paper's round-robin MSU waits whenever the current FIFO's bank
    is busy; Hong's thesis policy avoids those waits.  At each decision
    this policy estimates, for every serviceable FIFO, the earliest
    cycle its next COL packet could go out — a page hit costs only the
    column timing, a closed bank adds the activate, and a bank holding
    the wrong row adds a full precharge/activate turnaround — and
    services the minimum.  The current FIFO is kept while its estimate
    is within ``slack`` cycles (hysteresis, so committed row bursts are
    not abandoned; defaults to t_RCD), and ties go to round-robin
    order for fairness.

    The paper's conclusion anticipates that such policies "warrant
    further study to determine how robust their performances are";
    the ablation benchmarks bear that out — this heuristic recovers
    bandwidth in bank-conflict-heavy configurations (e.g. aligned
    vectors on shallow-FIFO CLI systems) but can lose to plain
    round-robin in placements whose conflict pattern resonates with
    the service order.
    """

    name = "bank-aware"

    def __init__(self, slack: Optional[int] = None) -> None:
        self.slack = slack

    def _estimate_col_start(
        self, device: RdramDevice, fifo, cycle: int
    ) -> int:
        """Earliest cycle the FIFO's next COL could plausibly issue."""
        timing = device.timing
        location = fifo.next_unit().location
        device.sync_bank(location.bank, cycle)
        bank = device.bank(location.bank)
        if bank.open_row == location.row:
            return bank.earliest_col(cycle, location.row)
        if not bank.is_open:
            return bank.earliest_act(cycle) + timing.t_rcd
        return bank.earliest_prer(cycle) + timing.t_rp + timing.t_rcd

    def choose(
        self,
        cycle: int,
        sbu: StreamBufferUnit,
        current: int,
        device: RdramDevice,
    ) -> Optional[int]:
        count = len(sbu)
        slack = self.slack if self.slack is not None else device.timing.t_rcd
        best: Optional[int] = None
        best_estimate = 0
        for offset in self._scan_order(current, count):
            index = offset % count
            fifo = sbu[index]
            if not fifo.serviceable:
                continue
            estimate = self._estimate_col_start(device, fifo, cycle)
            if index == current and estimate <= cycle + slack:
                return current
            if best is None or estimate < best_estimate:
                best = index
                best_estimate = estimate
        return best


class SpeculativePrechargePolicy(RoundRobinPolicy):
    """Round-robin plus early precharge/activate across page crossings.

    After each access, look ahead in the current stream's access plan;
    if a different (bank, row) is coming up within ``lookahead`` units,
    open that row now so the t_RP + t_RCD latency overlaps the
    remaining transfers of the current page.  Designed for open-page
    (PI) systems, where the paper identifies page-crossing overhead as
    the factor keeping long-stream SMC performance below its bound.
    """

    name = "speculative-precharge"

    def __init__(self, lookahead: int = 4) -> None:
        self.lookahead = lookahead

    def speculate(
        self,
        msu: "MemorySchedulingUnit",
        cycle: int,
        fifo_index: int,
        unit: AccessUnit,
    ) -> None:
        fifo = msu.sbu[fifo_index]
        here = (unit.location.bank, unit.location.row)
        for pending in fifo.upcoming_units(self.lookahead):
            upcoming = pending.location
            target = (upcoming.bank, upcoming.row)
            if target == here:
                continue
            msu.device.sync_bank(upcoming.bank, cycle)
            bank = msu.device.bank(upcoming.bank)
            if bank.open_row == upcoming.row:
                return
            if any(
                msu.device.bank(neighbor).is_open
                for neighbor in msu.device.geometry.neighbors(upcoming.bank)
            ):
                # Double-bank core with a busy neighbor: speculating
                # would force a precharge on live data; leave it to the
                # demand path.
                return
            if bank.is_open:
                msu.device.issue_prer(upcoming.bank, cycle)
            msu.device.issue_act(upcoming.bank, upcoming.row, cycle)
            msu.speculative_activations += 1
            return


#: Registry for configuration by name.
POLICIES = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    BankAwarePolicy.name: BankAwarePolicy,
    SpeculativePrechargePolicy.name: SpeculativePrechargePolicy,
}
