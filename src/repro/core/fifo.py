"""Stream FIFOs and the per-stream memory access plan.

Each stream is mapped to exactly one FIFO (Section 3).  From the
processor's side the FIFO head is a memory-mapped register: reads pop
elements that the MSU prefetched, writes push elements the MSU will
later drain to memory.  From the memory side, the MSU works through
the stream's *access units* — one unit per DATA packet the stream
touches — precomputed from the stream descriptor and the address map.

Two 64-bit elements share a DATA packet only at stride one (byte
stride 8); at any larger stride every element occupies its own packet,
which is why non-unit strides can exploit at most half of the Direct
RDRAM's bandwidth (Section 6, Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from repro.errors import SchedulingError, StreamError
from repro.cpu.streams import Direction, StreamDescriptor
from repro.memsys.address import AddressMapping, Location
from repro.memsys.config import PagePolicy
from repro.memsys.pagemanager import PageManager, as_page_manager
from repro.obs.core import Instrumentation
from repro.rdram.timing import DATA_PACKET_BYTES


@dataclass(frozen=True)
class AccessUnit:
    """One DATA packet's worth of stream traffic.

    Attributes:
        location: Bank/row/column the packet lives at.
        elements: Useful 64-bit elements the packet carries (2 at
            stride one, otherwise 1).
        precharge_after: Under a closed-page policy, True on the last
            packet of each consecutive same-row run, carrying the
            precharge flag on the COL packet.
    """

    location: Location
    elements: int
    precharge_after: bool = False


def build_access_units(
    descriptor: StreamDescriptor,
    address_map: AddressMapping,
    page_manager: Union[PageManager, PagePolicy, str],
) -> List[AccessUnit]:
    """Compute the ordered DATA-packet plan for one stream.

    Consecutive elements landing in the same packet are merged into a
    single unit, then the page manager's plan-time hook rewrites the
    plan — the closed-page policy plants its precharge flags here.

    Args:
        descriptor: The placed stream.
        address_map: A registered address decomposition.
        page_manager: The page-management strategy (a
            :class:`~repro.memsys.pagemanager.PageManager`, or a
            :class:`~repro.memsys.config.PagePolicy` / registry name
            for historical callers).

    Returns:
        Units in stream-element order.
    """
    units: List[AccessUnit] = []
    last_location: Optional[Location] = None
    for index in range(descriptor.length):
        address = descriptor.element_address(index)
        packet_address = address - address % DATA_PACKET_BYTES
        location = address_map.decompose(packet_address)
        if location == last_location:
            previous = units[-1]
            units[-1] = AccessUnit(
                location=location, elements=previous.elements + 1
            )
        else:
            units.append(AccessUnit(location=location, elements=1))
            last_location = location
    return as_page_manager(page_manager).plan(units)


class StreamFifo:
    """One FIFO of the Stream Buffer Unit.

    For a read stream the MSU fills the FIFO from memory and the CPU
    pops the head; *in-flight* elements (requested but not yet arrived)
    count against the depth so the MSU never over-fetches.  For a write
    stream the CPU pushes elements and the MSU drains whole packets.

    Args:
        descriptor: The placed stream this FIFO buffers.
        depth: FIFO capacity in 64-bit elements (the paper's f).
        units: The stream's access plan from :func:`build_access_units`.
    """

    def __init__(
        self,
        descriptor: StreamDescriptor,
        depth: int,
        units: List[AccessUnit],
    ) -> None:
        max_unit = max(unit.elements for unit in units)
        if depth < max_unit:
            raise StreamError(
                f"stream {descriptor.name}: FIFO depth {depth} smaller than "
                f"a {max_unit}-element DATA packet"
            )
        self.descriptor = descriptor
        self.depth = depth
        self.units = units
        self.occupancy = 0
        self.inflight = 0
        self._cursor = 0
        self.elements_consumed = 0
        self.elements_produced = 0
        #: Optional instrumentation; samples an occupancy gauge (at
        #: ``obs.now``, maintained by the engine) on every transition.
        self.obs: Optional[Instrumentation] = None

    def _sample_occupancy(self) -> None:
        self.obs.counters.sample_gauge(
            f"fifo.{self.descriptor.name}.occupancy",
            self.obs.now,
            self.occupancy,
        )

    # ------------------------------------------------------------------
    # shared

    @property
    def direction(self) -> Direction:
        return self.descriptor.direction

    @property
    def is_read(self) -> bool:
        return self.descriptor.direction is Direction.READ

    @property
    def exhausted(self) -> bool:
        """True once every access unit has been issued to memory."""
        return self._cursor >= len(self.units)

    def next_unit(self) -> AccessUnit:
        """The next access unit to issue.

        Raises:
            SchedulingError: If the stream is exhausted.
        """
        if self.exhausted:
            raise SchedulingError(
                f"stream {self.descriptor.name}: no units left to issue"
            )
        return self.units[self._cursor]

    def upcoming_units(self, count: int) -> List[AccessUnit]:
        """The next ``count`` unissued units (fewer near stream end).

        Used by look-ahead scheduling policies such as speculative
        precharge.
        """
        return self.units[self._cursor : self._cursor + count]

    @property
    def serviceable(self) -> bool:
        """True if the MSU could issue this FIFO's next access now."""
        if self.exhausted:
            return False
        unit = self.units[self._cursor]
        if self.is_read:
            return self.occupancy + self.inflight + unit.elements <= self.depth
        return self.occupancy >= unit.elements

    @property
    def fully_drained(self) -> bool:
        """True once nothing remains buffered or in flight."""
        if self.is_read:
            return self.exhausted and self.inflight == 0 and self.occupancy == 0
        return self.exhausted

    # ------------------------------------------------------------------
    # memory (MSU) side

    def note_issue(self) -> AccessUnit:
        """Commit the next unit: reads gain in-flight elements, writes
        surrender buffered elements to the device's write buffer.

        Raises:
            SchedulingError: If the FIFO is not serviceable.
        """
        if not self.serviceable:
            raise SchedulingError(
                f"stream {self.descriptor.name}: issue on unserviceable FIFO"
            )
        unit = self.units[self._cursor]
        self._cursor += 1
        if self.is_read:
            self.inflight += unit.elements
        else:
            self.occupancy -= unit.elements
            if self.obs is not None:
                self._sample_occupancy()
        return unit

    def note_arrival(self, elements: int) -> None:
        """Read data returned from memory lands in the FIFO."""
        if not self.is_read:
            raise SchedulingError(
                f"stream {self.descriptor.name}: arrival on a write FIFO"
            )
        if elements > self.inflight:
            raise SchedulingError(
                f"stream {self.descriptor.name}: {elements} arrivals but only "
                f"{self.inflight} in flight"
            )
        self.inflight -= elements
        self.occupancy += elements
        if self.occupancy > self.depth:
            raise SchedulingError(
                f"stream {self.descriptor.name}: FIFO overflow "
                f"({self.occupancy}/{self.depth})"
            )
        if self.obs is not None:
            self._sample_occupancy()

    # ------------------------------------------------------------------
    # processor side

    def cpu_can_pop(self) -> bool:
        """True if the head register holds a valid element."""
        return self.is_read and self.occupancy > 0

    def cpu_pop(self) -> None:
        """Dequeue the head element (a processor load retires)."""
        if not self.cpu_can_pop():
            raise SchedulingError(
                f"stream {self.descriptor.name}: pop from empty FIFO"
            )
        self.occupancy -= 1
        self.elements_consumed += 1
        if self.obs is not None:
            self._sample_occupancy()

    def cpu_can_push(self) -> bool:
        """True if a processor store could enqueue an element."""
        return not self.is_read and self.occupancy < self.depth

    def cpu_push(self) -> None:
        """Enqueue one element (a processor store retires)."""
        if not self.cpu_can_push():
            raise SchedulingError(
                f"stream {self.descriptor.name}: push to full FIFO"
            )
        self.occupancy += 1
        self.elements_produced += 1
        if self.obs is not None:
            self._sample_occupancy()
