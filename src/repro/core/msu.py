"""Memory Scheduling Unit.

"To take advantage of the order sensitivity of the memory system, we
include a scheduling unit that is capable of reordering accesses.
This Memory Scheduling Unit (MSU) prefetches the reads, buffers the
writes, and dynamically reorders the memory accesses to stream
elements, issuing the requests in a sequence that attempts to maximize
effective memory bandwidth."  (Section 3.)

The MSU is driven by the simulation engine: at each decision cycle it
asks its scheduling policy which FIFO to service, issues the ROW and
COL packets the chosen access needs through the RDRAM device model,
and reports read-data arrival events back to the engine.  Page misses,
bank conflicts and activations are counted for the result report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.policies import SchedulingPolicy
from repro.core.sbu import StreamBufferUnit
from repro.obs.core import Instrumentation
from repro.rdram.device import RdramDevice
from repro.rdram.packets import BusDirection

#: Sentinel decision time for an idle MSU awaiting a FIFO state change.
IDLE = 1 << 60


@dataclass(frozen=True)
class ArrivalEvent:
    """Read data landing in a FIFO when its DATA packet completes.

    Attributes:
        cycle: Interface-clock cycle at which the data is available.
        fifo_index: The read FIFO receiving the elements.
        elements: Number of 64-bit elements arriving.
    """

    cycle: int
    fifo_index: int
    elements: int


class MemorySchedulingUnit:
    """Issues stream accesses through the device under a policy.

    Args:
        device: The Direct RDRAM device model.
        sbu: The stream buffer unit holding one FIFO per stream.
        policy: FIFO selection / pacing policy.
    """

    def __init__(
        self,
        device: RdramDevice,
        sbu: StreamBufferUnit,
        policy: SchedulingPolicy,
    ) -> None:
        self.device = device
        self.sbu = sbu
        self.policy = policy
        self.next_decision = 0
        self.current = 0
        self.packets_issued = 0
        self.activations = 0
        self.bank_conflicts = 0
        self.speculative_activations = 0
        self.fifo_switches = 0
        self.page_hits = 0
        self.page_misses = 0
        self.last_data_end = 0
        #: Optional instrumentation; records access spans, idle spans
        #: (with their cause), and scheduling counters.
        self.obs: Optional[Instrumentation] = None
        self._idle_since: Optional[int] = None
        self._idle_reason = ""

    @property
    def done(self) -> bool:
        """True once every stream's access plan has been issued."""
        return all(fifo.exhausted for fifo in self.sbu)

    def wake(self, cycle: int) -> None:
        """Re-arm an idle MSU after a FIFO state change."""
        if self.next_decision >= IDLE:
            if self.obs is not None:
                self._close_idle_span(cycle)
            self.next_decision = cycle

    def _close_idle_span(self, cycle: int) -> None:
        """Record the idle interval that a wake (or run end) closes."""
        if self._idle_since is not None and cycle > self._idle_since:
            self.obs.tracer.add_span(
                "msu", f"idle:{self._idle_reason}", self._idle_since, cycle
            )
        self._idle_since = None

    def _idle_cause(self) -> str:
        """Why no FIFO is serviceable right now.

        "done" once every stream's plan has been issued; otherwise
        "fifo" — every live read FIFO is full (counting in-flight data)
        and every live write FIFO lacks a full packet's worth of
        elements.
        """
        if all(fifo.exhausted for fifo in self.sbu):
            return "done"
        return "fifo"

    def finish_observation(self, end_cycle: int) -> None:
        """Close a still-open idle span when the simulation ends."""
        if self.obs is not None:
            self._close_idle_span(end_cycle)

    def tick(self, cycle: int) -> Tuple[ArrivalEvent, ...]:
        """Make at most one scheduling decision at ``cycle``.

        Returns:
            Arrival events for any read data the issued access will
            deliver (empty for writes or when idling).
        """
        if cycle < self.next_decision:
            return ()
        choice = self.policy.choose(cycle, self.sbu, self.current, self.device)
        if choice is None:
            self.next_decision = IDLE
            if self.obs is not None and self._idle_since is None:
                self._idle_since = cycle
                self._idle_reason = self._idle_cause()
            return ()
        if choice != self.current:
            self.fifo_switches += 1
            if self.obs is not None:
                self.obs.counters.incr("msu.fifo_switches")
            self.current = choice
        fifo = self.sbu[choice]
        unit = fifo.next_unit()
        location = unit.location
        direction = BusDirection.READ if fifo.is_read else BusDirection.WRITE
        # The open/conflict/precharge decision lives in the device's
        # access path (perform_access), shared with every controller.
        outcome = self.device.issue_access(
            location.bank,
            location.row,
            location.column,
            cycle,
            direction,
            precharge=unit.precharge_after,
        )
        access = outcome.access
        self.bank_conflicts += outcome.conflicts
        if outcome.activated:
            self.activations += 1
        if outcome.page_hit:
            self.page_hits += 1
        else:
            self.page_misses += 1
        if self.obs is not None:
            self.obs.counters.incr("msu.decisions")
            if outcome.conflicts:
                self.obs.counters.incr(
                    "msu.bank_conflicts", outcome.conflicts
                )
            self.obs.tracer.add_span(
                "msu",
                f"{'RD' if fifo.is_read else 'WR'} {fifo.descriptor.name}",
                access.col.start,
                access.data.end,
                bank=location.bank,
                row=location.row,
                column=location.column,
                decided=cycle,
            )
        fifo.note_issue()
        self.packets_issued += 1
        self.last_data_end = max(self.last_data_end, access.data.end)
        self.next_decision = max(
            cycle + 1, self.policy.pace(access, cycle, self.device.timing)
        )
        self.policy.speculate(self, cycle, choice, unit)
        if fifo.is_read:
            return (
                ArrivalEvent(
                    cycle=access.data.end,
                    fifo_index=choice,
                    elements=unit.elements,
                ),
            )
        return ()
