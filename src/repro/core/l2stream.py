"""Dynamic access ordering into and out of an L2 cache.

The paper's conclusion sketches an alternative to the FIFO-based SBU:
"We are investigating the performance tradeoffs of using dynamic
access ordering to stream data into and out of the L2 cache, which
simplifies the coherence mechanism, but which opens up the
possibility for cache conflicts to evict needed data prematurely."

This module builds that design point.  The stream controller
prefetches each read-stream's cachelines into a real L2 cache model
(instead of private FIFOs) with a bounded per-stream prefetch window;
the processor consumes elements from the L2 in natural order; store
streams write-validate lines in the L2 and dirty evictions stream
back to memory.  All memory traffic goes through the same RDRAM
device model and ordering rules as the rest of the library.

The failure mode the paper predicts is measurable here: when streams
alias in the L2's sets (low associativity, aligned placement, or deep
prefetch windows), prefetched lines are evicted before the processor
reaches them and must be *refetched* — the `refetches` statistic —
and effective bandwidth falls below the FIFO-based SMC's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.cache.model import CacheConfig, CacheModel
from repro.cpu.kernels import Kernel
from repro.cpu.processor import MATCHED_ACCESS_INTERVAL
from repro.cpu.streams import Alignment, Direction, place_streams
from repro.memsys.address import get_address_mapping
from repro.memsys.config import ELEMENT_BYTES, MemorySystemConfig
from repro.memsys.pagemanager import make_page_manager
from repro.rdram.channel import make_memory
from repro.rdram.packets import BusDirection
from repro.rdram.refresh import RefreshEngine
from repro.sim.kernel import (
    BackgroundComponent,
    Component,
    ResultBuilder,
    Simulation,
    TimedEvent,
)
from repro.sim.results import SimulationResult

#: Concurrent line fetches in flight, matching the device pipeline.
MAX_OUTSTANDING_LINES = 4


@dataclass
class _StreamState:
    """Prefetch bookkeeping for one stream."""

    name: str
    direction: Direction
    lines: List[int]           # unique line addresses, in element order
    element_lines: List[int]   # line address of each element
    element_line_index: List[int]  # index into `lines` per element
    prefetch_cursor: int = 0


class L2StreamingController:
    """SMC variant that stages stream data in an L2 cache.

    Args:
        config: Memory organization.
        l2_config: L2 geometry; line size must match the memory
            system's cacheline.
        prefetch_window: Lines the controller may run ahead per
            read-stream (the FIFO-depth analogue).
        record_trace: Record device packets for auditing.
        refresh: Run a background refresh engine alongside the run.
    """

    def __init__(
        self,
        config: MemorySystemConfig,
        l2_config: Optional[CacheConfig] = None,
        prefetch_window: int = 8,
        record_trace: bool = False,
        refresh: bool = False,
    ) -> None:
        if prefetch_window < 1:
            raise ConfigurationError("prefetch window must be at least 1")
        self.config = config
        self.l2_config = l2_config or CacheConfig(
            size_bytes=64 * 1024,
            associativity=2,
            line_bytes=config.cacheline_bytes,
        )
        if self.l2_config.line_bytes != config.cacheline_bytes:
            raise ConfigurationError(
                "L2 line size must match the memory system cacheline"
            )
        self.prefetch_window = prefetch_window
        self.page_manager = make_page_manager(config)
        self.device = make_memory(
            timing=config.timing,
            geometry=config.geometry,
            record_trace=record_trace,
            page_manager=self.page_manager,
        )
        self.address_map = get_address_mapping(config)
        self.device.mapping = self.address_map
        self.refresh = refresh
        self.refreshes_issued = 0
        self.l2: Optional[CacheModel] = None
        self.refetches = 0
        self.writebacks_streamed = 0

    # ------------------------------------------------------------------

    def run(
        self,
        kernel: Kernel,
        length: int,
        stride: int = 1,
        alignment: Alignment = Alignment.STAGGERED,
        max_cycles: Optional[int] = None,
        dense: bool = False,
        engine: str = "auto",
    ) -> SimulationResult:
        """Execute one kernel, streaming through the L2.

        Args:
            kernel: The inner loop.
            length: Vector length in elements.
            stride: Stride in elements.
            alignment: Vector base placement.
            max_cycles: Watchdog limit; defaults to a bound derived
                from the line traffic.
            dense: Visit every cycle in the simulation kernel instead
                of skipping ahead while waiting on line arrivals.
            engine: ``"event"``, ``"batch"``, or ``"auto"`` (see
                :func:`repro.sim.batch.resolve_controller_engine`).

        Returns:
            The result; ``fifo_depth`` reports the prefetch window and
            ``bank_conflicts`` the number of refetches forced by
            premature evictions.
        """
        self.device.reset()
        self.l2 = CacheModel(self.l2_config)
        self.refetches = 0
        self.writebacks_streamed = 0
        self.refreshes_issued = 0
        descriptors = place_streams(
            kernel.streams,
            self.config,
            length=length,
            stride=stride,
            alignment=alignment,
        )
        line_bytes = self.config.cacheline_bytes
        streams = []
        for descriptor in descriptors:
            element_lines = [
                descriptor.element_address(i) // line_bytes * line_bytes
                for i in range(length)
            ]
            unique: List[int] = []
            line_index: List[int] = []
            for line in element_lines:
                if not unique or unique[-1] != line:
                    unique.append(line)
                line_index.append(len(unique) - 1)
            streams.append(
                _StreamState(
                    name=descriptor.name,
                    direction=descriptor.direction,
                    lines=unique,
                    element_lines=element_lines,
                    element_line_index=line_index,
                )
            )
        if max_cycles is None:
            max_cycles = 20_000 + 200 * sum(len(s.lines) for s in streams)

        # Imported here, not at module scope: repro.sim.batch pulls in
        # repro.core for plan building, so a top-level import would be
        # circular whichever package loads first.
        from repro.sim.batch import lean_run, resolve_controller_engine

        resolved = resolve_controller_engine(engine, dense=dense)
        run_state = _L2Run(self, streams, length)
        components: List[Component] = []
        if self.refresh:
            refresh_engine = RefreshEngine(self.device)
            components.append(BackgroundComponent(refresh_engine))
        components.append(run_state)
        label = (
            f"l2-streaming: kernel={kernel.name}, "
            f"org={self.config.describe()}"
        )
        if resolved == "batch":
            final_cycle = lean_run(
                components,
                done=lambda: run_state.finished,
                max_cycles=max_cycles,
                label=label,
            )
        else:
            final_cycle = Simulation(
                components,
                done=lambda sim: run_state.finished,
                max_cycles=max_cycles,
                label=label,
                dense=dense,
            ).run()
        if self.refresh:
            self.refreshes_issued = refresh_engine.refreshes_issued

        # Stream out the remaining dirty lines.
        for line_address in self.l2.flush_dirty_lines():
            run_state.issue_line(line_address, Direction.WRITE, final_cycle)
            self.writebacks_streamed += 1

        useful = len(descriptors) * length * ELEMENT_BYTES
        builder = ResultBuilder(
            kernel=kernel.name,
            organization=self.config.describe(),
            length=length,
            stride=stride,
            fifo_depth=self.prefetch_window,
            alignment=alignment.value,
            policy="l2-streaming",
            first_data=run_state.first_retire,
            last_data_end=run_state.last_data_end,
            transactions=run_state.transactions,
            bank_conflicts=self.refetches,
            page_hits=run_state.page_hits,
            page_misses=run_state.page_misses,
        )
        return builder.build(
            cycles=max(run_state.last_data_end, run_state.last_retire),
            useful_bytes=useful,
            transferred_bytes=self.device.bytes_transferred,
            cpu_stall_cycles=run_state.stall_cycles,
            packets_issued=(
                run_state.transactions * self.config.packets_per_cacheline
            ),
            refreshes=self.refreshes_issued,
        )

    # ------------------------------------------------------------------

    def _pick_prefetch(
        self,
        streams: List[_StreamState],
        position: int,
        schedule: List[Tuple[int, int]],
    ) -> Optional[Tuple[_StreamState, int]]:
        """Next read-stream line within the prefetch window."""
        # The CPU's current iteration bounds how far ahead each
        # stream's consumption pointer sits.
        iteration = position // len(streams) if streams else 0
        for stream in streams:
            if stream.direction is not Direction.READ:
                continue
            if stream.prefetch_cursor >= len(stream.lines):
                continue
            element = min(iteration, len(stream.element_line_index) - 1)
            consumed_lines = stream.element_line_index[element] + 1
            if stream.prefetch_cursor < consumed_lines + self.prefetch_window:
                return stream, stream.lines[stream.prefetch_cursor]
        return None


class _L2Run:
    """One L2-streaming run as a simulation-kernel component.

    Each visited cycle performs the controller's four phases in order:
    land arrivals, drain one pending writeback, issue one prefetch,
    and let the CPU consume.  Between visits the kernel skips ahead;
    the only cycles that can change state are the next line arrival,
    the cycle after one with immediate work still queued (another
    writeback or an eligible prefetch), and the CPU's next attempt —
    which, when the CPU is blocked, is the arrival it waits on.
    """

    def __init__(
        self,
        controller: L2StreamingController,
        streams: List[_StreamState],
        length: int,
    ) -> None:
        self.controller = controller
        self.streams = streams
        self.schedule: List[Tuple[int, int]] = [
            (stream_index, i)
            for i in range(length)
            for stream_index in range(len(streams))
        ]
        self.inflight: Dict[int, int] = {}  # line address -> arrival cycle
        self.present: Set[int] = set()      # lines resident in L2
        self.pending_writebacks: List[int] = []
        self.position = 0
        self.next_cpu_attempt = 0
        self.last_data_end = 0
        self.first_retire: Optional[int] = None
        self.last_retire = 0
        self.transactions = 0
        self.page_hits = 0
        self.page_misses = 0
        self.stall_cycles = 0
        self._blocked_since: Optional[int] = None
        self._blocked_on_arrival = False
        self._last_cycle = -1

    @property
    def finished(self) -> bool:
        """All accesses retired and no line traffic left in flight."""
        return (
            self.position >= len(self.schedule)
            and not self.inflight
            and not self.pending_writebacks
        )

    def issue_line(
        self, line_address: int, direction: Direction, cycle: int
    ) -> int:
        """Issue one full-cacheline transfer; returns its data end."""
        controller = self.controller
        bus_dir = (
            BusDirection.READ
            if direction is Direction.READ
            else BusDirection.WRITE
        )
        packets = controller.config.packets_per_cacheline
        data_end = 0
        for offset in range(packets):
            location = controller.address_map.decompose(
                line_address + offset * 16
            )
            outcome = controller.device.issue_access(
                location.bank,
                location.row,
                location.column,
                cycle,
                bus_dir,
                precharge=(
                    controller.page_manager.plans_precharge
                    and offset == packets - 1
                ),
            )
            if outcome.page_hit:
                self.page_hits += 1
            else:
                self.page_misses += 1
            data_end = outcome.access.data.end
        self.transactions += 1
        self.last_data_end = max(self.last_data_end, data_end)
        return data_end

    def _insert_into_l2(self, line_address: int, dirty: bool) -> None:
        """Line lands in the L2; the victim may stream out."""
        l2 = self.controller.l2
        assert l2 is not None
        outcome = l2.access(line_address, is_write=dirty)
        self.present.add(line_address)
        if outcome.evicted_line is not None:
            self.present.discard(outcome.evicted_line)
        if outcome.writeback_line is not None:
            self.pending_writebacks.append(outcome.writeback_line)

    def tick(self, cycle: int) -> Tuple[TimedEvent, ...]:
        controller = self.controller
        self._last_cycle = cycle
        # Land arrivals.
        for line_address, arrival in list(self.inflight.items()):
            if arrival <= cycle:
                del self.inflight[line_address]
                self._insert_into_l2(line_address, dirty=False)
        # Drain one pending writeback per cycle slot.
        if self.pending_writebacks:
            line_address = self.pending_writebacks.pop(0)
            self.issue_line(line_address, Direction.WRITE, cycle)
            controller.writebacks_streamed += 1
        # Prefetch round-robin: one line issue per cycle at most.
        if len(self.inflight) < MAX_OUTSTANDING_LINES:
            target = controller._pick_prefetch(
                self.streams, self.position, self.schedule
            )
            if target is not None:
                stream, line_address = target
                stream.prefetch_cursor += 1
                if (
                    line_address in self.present
                    or line_address in self.inflight
                ):
                    pass  # already here (shared vector) — free
                else:
                    arrival = self.issue_line(
                        line_address, Direction.READ, cycle
                    )
                    self.inflight[line_address] = arrival
        # CPU consumes in natural order.
        if (
            self.position < len(self.schedule)
            and cycle >= self.next_cpu_attempt
        ):
            stream_index, element = self.schedule[self.position]
            stream = self.streams[stream_index]
            line_address = stream.element_lines[element]
            if stream.direction is Direction.WRITE:
                # Write-validate into the L2; no fetch needed.
                self._insert_into_l2(line_address, dirty=True)
                ready = True
            elif line_address in self.present:
                l2 = controller.l2
                assert l2 is not None
                l2.access(line_address, is_write=False)
                ready = True
            elif line_address not in self.inflight:
                # Prematurely evicted (or never prefetched):
                # demand refetch — the cost the paper predicts.
                controller.refetches += 1
                self.inflight[line_address] = self.issue_line(
                    line_address, Direction.READ, cycle
                )
                ready = False
            else:
                ready = False
            if ready:
                if self._blocked_since is not None:
                    self.stall_cycles += cycle - self._blocked_since
                    self._blocked_since = None
                if self.first_retire is None:
                    self.first_retire = cycle
                self.last_retire = cycle
                self.position += 1
                self.next_cpu_attempt = cycle + MATCHED_ACCESS_INTERVAL
            elif self._blocked_since is None:
                self._blocked_since = cycle
            self._blocked_on_arrival = not ready
        return ()

    @property
    def next_action_cycle(self) -> Optional[int]:
        """Earliest cycle at which this run can change state again.

        While the CPU waits on a line it (or a demand refetch) put in
        flight, its re-attempt is covered by that line's arrival
        cycle; a queued writeback or an eligible prefetch makes the
        very next cycle interesting because each is throttled to one
        per cycle.
        """
        candidates: List[int] = []
        if self.inflight:
            candidates.append(min(self.inflight.values()))
        if self.pending_writebacks:
            candidates.append(self._last_cycle + 1)
        elif len(self.inflight) < MAX_OUTSTANDING_LINES:
            if (
                self.controller._pick_prefetch(
                    self.streams, self.position, self.schedule
                )
                is not None
            ):
                candidates.append(self._last_cycle + 1)
        if (
            self.position < len(self.schedule)
            and not self._blocked_on_arrival
        ):
            candidates.append(self.next_cpu_attempt)
        if not candidates:
            return None
        return min(candidates)
