"""Dynamic access ordering into and out of an L2 cache.

The paper's conclusion sketches an alternative to the FIFO-based SBU:
"We are investigating the performance tradeoffs of using dynamic
access ordering to stream data into and out of the L2 cache, which
simplifies the coherence mechanism, but which opens up the
possibility for cache conflicts to evict needed data prematurely."

This module builds that design point.  The stream controller
prefetches each read-stream's cachelines into a real L2 cache model
(instead of private FIFOs) with a bounded per-stream prefetch window;
the processor consumes elements from the L2 in natural order; store
streams write-validate lines in the L2 and dirty evictions stream
back to memory.  All memory traffic goes through the same RDRAM
device model and ordering rules as the rest of the library.

The failure mode the paper predicts is measurable here: when streams
alias in the L2's sets (low associativity, aligned placement, or deep
prefetch windows), prefetched lines are evicted before the processor
reaches them and must be *refetched* — the `refetches` statistic —
and effective bandwidth falls below the FIFO-based SMC's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import ConfigurationError, SchedulingError
from repro.cache.model import CacheConfig, CacheModel
from repro.cpu.kernels import Kernel
from repro.cpu.processor import MATCHED_ACCESS_INTERVAL
from repro.cpu.streams import Alignment, Direction, place_streams
from repro.memsys.address import get_address_mapping
from repro.memsys.config import ELEMENT_BYTES, MemorySystemConfig
from repro.memsys.pagemanager import make_page_manager
from repro.rdram.channel import make_memory
from repro.rdram.packets import BusDirection
from repro.sim.results import SimulationResult

#: Concurrent line fetches in flight, matching the device pipeline.
MAX_OUTSTANDING_LINES = 4


@dataclass
class _StreamState:
    """Prefetch bookkeeping for one stream."""

    name: str
    direction: Direction
    lines: List[int]           # unique line addresses, in element order
    element_lines: List[int]   # line address of each element
    element_line_index: List[int]  # index into `lines` per element
    prefetch_cursor: int = 0


class L2StreamingController:
    """SMC variant that stages stream data in an L2 cache.

    Args:
        config: Memory organization.
        l2_config: L2 geometry; line size must match the memory
            system's cacheline.
        prefetch_window: Lines the controller may run ahead per
            read-stream (the FIFO-depth analogue).
        record_trace: Record device packets for auditing.
    """

    def __init__(
        self,
        config: MemorySystemConfig,
        l2_config: Optional[CacheConfig] = None,
        prefetch_window: int = 8,
        record_trace: bool = False,
    ) -> None:
        if prefetch_window < 1:
            raise ConfigurationError("prefetch window must be at least 1")
        self.config = config
        self.l2_config = l2_config or CacheConfig(
            size_bytes=64 * 1024,
            associativity=2,
            line_bytes=config.cacheline_bytes,
        )
        if self.l2_config.line_bytes != config.cacheline_bytes:
            raise ConfigurationError(
                "L2 line size must match the memory system cacheline"
            )
        self.prefetch_window = prefetch_window
        self.page_manager = make_page_manager(config)
        self.device = make_memory(
            timing=config.timing,
            geometry=config.geometry,
            record_trace=record_trace,
            page_manager=self.page_manager,
        )
        self.address_map = get_address_mapping(config)
        self.l2: Optional[CacheModel] = None
        self.refetches = 0
        self.writebacks_streamed = 0

    # ------------------------------------------------------------------

    def run(
        self,
        kernel: Kernel,
        length: int,
        stride: int = 1,
        alignment: Alignment = Alignment.STAGGERED,
        max_cycles: Optional[int] = None,
    ) -> SimulationResult:
        """Execute one kernel, streaming through the L2.

        Returns:
            The result; ``fifo_depth`` reports the prefetch window and
            ``bank_conflicts`` the number of refetches forced by
            premature evictions.
        """
        self.device.reset()
        self.l2 = CacheModel(self.l2_config)
        self.refetches = 0
        self.writebacks_streamed = 0
        descriptors = place_streams(
            kernel.streams,
            self.config,
            length=length,
            stride=stride,
            alignment=alignment,
        )
        line_bytes = self.config.cacheline_bytes
        streams = []
        for descriptor in descriptors:
            element_lines = [
                descriptor.element_address(i) // line_bytes * line_bytes
                for i in range(length)
            ]
            unique: List[int] = []
            line_index: List[int] = []
            for line in element_lines:
                if not unique or unique[-1] != line:
                    unique.append(line)
                line_index.append(len(unique) - 1)
            streams.append(
                _StreamState(
                    name=descriptor.name,
                    direction=descriptor.direction,
                    lines=unique,
                    element_lines=element_lines,
                    element_line_index=line_index,
                )
            )

        inflight: Dict[int, int] = {}  # line address -> arrival cycle
        present: Set[int] = set()      # lines resident in L2
        pending_writebacks: List[int] = []
        access_schedule: List[Tuple[int, int]] = [
            (stream_index, i)
            for i in range(length)
            for stream_index in range(len(streams))
        ]
        position = 0
        next_cpu_attempt = 0
        last_data_end = 0
        first_retire: Optional[int] = None
        last_retire = 0
        transactions = 0
        stall_cycles = 0
        blocked_since: Optional[int] = None
        if max_cycles is None:
            max_cycles = 20_000 + 200 * sum(len(s.lines) for s in streams)

        def issue_line(line_address: int, direction: Direction, cycle: int) -> int:
            nonlocal last_data_end, transactions
            bus_dir = (
                BusDirection.READ
                if direction is Direction.READ
                else BusDirection.WRITE
            )
            packets = self.config.packets_per_cacheline
            data_end = 0
            for offset in range(packets):
                location = self.address_map.decompose(
                    line_address + offset * 16
                )
                outcome = self.device.issue_access(
                    location.bank,
                    location.row,
                    location.column,
                    cycle,
                    bus_dir,
                    precharge=(
                        self.page_manager.plans_precharge
                        and offset == packets - 1
                    ),
                )
                data_end = outcome.access.data.end
            transactions += 1
            last_data_end = max(last_data_end, data_end)
            return data_end

        def insert_into_l2(line_address: int, dirty: bool) -> None:
            """Line lands in the L2; the victim may stream out."""
            outcome = self.l2.access(line_address, is_write=dirty)
            present.add(line_address)
            if outcome.evicted_line is not None:
                present.discard(outcome.evicted_line)
            if outcome.writeback_line is not None:
                pending_writebacks.append(outcome.writeback_line)

        cycle = 0
        while True:
            # Land arrivals.
            for line_address, arrival in list(inflight.items()):
                if arrival <= cycle:
                    del inflight[line_address]
                    insert_into_l2(line_address, dirty=False)
            # Drain one pending writeback per cycle slot.
            if pending_writebacks:
                line_address = pending_writebacks.pop(0)
                issue_line(line_address, Direction.WRITE, cycle)
                self.writebacks_streamed += 1
            # Prefetch round-robin: one line issue per cycle at most.
            if len(inflight) < MAX_OUTSTANDING_LINES:
                target = self._pick_prefetch(streams, position, access_schedule)
                if target is not None:
                    stream, line_address = target
                    stream.prefetch_cursor += 1
                    if line_address in present or line_address in inflight:
                        pass  # already here (shared vector) — free
                    else:
                        arrival = issue_line(
                            line_address, Direction.READ, cycle
                        )
                        inflight[line_address] = arrival
            # CPU consumes in natural order.
            if position < len(access_schedule) and cycle >= next_cpu_attempt:
                stream_index, element = access_schedule[position]
                stream = streams[stream_index]
                line_address = stream.element_lines[element]
                if stream.direction is Direction.WRITE:
                    # Write-validate into the L2; no fetch needed.
                    insert_into_l2(line_address, dirty=True)
                    ready = True
                elif line_address in present:
                    self.l2.access(line_address, is_write=False)
                    ready = True
                elif line_address not in inflight:
                    # Prematurely evicted (or never prefetched):
                    # demand refetch — the cost the paper predicts.
                    self.refetches += 1
                    inflight[line_address] = issue_line(
                        line_address, Direction.READ, cycle
                    )
                    ready = False
                else:
                    ready = False
                if ready:
                    if blocked_since is not None:
                        stall_cycles += cycle - blocked_since
                        blocked_since = None
                    if first_retire is None:
                        first_retire = cycle
                    last_retire = cycle
                    position += 1
                    next_cpu_attempt = cycle + MATCHED_ACCESS_INTERVAL
                elif blocked_since is None:
                    blocked_since = cycle
            if (
                position >= len(access_schedule)
                and not inflight
                and not pending_writebacks
            ):
                break
            cycle += 1
            if cycle > max_cycles:
                raise SchedulingError(
                    f"L2 streaming run exceeded {max_cycles} cycles"
                )

        # Stream out the remaining dirty lines.
        for line_address in self.l2.flush_dirty_lines():
            issue_line(line_address, Direction.WRITE, cycle)
            self.writebacks_streamed += 1

        useful = len(descriptors) * length * ELEMENT_BYTES
        return SimulationResult(
            kernel=kernel.name,
            organization=self.config.describe(),
            length=length,
            stride=stride,
            fifo_depth=self.prefetch_window,
            alignment=alignment.value,
            policy="l2-streaming",
            cycles=max(last_data_end, last_retire),
            useful_bytes=useful,
            transferred_bytes=self.device.bytes_transferred,
            startup_cycles=first_retire or 0,
            cpu_stall_cycles=stall_cycles,
            packets_issued=transactions * self.config.packets_per_cacheline,
            bank_conflicts=self.refetches,
        )

    # ------------------------------------------------------------------

    def _pick_prefetch(
        self,
        streams: List[_StreamState],
        position: int,
        schedule: List[Tuple[int, int]],
    ) -> Optional[Tuple[_StreamState, int]]:
        """Next read-stream line within the prefetch window."""
        # The CPU's current iteration bounds how far ahead each
        # stream's consumption pointer sits.
        iteration = position // len(streams) if streams else 0
        for stream in streams:
            if stream.direction is not Direction.READ:
                continue
            if stream.prefetch_cursor >= len(stream.lines):
                continue
            element = min(iteration, len(stream.element_line_index) - 1)
            consumed_lines = stream.element_line_index[element] + 1
            if stream.prefetch_cursor < consumed_lines + self.prefetch_window:
                return stream, stream.lines[stream.prefetch_cursor]
        return None
