"""Cycle-level observability: counters, event tracing, stall attribution.

A lightweight, zero-cost-when-disabled instrumentation layer threaded
through the simulator.  Create an :class:`Instrumentation`, pass it to
a simulation entry point, then attribute stalls or export the run::

    from repro.obs import Instrumentation, attribute_stalls
    from repro.obs.export import write_chrome_trace
    from repro.sim.runner import simulate_kernel

    obs = Instrumentation()
    result = simulate_kernel("daxpy", "pi", obs=obs)
    stalls = attribute_stalls(obs)
    print(stalls.table())
    write_chrome_trace("trace.json", obs, stalls=stalls.as_dict())

See :mod:`repro.obs.core` for the primitives,
:mod:`repro.obs.attribution` for the exact cycle accounting,
:mod:`repro.obs.export` for Perfetto/JSONL I/O, and ``repro-trace``
(:mod:`repro.obs.cli`) for inspecting exported files.
"""

from repro.obs.attribution import (
    BUCKETS,
    AccessMix,
    StallAttribution,
    access_mix,
    attribute_stalls,
    format_stall_table,
)
from repro.obs.core import (
    CounterRegistry,
    DataBusGap,
    EventTracer,
    InstantEvent,
    Instrumentation,
    SpanEvent,
)

__all__ = [
    "AccessMix",
    "BUCKETS",
    "CounterRegistry",
    "DataBusGap",
    "EventTracer",
    "InstantEvent",
    "Instrumentation",
    "SpanEvent",
    "StallAttribution",
    "access_mix",
    "attribute_stalls",
    "format_stall_table",
]
