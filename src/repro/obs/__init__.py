"""Cycle-level observability: counters, event tracing, stall attribution.

A lightweight, zero-cost-when-disabled instrumentation layer threaded
through the simulator.  Create an :class:`Instrumentation`, pass it to
a simulation entry point, then attribute stalls or export the run::

    from repro.obs import Instrumentation, attribute_stalls
    from repro.obs.export import write_chrome_trace
    from repro.sim.runner import RunSpec, simulate

    obs = Instrumentation()
    result = simulate(RunSpec(kernel="daxpy", organization="pi"), obs=obs)
    stalls = attribute_stalls(obs)
    print(stalls.table())
    write_chrome_trace("trace.json", obs, stalls=stalls.as_dict())

Time-series telemetry rides on the same object: construct it with a
sampling window and windowed series land in ``obs.metrics``::

    obs = Instrumentation(telemetry_window=256)
    result = simulate(RunSpec(kernel="daxpy", organization="pi"), obs=obs)
    series = obs.metrics.series("telemetry.data_bus_utilization")

See :mod:`repro.obs.core` for the primitives,
:mod:`repro.obs.attribution` for the exact cycle accounting,
:mod:`repro.obs.telemetry` for the sampling probe and windowed series,
:mod:`repro.obs.metrics` for the registry and its exporters,
:mod:`repro.obs.export` for Perfetto/JSONL I/O,
:mod:`repro.obs.ledger` for the append-only run ledger,
:mod:`repro.obs.report` for self-contained HTML reports, and the
``repro-trace`` / ``repro-metrics`` / ``repro-report`` CLIs for
inspecting exported files.
"""

from repro.obs.attribution import (
    BUCKETS,
    AccessMix,
    StallAttribution,
    access_mix,
    attribute_stalls,
    classify_stall_intervals,
    format_stall_table,
)
from repro.obs.core import (
    CounterRegistry,
    DataBusGap,
    EventTracer,
    InstantEvent,
    Instrumentation,
    SpanEvent,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Series,
    load_metrics_jsonl,
    to_prometheus,
    write_metrics_csv,
    write_metrics_jsonl,
)
from repro.obs.ledger import Ledger, LedgerWriter
from repro.obs.telemetry import (
    TelemetryProbe,
    TelemetrySource,
    build_windowed_series,
    finalize_telemetry,
)

__all__ = [
    "AccessMix",
    "BUCKETS",
    "Counter",
    "CounterRegistry",
    "DataBusGap",
    "EventTracer",
    "Gauge",
    "Histogram",
    "InstantEvent",
    "Instrumentation",
    "Ledger",
    "LedgerWriter",
    "MetricsRegistry",
    "Series",
    "SpanEvent",
    "StallAttribution",
    "TelemetryProbe",
    "TelemetrySource",
    "access_mix",
    "attribute_stalls",
    "build_windowed_series",
    "classify_stall_intervals",
    "finalize_telemetry",
    "format_stall_table",
    "load_metrics_jsonl",
    "render_report",
    "to_prometheus",
    "write_metrics_csv",
    "write_metrics_jsonl",
]


def __getattr__(name: str):
    # Imported lazily so `python -m repro.obs.report` doesn't trip
    # runpy's found-in-sys.modules warning via this package import.
    if name == "render_report":
        from repro.obs.report import render_report

        return render_report
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
