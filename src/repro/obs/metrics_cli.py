"""Metrics inspection command line, installed as ``repro-metrics``.

Reads a metrics file written by ``repro-simulate --metrics-out`` (or
:func:`repro.obs.metrics.write_metrics_jsonl`) and lists, re-exports,
or plots its contents — or runs a simulation with telemetry attached
and captures the file in one step::

    repro-metrics list /tmp/m.jsonl            # metric inventory
    repro-metrics dump /tmp/m.jsonl            # Prometheus text format
    repro-metrics dump /tmp/m.jsonl --format csv --out m.csv
    repro-metrics plot /tmp/m.jsonl telemetry.data_bus_utilization
    repro-metrics plot /tmp/m.jsonl telemetry.stall_cycles --label bucket=fifo
    repro-metrics run daxpy --org pi --length 1024 --window 256 \\
        --out /tmp/m.jsonl
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, ObservabilityError, ReproError
from repro.obs.metrics import (
    Histogram,
    Metric,
    MetricsRegistry,
    Series,
    load_metrics_jsonl,
    to_prometheus,
    write_metrics_csv,
    write_metrics_jsonl,
)

#: Eight-level bar glyphs for sparkline plots.
_SPARKS = " ▁▂▃▄▅▆▇█"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-metrics",
        description=(
            "Inspect, re-export, or plot simulator metrics files "
            "(JSONL from repro-simulate --metrics-out)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_p = sub.add_parser("list", help="list metrics in a file")
    list_p.add_argument("file", help="metrics .jsonl file")

    dump_p = sub.add_parser("dump", help="re-export a metrics file")
    dump_p.add_argument("file", help="metrics .jsonl file")
    dump_p.add_argument(
        "--format", choices=("prometheus", "jsonl", "csv"),
        default="prometheus", help="output format (default prometheus)",
    )
    dump_p.add_argument(
        "--out", metavar="PATH",
        help="write to PATH instead of stdout (required for csv/jsonl)",
    )

    plot_p = sub.add_parser("plot", help="ASCII-plot a series/histogram")
    plot_p.add_argument("file", help="metrics .jsonl file")
    plot_p.add_argument("name", help="metric name (see 'list')")
    plot_p.add_argument(
        "--label", action="append", default=[], metavar="K=V",
        help="only metrics carrying this label (repeatable)",
    )
    plot_p.add_argument(
        "--width", type=int, default=64,
        help="plot width in characters (default 64)",
    )

    run_p = sub.add_parser(
        "run", help="simulate with telemetry and capture metrics"
    )
    run_p.add_argument("kernel", help="kernel name (copy, daxpy, vaxpy, ...)")
    run_p.add_argument("--org", default="cli", choices=("cli", "pi"),
                       help="memory organization (default cli)")
    run_p.add_argument("--length", type=int, default=1024,
                       help="vector length in elements (default 1024)")
    run_p.add_argument("--fifo-depth", type=int, default=64,
                       help="FIFO depth in elements (default 64)")
    run_p.add_argument("--stride", type=int, default=1,
                       help="stream stride in elements (default 1)")
    run_p.add_argument("--window", type=int, default=256, metavar="N",
                       help="telemetry window in cycles (default 256)")
    run_p.add_argument("--out", metavar="PATH",
                       help="write metrics JSONL to PATH")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _list(args)
        if args.command == "dump":
            return _dump(args)
        if args.command == "plot":
            return _plot(args)
        return _run(args)
    except ReproError as error:
        sys.stderr.write(f"error: {error}\n")
        return 1
    except BrokenPipeError:
        # stdout went away (e.g. piped into head); exit quietly.
        sys.stderr.close()
        return 0


def _list(args: argparse.Namespace) -> int:
    registry = load_metrics_jsonl(args.file)
    if not registry:
        print("(no metrics)")
        return 0
    width = max(len(m.name) for m in registry.all())
    for metric in registry.all():
        labels = " ".join(f"{k}={v}" for k, v in metric.labels)
        if isinstance(metric, Series):
            detail = f"{len(metric.samples)} samples"
        elif isinstance(metric, Histogram):
            detail = (
                f"count={metric.count} p50={metric.p50:g} "
                f"p90={metric.p90:g} p99={metric.p99:g}"
            )
        else:
            detail = f"value={metric.value:g}"
        print(
            f"{metric.kind:<9s} {metric.name:<{width}s}"
            + (f"  {{{labels}}}" if labels else "")
            + f"  {detail}"
        )
    return 0


def _dump(args: argparse.Namespace) -> int:
    registry = load_metrics_jsonl(args.file)
    if args.format == "prometheus":
        text = to_prometheus(registry)
        if args.out:
            _write_text(args.out, text)
        else:
            sys.stdout.write(text)
        return 0
    if not args.out:
        raise ConfigurationError(
            f"--format {args.format} needs --out PATH"
        )
    if args.format == "jsonl":
        count = write_metrics_jsonl(args.out, registry)
    else:
        count = write_metrics_csv(args.out, registry)
    print(f"wrote {count} {args.format} records to {args.out}")
    return 0


def _plot(args: argparse.Namespace) -> int:
    registry = load_metrics_jsonl(args.file)
    wanted = _parse_labels(args.label)
    matches = [
        metric for metric in registry.find(args.name)
        if all(pair in metric.labels for pair in wanted)
    ]
    if not matches:
        known = ", ".join(sorted(registry.names())) or "(none)"
        raise ObservabilityError(
            f"no metric named {args.name!r}"
            + (f" with labels {dict(wanted)}" if wanted else "")
            + f" in {args.file!r}; known names: {known}"
        )
    for metric in matches:
        _plot_one(metric, max(8, args.width))
    return 0


def _parse_labels(pairs: Sequence[str]) -> List[Tuple[str, str]]:
    parsed = []
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise ConfigurationError(
                f"--label wants K=V, got {pair!r}"
            )
        parsed.append((key, value))
    return parsed


def _plot_one(metric: Metric, width: int) -> None:
    labels = " ".join(f"{k}={v}" for k, v in metric.labels)
    title = metric.name + (f" {{{labels}}}" if labels else "")
    if isinstance(metric, Series):
        values = metric.values()
        if not values:
            print(f"{title}: (no samples)")
            return
        lo, hi = min(values), max(values)
        print(
            f"{title}: {len(values)} samples, "
            f"min={lo:g} max={hi:g} last={values[-1]:g}"
        )
        print("  " + _sparkline(_rebin(values, width), lo, hi))
        first_t = metric.samples[0][0]
        last_t = metric.samples[-1][0]
        print(f"  t={first_t} .. {last_t}")
    elif isinstance(metric, Histogram):
        print(
            f"{title}: count={metric.count} p50={metric.p50:g} "
            f"p90={metric.p90:g} p99={metric.p99:g}"
        )
        peak = max(metric.bucket_counts) or 1
        edges = [*metric.bounds, float("inf")]
        for bound, count in zip(edges, metric.bucket_counts):
            bar = "#" * round(width * count / peak)
            print(f"  le {bound:>10g}  {count:>8d}  {bar}")
    else:
        print(f"{title}: {metric.value:g}")


def _rebin(values: Sequence[float], width: int) -> List[float]:
    """Reduce a series to at most ``width`` points by bucket-averaging."""
    if len(values) <= width:
        return list(values)
    binned = []
    for i in range(width):
        lo = i * len(values) // width
        hi = max(lo + 1, (i + 1) * len(values) // width)
        chunk = values[lo:hi]
        binned.append(sum(chunk) / len(chunk))
    return binned


def _sparkline(values: Sequence[float], lo: float, hi: float) -> str:
    span = hi - lo
    if span <= 0:
        # A flat series: draw the floor glyph when it sits at zero.
        glyph = _SPARKS[1] if hi == 0 else _SPARKS[-1]
        return glyph * len(values)
    levels = len(_SPARKS) - 1
    return "".join(
        _SPARKS[round((value - lo) / span * levels)] for value in values
    )


def _run(args: argparse.Namespace) -> int:
    from repro.obs.core import Instrumentation
    from repro.sim.runner import RunSpec, simulate

    obs = Instrumentation(telemetry_window=args.window)
    result = simulate(
        RunSpec(
            kernel=args.kernel,
            organization=args.org,
            length=args.length,
            fifo_depth=args.fifo_depth,
            stride=args.stride,
        ),
        obs=obs,
    )
    print(result.summary())
    util = obs.metrics.series("telemetry.data_bus_utilization")
    values = util.values()
    if values:
        print(
            f"telemetry    : window={args.window} cycles, "
            f"{len(values)} windows"
        )
        print("  bus util   : " + _sparkline(
            _rebin(values, 64), min(values), max(values)
        ))
    if args.out:
        count = write_metrics_jsonl(args.out, obs.metrics)
        print(f"metrics      : {count} records -> {args.out}")
    return 0


def _write_text(path: str, text: str) -> None:
    try:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
    except OSError as error:
        raise ObservabilityError(
            f"cannot write {path!r}: {error}"
        ) from None


if __name__ == "__main__":
    raise SystemExit(main())
