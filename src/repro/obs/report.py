"""Self-contained HTML run reports, installed as ``repro-report``.

Renders any combination of a run ledger (:mod:`repro.obs.ledger`), a
metrics dump (:func:`repro.obs.metrics.write_metrics_jsonl`), and
traffic results (:meth:`repro.traffic.driver.TrafficResult.to_dict`
JSON) into **one static HTML file**: no server, no scripts, no
external assets — every chart is inline SVG, so the artifact opens
anywhere a browser does and can be attached to a CI run::

    repro-report --ledger run.jsonl --metrics metrics.jsonl \\
                 --traffic traffic.json --out report.html

Charts follow one set of rules: a single accent hue for series marks,
a single-hue light-to-dark blue ramp for heatmap magnitude, text in
ink tokens (never the series color), and light/dark palettes that
swap via CSS custom properties.
"""

from __future__ import annotations

import argparse
import html
import json
import sys
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ObservabilityError, ReproError
from repro.obs.ledger import Ledger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Series,
    load_metrics_jsonl,
)

#: Sequential single-hue blue ramp, light (near zero) to dark (max).
_RAMP = (
    "#cde2fb", "#9ec5f4", "#6da7ec", "#3987e5",
    "#256abf", "#184f95", "#0d366b",
)

_STYLE = """
:root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --muted: #898781;
  --grid: #e1e0d9;
  --series-1: #2a78d6;
  --border: rgba(11, 11, 11, 0.10);
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --grid: #2c2c2a;
    --series-1: #3987e5;
    --border: rgba(255, 255, 255, 0.10);
  }
}
body {
  margin: 0; padding: 24px;
  background: var(--page); color: var(--text-primary);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 28px 0 8px; }
h3 { font-size: 13px; margin: 16px 0 6px; color: var(--text-secondary);
     font-weight: 600; }
.sub { color: var(--text-secondary); margin: 0 0 16px; }
section {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px 20px; margin: 0 0 16px;
}
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 8px 0; }
.tile {
  border: 1px solid var(--border); border-radius: 6px;
  padding: 8px 14px; min-width: 96px;
}
.tile .v { font-size: 20px; font-weight: 600; }
.tile .k { color: var(--text-secondary); font-size: 12px; }
table { border-collapse: collapse; margin: 8px 0; }
th, td {
  text-align: left; padding: 3px 14px 3px 0;
  border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums;
}
th { color: var(--text-secondary); font-weight: 600; font-size: 12px; }
td.num, th.num { text-align: right; }
.bar { display: inline-block; height: 8px; border-radius: 2px;
       background: var(--series-1); vertical-align: middle; }
.note { color: var(--muted); font-size: 12px; }
svg text { fill: var(--text-secondary); font-size: 10px;
           font-family: system-ui, -apple-system, "Segoe UI", sans-serif; }
svg .axis { stroke: var(--grid); stroke-width: 1; }
svg .mark { fill: var(--series-1); }
svg .line { stroke: var(--series-1); stroke-width: 2; fill: none; }
"""


def _esc(text: object) -> str:
    return html.escape(str(text), quote=True)


def _fmt(value: float) -> str:
    """Compact number formatting for labels and tiles."""
    if isinstance(value, float) and not value.is_integer():
        return f"{value:,.2f}" if abs(value) < 100 else f"{value:,.0f}"
    return f"{int(value):,}"


def _ramp_color(value: float, vmax: float) -> str:
    if vmax <= 0 or value <= 0:
        return _RAMP[0]
    position = min(1.0, value / vmax)
    return _RAMP[min(len(_RAMP) - 1, int(position * len(_RAMP)))]


def _tile(label: str, value: str) -> str:
    return (
        f'<div class="tile"><div class="v">{_esc(value)}</div>'
        f'<div class="k">{_esc(label)}</div></div>'
    )


def _share_bar(fraction: float, width: int = 120) -> str:
    span = max(0, min(width, round(fraction * width)))
    return f'<span class="bar" style="width:{span}px"></span>'


def _svg_sparkline(
    values: Sequence[float], width: int = 260, height: int = 40
) -> str:
    """A thin single-series line with no axis chrome."""
    if not values:
        return '<span class="note">no samples</span>'
    vmax = max(values) or 1.0
    vmin = min(min(values), 0.0)
    spread = (vmax - vmin) or 1.0
    pad = 3
    step = (width - 2 * pad) / max(1, len(values) - 1)
    points = " ".join(
        f"{pad + i * step:.1f},"
        f"{height - pad - (v - vmin) / spread * (height - 2 * pad):.1f}"
        for i, v in enumerate(values)
    )
    title = (
        f"{len(values)} samples, min {_fmt(min(values))}, "
        f"max {_fmt(max(values))}, last {_fmt(values[-1])}"
    )
    if len(values) == 1:
        body = f'<circle class="mark" cx="{pad}" cy="{pad}" r="3"/>'
    else:
        body = f'<polyline class="line" points="{points}"/>'
    return (
        f'<svg width="{width}" height="{height}" role="img">'
        f"<title>{_esc(title)}</title>{body}</svg>"
    )


def _svg_bars(
    pairs: Sequence[Tuple[str, float]],
    width: int = 420,
    height: int = 96,
) -> str:
    """Thin vertical bars anchored to a shared baseline."""
    if not pairs:
        return '<span class="note">no data</span>'
    vmax = max(value for _, value in pairs) or 1.0
    pad_bottom = 14
    plot = height - pad_bottom
    gap = 2
    slot = max(4, (width - gap) // len(pairs))
    bar = max(2, slot - gap)
    parts = [f'<svg width="{width}" height="{height}" role="img">']
    parts.append(
        f'<line class="axis" x1="0" y1="{plot}" '
        f'x2="{len(pairs) * slot}" y2="{plot}"/>'
    )
    for i, (label, value) in enumerate(pairs):
        h = round(value / vmax * (plot - 4))
        x = i * slot + gap
        parts.append(
            f'<rect class="mark" x="{x}" y="{plot - h}" width="{bar}" '
            f'height="{h}" rx="1">'
            f"<title>{_esc(label)}: {_esc(_fmt(value))}</title></rect>"
        )
        if len(pairs) <= 16:
            parts.append(
                f'<text x="{x + bar / 2:.0f}" y="{height - 3}" '
                f'text-anchor="middle">{_esc(label)}</text>'
            )
    parts.append("</svg>")
    return "".join(parts)


def _svg_heatmap(
    rows: Sequence[Tuple[str, Sequence[float]]],
    cell: int = 9,
    label_width: int = 90,
) -> str:
    """Single-hue sequential heatmap: one row per labeled series."""
    if not rows:
        return '<span class="note">no data</span>'
    columns = max(len(values) for _, values in rows)
    vmax = max(
        (value for _, values in rows for value in values), default=0.0
    )
    width = label_width + columns * cell + 2
    height = len(rows) * cell + 2
    parts = [f'<svg width="{width}" height="{height}" role="img">']
    for r, (label, values) in enumerate(rows):
        parts.append(
            f'<text x="{label_width - 6}" y="{r * cell + cell - 1}" '
            f'text-anchor="end">{_esc(label)}</text>'
        )
        for c, value in enumerate(values):
            color = _ramp_color(value, vmax)
            parts.append(
                f'<rect x="{label_width + c * cell}" y="{r * cell}" '
                f'width="{cell - 1}" height="{cell - 1}" '
                f'fill="{color}">'
                f"<title>{_esc(label)} · window {c}: "
                f"{_esc(_fmt(value))}</title></rect>"
            )
    parts.append("</svg>")
    return "".join(parts)


# ---------------------------------------------------------------------------
# Sections


def _ledger_section(ledger: Ledger) -> str:
    counts = ledger.counts()
    parts = ["<section><h2>Run ledger</h2>"]
    parts.append('<div class="tiles">')
    for label, value in (
        ("events", len(ledger.events)),
        ("queued", counts.get("queued", 0)),
        ("cache hits", counts.get("cache_hit", 0)),
        ("completed", counts.get("completed", 0)),
        ("failed", counts.get("failed", 0)),
        ("elapsed", f"{ledger.elapsed_s():.3f}s"),
    ):
        parts.append(_tile(label, str(value)))
    parts.append("</div>")

    problems = ledger.verify()
    if problems:
        parts.append(
            '<p class="note">invariant problems: '
            + "; ".join(_esc(p) for p in problems[:5])
            + "</p>"
        )

    busy = ledger.worker_busy()
    if busy:
        utilization = ledger.worker_utilization()
        parts.append("<h3>Worker utilization</h3><table>")
        parts.append(
            "<tr><th>worker</th><th class=num>busy (s)</th>"
            "<th class=num>utilization</th><th></th></tr>"
        )
        for worker in sorted(busy):
            parts.append(
                f"<tr><td>{_esc(worker)}</td>"
                f"<td class=num>{busy[worker]:.3f}</td>"
                f"<td class=num>{utilization[worker]:.0%}</td>"
                f"<td>{_share_bar(utilization[worker])}</td></tr>"
            )
        parts.append("</table>")

    batches = ledger.batch_summaries()
    if batches:
        parts.append("<h3>Batches</h3><table>")
        parts.append(
            "<tr><th>batch</th><th class=num>points</th>"
            "<th class=num>cached</th><th class=num>simulated</th>"
            "<th class=num>elapsed (s)</th><th>critical path</th></tr>"
        )
        for batch in batches:
            critical = batch.critical_label or "—"
            if batch.critical_wall_s is not None:
                critical += f" ({batch.critical_wall_s:.3f}s)"
            parts.append(
                f"<tr><td>{batch.run}/{batch.batch}</td>"
                f"<td class=num>{batch.total}</td>"
                f"<td class=num>{batch.cache_hits}</td>"
                f"<td class=num>{batch.completed}</td>"
                f"<td class=num>{batch.elapsed_s:.3f}</td>"
                f"<td>{_esc(critical)}</td></tr>"
            )
        parts.append("</table>")
    parts.append("</section>")
    return "".join(parts)


def _label_text(metric) -> str:
    return (
        ", ".join(f"{k}={v}" for k, v in metric.labels) or "(no labels)"
    )


def _metrics_section(registry: MetricsRegistry) -> str:
    parts = ["<section><h2>Metrics</h2>"]
    scalars = [
        m for m in registry.all() if isinstance(m, (Counter, Gauge))
    ]
    if scalars:
        parts.append("<h3>Counters &amp; gauges</h3><table>")
        parts.append(
            "<tr><th>metric</th><th>labels</th><th class=num>value</th>"
            "</tr>"
        )
        for metric in scalars:
            parts.append(
                f"<tr><td>{_esc(metric.name)}</td>"
                f"<td>{_esc(_label_text(metric))}</td>"
                f"<td class=num>{_esc(_fmt(metric.value))}</td></tr>"
            )
        parts.append("</table>")

    histograms = [m for m in registry.all() if isinstance(m, Histogram)]
    if histograms:
        parts.append("<h3>Histograms</h3>")
        for metric in histograms[:12]:
            parts.append(
                f"<p>{_esc(metric.name)} "
                f'<span class="note">{_esc(_label_text(metric))} · '
                f"n={metric.count}, mean {_fmt(metric.mean)}, "
                f"p50 {_fmt(metric.p50)}, p90 {_fmt(metric.p90)}, "
                f"p99 {_fmt(metric.p99)}</span></p>"
            )
            pairs = [
                (_fmt(bound), float(count))
                for bound, count in zip(
                    metric.bounds, metric.bucket_counts
                )
            ]
            if metric.bucket_counts[-1]:
                pairs.append(("inf", float(metric.bucket_counts[-1])))
            parts.append(_svg_bars(pairs))
        if len(histograms) > 12:
            parts.append(
                f'<p class="note">… and {len(histograms) - 12} more '
                "histograms</p>"
            )

    series_by_name: Dict[str, List[Series]] = {}
    for metric in registry.all():
        if isinstance(metric, Series):
            series_by_name.setdefault(metric.name, []).append(metric)
    for name in sorted(series_by_name):
        family = series_by_name[name]
        parts.append(f"<h3>{_esc(name)}</h3>")
        lengths = {len(s.samples) for s in family}
        if len(family) > 1 and lengths != {1}:
            # A labeled family sampled on a shared clock: heatmap.
            rows = [
                (_label_text(series), series.values())
                for series in family[:48]
            ]
            parts.append(_svg_heatmap(rows))
            if len(family) > 48:
                parts.append(
                    f'<p class="note">… and {len(family) - 48} more '
                    "series</p>"
                )
        else:
            for series in family[:8]:
                parts.append(
                    f'<p class="note">{_esc(_label_text(series))}</p>'
                )
                parts.append(_svg_sparkline(series.values()))
    parts.append("</section>")
    return "".join(parts)


def _traffic_section(results: Sequence[object]) -> str:
    parts = ["<section><h2>Traffic</h2>"]
    for result in results:
        parts.append(f"<h3>{_esc(result.organization)}</h3>")
        parts.append('<div class="tiles">')
        for label, value in (
            ("requests", _fmt(result.requests)),
            ("clients", _fmt(result.clients)),
            ("cycles", _fmt(result.cycles)),
            ("p50 latency", _fmt(result.p50_latency)),
            ("p90 latency", _fmt(result.p90_latency)),
            ("p99 latency", _fmt(result.p99_latency)),
        ):
            parts.append(_tile(label, value))
        parts.append("</div>")

        if result.component_cycles:
            shares = result.component_shares()
            means = result.mean_component_cycles()
            parts.append(
                "<h3>Where request latency went</h3><table>"
                "<tr><th>component</th><th class=num>cycles</th>"
                "<th class=num>mean/req</th><th class=num>share</th>"
                "<th></th></tr>"
            )
            for name, spent in result.component_cycles.items():
                parts.append(
                    f"<tr><td>{_esc(name)}</td>"
                    f"<td class=num>{_fmt(spent)}</td>"
                    f"<td class=num>{_fmt(means[name])}</td>"
                    f"<td class=num>{shares[name]:.1%}</td>"
                    f"<td>{_share_bar(shares[name])}</td></tr>"
                )
            parts.append("</table>")

        parts.append(
            "<h3>Channels</h3><table>"
            "<tr><th>channel</th><th class=num>bytes</th>"
            "<th class=num>share</th><th class=num>utilization</th>"
            "</tr>"
        )
        utilization = result.channel_utilization
        for index, moved in enumerate(result.channel_bytes):
            util = (
                f"{utilization[index]:.0%}"
                if index < len(utilization) and result.channel_busy_cycles
                else "—"
            )
            parts.append(
                f"<tr><td>{index}</td><td class=num>{_fmt(moved)}</td>"
                f"<td class=num>{result.channel_shares[index]:.1%}</td>"
                f"<td class=num>{util}</td></tr>"
            )
        parts.append("</table>")

        if result.bank_bytes:
            parts.append("<h3>Bytes per bank</h3>")
            parts.append(
                _svg_bars(
                    [
                        (str(bank), float(moved))
                        for bank, moved in sorted(
                            result.bank_bytes.items()
                        )
                    ]
                )
            )
        if result.regulated:
            parts.append(
                f'<p class="note">regulated run: {result.deferrals} '
                "deferrals, worst client-bank rate "
                f"{result.max_client_bank_rate:.3f} B/cyc</p>"
            )
    parts.append("</section>")
    return "".join(parts)


def render_report(
    *,
    ledger: Optional[Ledger] = None,
    metrics: Optional[MetricsRegistry] = None,
    traffic: Sequence[object] = (),
    title: str = "repro run report",
) -> str:
    """Render the inputs into one self-contained HTML document.

    Args:
        ledger: Parsed run ledger (:class:`~repro.obs.ledger.Ledger`).
        metrics: Metrics registry (live, or loaded from a JSONL dump).
        traffic: :class:`~repro.traffic.driver.TrafficResult` objects.
        title: Document title.

    Returns:
        The HTML text.  Raises
        :class:`~repro.errors.ObservabilityError` when every input is
        empty — an empty report would only mask a wiring mistake.
    """
    sections: List[str] = []
    sources: List[str] = []
    if ledger is not None:
        sections.append(_ledger_section(ledger))
        sources.append(f"ledger ({len(ledger.events)} events)")
    if traffic:
        sections.append(_traffic_section(list(traffic)))
        sources.append(f"{len(list(traffic))} traffic result(s)")
    if metrics is not None and len(metrics):
        sections.append(_metrics_section(metrics))
        sources.append(f"{len(metrics)} metric(s)")
    if not sections:
        raise ObservabilityError(
            "nothing to report: provide a ledger, metrics, or traffic "
            "results"
        )
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        f"<title>{_esc(title)}</title>"
        f"<style>{_STYLE}</style></head><body>"
        f"<h1>{_esc(title)}</h1>"
        f'<p class="sub">{_esc(" · ".join(sources))}</p>'
        + "".join(sections)
        + "</body></html>\n"
    )


# ---------------------------------------------------------------------------
# CLI


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-report",
        description=(
            "Render a run ledger, metrics dump, and/or traffic "
            "results into one self-contained HTML report."
        ),
    )
    parser.add_argument(
        "--ledger", metavar="FILE",
        help="run ledger JSONL (execution(ledger=...) / --ledger)",
    )
    parser.add_argument(
        "--metrics", metavar="FILE",
        help="metrics JSONL (write_metrics_jsonl / repro-metrics)",
    )
    parser.add_argument(
        "--traffic", metavar="FILE", action="append", default=[],
        help="TrafficResult JSON (to_dict form); repeatable",
    )
    parser.add_argument(
        "--title", default="repro run report", help="report title"
    )
    parser.add_argument(
        "--out", metavar="FILE", default="repro-report.html",
        help="output HTML path (default repro-report.html)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        ledger = Ledger.load(args.ledger) if args.ledger else None
        metrics = (
            load_metrics_jsonl(args.metrics) if args.metrics else None
        )
        traffic = [_load_traffic(path) for path in args.traffic]
        text = render_report(
            ledger=ledger,
            metrics=metrics,
            traffic=traffic,
            title=args.title,
        )
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
    except ReproError as error:
        sys.stderr.write(f"error: {error}\n")
        return 1
    except OSError as error:
        sys.stderr.write(f"error: {error}\n")
        return 1
    sys.stdout.write(f"wrote {args.out}\n")
    return 0


def _load_traffic(path: str):
    from repro.traffic.driver import TrafficResult

    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as error:
        raise ObservabilityError(
            f"cannot read traffic result: {error}"
        ) from None
    except json.JSONDecodeError as error:
        raise ObservabilityError(
            f"{path}: not a TrafficResult JSON file ({error})"
        ) from None
    if not isinstance(data, Mapping) or "organization" not in data:
        raise ObservabilityError(
            f"{path}: not a TrafficResult (missing 'organization')"
        )
    return TrafficResult.from_dict(data)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
