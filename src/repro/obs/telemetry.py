"""Periodic telemetry: sampled in-flight state and windowed series.

The paper's central quantity — effective bandwidth as a function of
access order — is a *time-varying* signal shaped by bank conflicts,
bus turnarounds, and refresh, but end-of-run totals flatten it.  This
module adds the time axis back, in two complementary ways:

* A **live probe** (:class:`TelemetryProbe`): a passive kernel
  component wired in by :class:`repro.sim.kernel.Simulation` whenever
  the run's :class:`~repro.obs.core.Instrumentation` carries a
  ``telemetry_window``.  At every window boundary the probe samples
  each component implementing :class:`TelemetrySource` (FIFO depths,
  open-bank counts) into the instrumentation's metrics registry.  The
  probe never breaks a deadlock and forces only window-boundary cycle
  visits — safe by the kernel's dense/skip equivalence contract, so an
  attached probe changes no simulation result bit-for-bit.

* **Windowed series** (:func:`build_windowed_series`): computed after
  the run from the exact DATA-bus gap records, by summing the *same*
  classified pieces (:func:`repro.obs.attribution.classify_stall_intervals`)
  that :func:`~repro.obs.attribution.attribute_stalls` sums — so the
  windowed stall series reconcile with the seven-bucket totals
  exactly, by construction, and :func:`build_windowed_series` raises
  :class:`~repro.errors.ObservabilityError` if they ever do not.

Series names all live under the ``telemetry.`` prefix; sample
timestamps are interface-clock cycles (each window's sample is stamped
at the window's first cycle).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Protocol, Tuple, runtime_checkable

from repro.errors import ConfigurationError, ObservabilityError
from repro.obs.attribution import BUCKETS, classify_stall_intervals
from repro.obs.core import Instrumentation, merge_intervals
from repro.obs.metrics import MetricsRegistry


@runtime_checkable
class TelemetrySource(Protocol):
    """Optional sampling hook a kernel component may implement.

    The :class:`TelemetryProbe` calls this at every window boundary;
    implementations write gauges/series into ``metrics`` (FIFO
    occupancy, open banks, in-flight counts — whatever in-flight state
    the component owns).
    """

    def sample_telemetry(self, cycle: int, metrics: MetricsRegistry) -> None:
        """Record this component's in-flight state at ``cycle``."""
        ...


class TelemetryProbe:
    """Passive kernel component sampling sources at window boundaries.

    The probe's pending boundary never counts as forward progress
    (``breaks_deadlock = False``), so it cannot mask a controller
    deadlock; it only adds window-boundary cycles to the visited set,
    which the kernel's dense/skip equivalence contract proves safe.

    Args:
        window: Sampling period in interface-clock cycles.
        metrics: Registry the samples land in (normally the run
            instrumentation's ``metrics``).
        sources: Components to sample at each boundary.
        pending_events: Optional callable returning the number of
            in-flight scheduler events, sampled as
            ``telemetry.events_pending``.
    """

    breaks_deadlock = False

    def __init__(
        self,
        window: int,
        metrics: MetricsRegistry,
        sources: Tuple[TelemetrySource, ...] = (),
        pending_events: Optional[Callable[[], int]] = None,
    ) -> None:
        if window <= 0:
            raise ConfigurationError(
                f"telemetry window must be positive, got {window}"
            )
        self.window = window
        self.metrics = metrics
        self.sources: List[TelemetrySource] = list(sources)
        self._pending_events = pending_events
        self._next_boundary = 0
        self._last_sampled: Optional[int] = None
        self.samples_taken = 0

    def tick(self, cycle: int) -> Tuple[object, ...]:
        if cycle >= self._next_boundary:
            self._sample(cycle)
            self._next_boundary = (cycle // self.window + 1) * self.window
        return ()

    @property
    def next_action_cycle(self) -> int:
        return self._next_boundary

    def finish_observation(self, end_cycle: int) -> None:
        """Take one closing sample at the run's logical end."""
        if self._last_sampled is None or end_cycle > self._last_sampled:
            self._sample(end_cycle)

    def _sample(self, cycle: int) -> None:
        self.samples_taken += 1
        self._last_sampled = cycle
        if self._pending_events is not None:
            self.metrics.series(
                "telemetry.events_pending",
                help="scheduler events in flight at window boundaries",
            ).sample(cycle, float(self._pending_events()))
        for source in self.sources:
            source.sample_telemetry(cycle, self.metrics)


def build_windowed_series(
    obs: Instrumentation,
    window: Optional[int] = None,
    cycles: Optional[int] = None,
    last_data_end: Optional[int] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Compute exact windowed series from a completed run's records.

    Emits, per window of ``window`` cycles (stamped at the window's
    first cycle; the last window may be partial):

    * ``telemetry.busy_cycles`` — DATA-bus cycles carrying packets.
    * ``telemetry.stall_cycles{bucket=...}`` — idle cycles per stall
      bucket, including ``drain``; windowed sums reconcile exactly
      with :func:`~repro.obs.attribution.attribute_stalls`.
    * ``telemetry.data_bus_utilization`` — busy fraction of the window.
    * ``telemetry.effective_bandwidth_pct_peak`` — useful bytes
      delivered per window as a percentage of the 4 B/cycle peak.
    * ``telemetry.bank_active_cycles{bank=...}`` — cycles each bank
      held an open row (from the tracer's ``bankN`` row spans).
    * ``telemetry.refresh_busy_cycles`` — cycles covered by refresh
      spans.

    Args:
        obs: Instrumentation from a completed run (engine-filled
            ``cycles``/``last_data_end`` metadata, gaps, tracer spans).
        window: Window length; defaults to ``obs.telemetry_window``.
        cycles: Override the run's total cycles.
        last_data_end: Override the end of the last DATA packet.
        metrics: Registry to emit into; defaults to ``obs.metrics``.

    Returns:
        The registry the series were written to.

    Raises:
        ObservabilityError: If required metadata is missing or the
            windowed accounting does not close (instrumentation bug).
        ConfigurationError: If the window is not positive.
    """
    if window is None:
        window = getattr(obs, "telemetry_window", None)
    if window is None or window <= 0:
        raise ConfigurationError(
            "windowed telemetry needs a positive window "
            "(set Instrumentation.telemetry_window or pass window=)"
        )
    if cycles is None:
        cycles = obs.meta.get("cycles")  # type: ignore[assignment]
    if last_data_end is None:
        last_data_end = obs.meta.get("last_data_end")  # type: ignore[assignment]
    if cycles is None or last_data_end is None:
        raise ObservabilityError(
            "windowed telemetry needs a completed instrumented run: "
            "'cycles' and 'last_data_end' metadata are missing"
        )
    cycles = int(cycles)
    last_data_end = int(last_data_end)
    if metrics is None:
        metrics = obs.metrics

    count = max(1, -(-cycles // window))

    def window_len(index: int) -> int:
        return min(window, cycles - index * window) if cycles else 0

    def spread(
        totals: List[int], intervals: List[Tuple[int, int]]
    ) -> None:
        """Add each [lo, hi) interval's cycles into per-window totals."""
        for lo, hi in intervals:
            lo, hi = max(lo, 0), min(hi, count * window)
            w = lo // window
            while lo < hi:
                edge = min(hi, (w + 1) * window)
                totals[w] += edge - lo
                lo = edge
                w += 1

    # Stall buckets, from the same classified pieces attribution sums.
    bucket_totals = {name: [0] * count for name in BUCKETS}
    for lo, hi, name in classify_stall_intervals(obs):
        spread(bucket_totals[name], [(lo, hi)])
    spread(bucket_totals["drain"], [(last_data_end, cycles)])

    # Busy intervals: the complement of the gaps in [0, last_data_end).
    busy_intervals: List[Tuple[int, int]] = []
    prev = 0
    for gap in sorted(obs.gaps, key=lambda g: g.start):
        if gap.start > prev:
            busy_intervals.append((prev, gap.start))
        prev = max(prev, gap.end)
    if last_data_end > prev:
        busy_intervals.append((prev, last_data_end))
    busy_totals = [0] * count
    spread(busy_totals, busy_intervals)

    closure = sum(busy_totals) + sum(
        sum(totals) for totals in bucket_totals.values()
    )
    if closure != cycles:
        raise ObservabilityError(
            "windowed telemetry does not close: busy + buckets = "
            f"{closure} windowed cycles, run cycles = {cycles}"
        )

    useful = float(obs.meta.get("useful_bytes", 0) or 0)
    transferred = float(obs.meta.get("transferred_bytes", 0) or 0)
    useful_fraction = useful / transferred if transferred > 0 else 1.0

    busy_series = metrics.series(
        "telemetry.busy_cycles",
        help="DATA-bus cycles carrying packets, per window",
    )
    util_series = metrics.series(
        "telemetry.data_bus_utilization",
        help="busy fraction of the DATA bus, per window",
    )
    bw_series = metrics.series(
        "telemetry.effective_bandwidth_pct_peak",
        help="useful bytes delivered per window, % of 4 B/cycle peak",
    )
    stall_series = {
        name: metrics.series(
            "telemetry.stall_cycles",
            help="idle DATA-bus cycles per stall bucket, per window",
            bucket=name,
        )
        for name in BUCKETS
    }
    for index in range(count):
        t = index * window
        length = window_len(index)
        busy = busy_totals[index]
        busy_series.sample(t, float(busy))
        util = busy / length if length else 0.0
        util_series.sample(t, util)
        bw_series.sample(t, 100.0 * util * useful_fraction)
        for name in BUCKETS:
            stall_series[name].sample(t, float(bucket_totals[name][index]))

    # Per-bank open-row occupancy and refresh coverage, from spans.
    for track in obs.tracer.tracks():
        if not track.startswith("bank"):
            continue
        spans = merge_intervals(
            (span.start, span.end)
            for span in obs.tracer.spans_on(track, "row")
        )
        totals = [0] * count
        spread(totals, spans)
        series = metrics.series(
            "telemetry.bank_active_cycles",
            help="cycles the bank held an open row, per window",
            bank=track[len("bank"):],
        )
        for index in range(count):
            series.sample(index * window, float(totals[index]))
    refresh_spans = merge_intervals(
        (span.start, span.end)
        for span in obs.tracer.spans_on("refresh", "refresh")
    )
    if refresh_spans:
        totals = [0] * count
        spread(totals, refresh_spans)
        series = metrics.series(
            "telemetry.refresh_busy_cycles",
            help="cycles covered by background refresh, per window",
        )
        for index in range(count):
            series.sample(index * window, float(totals[index]))

    return metrics


def finalize_telemetry(obs: Optional[Instrumentation]) -> None:
    """Build the run's windowed series if telemetry was requested.

    Called by the engines after they record run metadata; a no-op when
    ``obs`` is None or carries no ``telemetry_window``, so detached
    and window-less runs pay nothing.
    """
    if obs is None:
        return
    window = getattr(obs, "telemetry_window", None)
    if not window:
        return
    obs.meta.setdefault("telemetry_window", window)
    build_windowed_series(obs, window=window)
