"""Stall attribution: an exact account of every DATA-bus cycle.

The paper's whole argument is about where cycles go — bus turnarounds,
precharge/activate latency, FIFO stalls — so this pass classifies
*every* cycle of a run into exactly one bucket:

``busy``
    The DATA bus carried a packet.
``turnaround``
    Idle under the write-to-read t_RW turnaround (these agree exactly
    with :attr:`repro.sim.metrics.TraceMetrics.turnaround_cycles`).
``refresh``
    Idle while a background refresh held the row bus or a bank.
``precharge_activate``
    Idle waiting on bank state: a precharge and/or activate (plus
    t_RCD) had to complete before the next column access.  The run's
    startup latency lands here.
``command_bus``
    Idle because the COL command bus (or an explicit retire slot) was
    occupied.
``fifo``
    The device was ready but the MSU had no serviceable FIFO: every
    read FIFO was full (or covered by in-flight data) and every write
    FIFO lacked a full packet.
``scheduler_idle``
    The device was ready and some FIFO was serviceable, but the
    controller had not asked yet — decision pacing and the fixed
    command-to-data pipeline of a late request.
``drain``
    After the last DATA packet: the processor draining the read FIFOs'
    remaining elements.

The buckets plus ``busy`` sum *exactly* to the run's total cycles;
:func:`attribute_stalls` raises
:class:`~repro.errors.ObservabilityError` if they do not, so the
accounting can never silently drift from the simulator.

Mechanically: the device records one :class:`~repro.obs.core.DataBusGap`
per idle interval, carrying the first cycle at which each scheduling
constraint stopped blocking the access that ended the gap.  Each gap is
partitioned front to back — the leading ``min(gap, t_RW)`` cycles of a
write-to-read flip are turnaround, then cycles covered by a refresh
span are refresh, then cycles below the bank-readiness bound are
precharge/activate, then command-bus cycles, and the controller-side
remainder is split into ``fifo`` and ``scheduler_idle`` using the MSU's
recorded idle spans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import ObservabilityError
from repro.obs.core import Instrumentation, covers, merge_intervals

#: Bucket names in reporting order (``busy`` and ``total`` are
#: presented alongside but are not stall buckets).
BUCKETS = (
    "turnaround",
    "refresh",
    "precharge_activate",
    "command_bus",
    "fifo",
    "scheduler_idle",
    "drain",
)

_DESCRIPTIONS = {
    "busy": "DATA packets on the bus",
    "turnaround": "write-to-read t_RW turnarounds",
    "refresh": "background refresh interference",
    "precharge_activate": "precharge/activate (+t_RCD) latency",
    "command_bus": "COL command-bus occupancy",
    "fifo": "no serviceable FIFO (full reads / empty writes)",
    "scheduler_idle": "controller pacing and request latency",
    "drain": "processor draining FIFOs after the last packet",
}


@dataclass(frozen=True)
class StallAttribution:
    """Exact decomposition of a run's cycles.

    Attributes:
        cycles: The run's total cycles (``SimulationResult.cycles``).
        busy: Cycles the DATA bus carried packets.
        buckets: Idle cycles per stall bucket (see module docstring).
    """

    cycles: int
    busy: int
    buckets: Dict[str, int]

    @property
    def total(self) -> int:
        """busy + all buckets; equals :attr:`cycles` by construction."""
        return self.busy + sum(self.buckets.values())

    @property
    def idle(self) -> int:
        """Total idle DATA-bus cycles."""
        return self.cycles - self.busy

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly form embedded in exports."""
        return {
            "cycles": self.cycles,
            "busy": self.busy,
            "buckets": dict(self.buckets),
        }

    def table(self) -> str:
        """Human-readable bucket table."""
        return format_stall_table(self.as_dict())


@dataclass(frozen=True)
class AccessMix:
    """Row-buffer outcome rates for an instrumented run.

    Every column access the device issues is classified at the shared
    access path (:func:`repro.rdram.device.perform_access`): a *page
    hit* found its row already open, a *page miss* had to activate,
    and a miss that additionally had to precharge a different open row
    first is also a *bank conflict*.  The page-management policy layer
    exists to move these rates, so they are first-class observables.

    Attributes:
        page_hits: Accesses whose row was already open.
        page_misses: Accesses that activated a row.
        bank_conflicts: Precharges forced by conflicting open rows
            (target bank or a doubled-bank neighbor).
        autocloses: Precharges a runtime page manager issued on its
            own (e.g. the timeout policy's expiries).
    """

    page_hits: int
    page_misses: int
    bank_conflicts: int
    autocloses: int

    @property
    def accesses(self) -> int:
        """Total classified column accesses."""
        return self.page_hits + self.page_misses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses served from an open row."""
        return self.page_hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that activated."""
        return self.page_misses / self.accesses if self.accesses else 0.0

    @property
    def conflict_rate(self) -> float:
        """Forced precharges per access (can exceed miss_rate's share
        contribution on doubled-bank parts, where one access may close
        both a target row and a neighbor)."""
        return self.bank_conflicts / self.accesses if self.accesses else 0.0

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly form embedded in exports and reports."""
        return {
            "page_hits": self.page_hits,
            "page_misses": self.page_misses,
            "bank_conflicts": self.bank_conflicts,
            "autocloses": self.autocloses,
            "page_hit_rate": self.hit_rate,
            "page_miss_rate": self.miss_rate,
            "bank_conflict_rate": self.conflict_rate,
        }

    def summary(self) -> str:
        """One-line human-readable rate report."""
        return (
            f"{self.accesses} accesses: "
            f"{self.hit_rate:.1%} page hits, "
            f"{self.miss_rate:.1%} page misses, "
            f"{self.conflict_rate:.1%} bank conflicts"
            + (f", {self.autocloses} autocloses" if self.autocloses else "")
        )


def access_mix(obs: Instrumentation) -> AccessMix:
    """The run's row-buffer outcome rates, from the device counters.

    Args:
        obs: Instrumentation attached to a completed run.

    Returns:
        The access mix; all-zero if the run issued no accesses through
        the shared access path.
    """
    return AccessMix(
        page_hits=obs.counters.get("device.page_hits"),
        page_misses=obs.counters.get("device.page_misses"),
        bank_conflicts=obs.counters.get("device.bank_conflicts"),
        autocloses=obs.counters.get("device.autoclose"),
    )


def format_stall_table(stalls: Mapping[str, object]) -> str:
    """Render a stalls dict (see :meth:`StallAttribution.as_dict`)."""
    cycles = int(stalls["cycles"])  # type: ignore[arg-type]
    busy = int(stalls["busy"])  # type: ignore[arg-type]
    buckets: Mapping[str, int] = stalls["buckets"]  # type: ignore[assignment]
    lines = ["stall attribution (DATA-bus cycles):"]

    def row(name: str, count: int) -> str:
        share = 100.0 * count / cycles if cycles else 0.0
        return (
            f"  {name:<20s} {count:>8d}  {share:6.2f}%"
            f"  {_DESCRIPTIONS.get(name, '')}"
        )

    lines.append(row("busy", busy))
    for name in BUCKETS:
        lines.append(row(name, int(buckets.get(name, 0))))
    total = busy + sum(int(buckets.get(name, 0)) for name in BUCKETS)
    lines.append(f"  {'total':<20s} {total:>8d}  ==  {cycles} run cycles")
    return "\n".join(lines)


def attribute_stalls(
    obs: Instrumentation,
    cycles: Optional[int] = None,
    last_data_end: Optional[int] = None,
) -> StallAttribution:
    """Classify every cycle of an instrumented run.

    Args:
        obs: Instrumentation from a completed run (the engine fills in
            the required ``cycles`` / ``last_data_end`` metadata).
        cycles: Override the run's total cycles.
        last_data_end: Override the end of the last DATA packet.

    Returns:
        The attribution; ``busy`` plus the buckets sums exactly to
        ``cycles``.

    Raises:
        ObservabilityError: If required metadata is missing or the
            accounting does not close (which would indicate an
            instrumentation bug, not a slow run).
    """
    if cycles is None:
        cycles = obs.meta.get("cycles")  # type: ignore[assignment]
    if last_data_end is None:
        last_data_end = obs.meta.get("last_data_end")  # type: ignore[assignment]
    if cycles is None or last_data_end is None:
        raise ObservabilityError(
            "stall attribution needs a completed instrumented run: "
            "'cycles' and 'last_data_end' metadata are missing "
            "(pass the Instrumentation to run_smc / simulate "
            "before attributing)"
        )
    cycles = int(cycles)
    last_data_end = int(last_data_end)

    buckets: Dict[str, int] = {name: 0 for name in BUCKETS}
    gap_total = sum(gap.length for gap in obs.gaps)
    for lo, hi, name in classify_stall_intervals(obs):
        buckets[name] += hi - lo

    busy = last_data_end - gap_total
    buckets["drain"] = cycles - last_data_end

    data_packets = obs.counters.get("device.data_packets")
    t_pack = obs.meta.get("t_pack")
    if t_pack is not None and data_packets * int(t_pack) != busy:  # type: ignore[arg-type]
        raise ObservabilityError(
            "stall attribution does not close: "
            f"{data_packets} DATA packets x t_pack {t_pack} != "
            f"{busy} busy cycles"
        )

    attribution = StallAttribution(cycles=cycles, busy=busy, buckets=buckets)
    if attribution.total != cycles:
        raise ObservabilityError(
            "stall attribution does not close: busy + buckets = "
            f"{attribution.total}, run cycles = {cycles}"
        )
    return attribution


def classify_stall_intervals(
    obs: Instrumentation,
) -> List[Tuple[int, int, str]]:
    """Classify every idle DATA-bus interval of an instrumented run.

    The single source of truth for gap classification: both
    :func:`attribute_stalls` (run totals) and the windowed telemetry
    series (:func:`repro.obs.telemetry.build_windowed_series`) sum
    these same pieces, so windowed stall series reconcile with the
    seven-bucket totals *exactly*, by construction.

    Args:
        obs: Instrumentation from a completed run.

    Returns:
        Disjoint ``(start, end, bucket)`` pieces in bus order, one
        classification per piece, covering every recorded gap cycle.
        The ``drain`` tail is not included (it is not a gap; callers
        append it from ``cycles``/``last_data_end`` metadata).
    """
    fifo_spans = merge_intervals(
        (span.start, span.end)
        for span in obs.tracer.spans_on("msu", "idle:fifo")
    )
    refresh_spans = merge_intervals(
        (span.start, span.end)
        for span in obs.tracer.spans_on("refresh", "refresh")
    )

    pieces: List[Tuple[int, int, str]] = []
    for gap in obs.gaps:
        cursor = gap.start
        # Leading turnaround portion: exactly min(gap, t_RW) cycles,
        # matching TraceMetrics.turnaround_cycles.
        lead = min(max(gap.turnaround_until, cursor), gap.end)
        if lead > cursor:
            pieces.append((cursor, lead, "turnaround"))
        cursor = lead
        if cursor >= gap.end:
            continue
        for lo, hi in _subintervals(
            cursor,
            gap.end,
            (gap.bank_until, gap.colbus_until, gap.request_until),
            refresh_spans,
            fifo_spans,
        ):
            mid = lo  # bounds are constant over the subinterval
            if covers(mid, refresh_spans):
                name = "refresh"
            elif mid < gap.bank_until:
                name = "precharge_activate"
            elif mid < gap.colbus_until:
                name = "command_bus"
            elif covers(mid, fifo_spans):
                name = "fifo"
            else:
                name = "scheduler_idle"
            pieces.append((lo, hi, name))
    return pieces


def _subintervals(
    lo: int,
    hi: int,
    bounds: Tuple[int, ...],
    *span_lists: List[Tuple[int, int]],
) -> List[Tuple[int, int]]:
    """Split [lo, hi) at every constraint bound and span edge, so each
    returned piece has a single classification."""
    points = {lo, hi}
    for bound in bounds:
        if lo < bound < hi:
            points.add(bound)
    for spans in span_lists:
        for start, end in spans:
            if lo < start < hi:
                points.add(start)
            if lo < end < hi:
                points.add(end)
    ordered = sorted(points)
    return list(zip(ordered, ordered[1:]))
