"""Metrics registry: counters, gauges, histograms, and time series.

:mod:`repro.obs.core` collects *per-event* observability (spans, gap
records, raw counters); this module is the *aggregated* layer the
telemetry probe (:mod:`repro.obs.telemetry`) and the sweep executor
(:mod:`repro.exec.pool`) report into.  A :class:`MetricsRegistry`
holds four metric kinds:

* :class:`Counter` — monotonic counts (specs executed, cache hits),
* :class:`Gauge` — last-write-wins point values (worker utilization),
* :class:`Histogram` — fixed-bucket distributions with interpolated
  p50/p90/p99 (per-spec wall time),
* :class:`Series` — timestamped samples (windowed bandwidth, FIFO
  depth over time); timestamps are interface-clock cycles for
  simulation telemetry and seconds for executor metrics.

Metrics are identified by ``(name, labels)``; labels are free-form
key/value pairs (``bank="3"``, ``stream="x"``) so one logical metric
can fan out per bank or per stream without inventing name suffixes.

Three on-disk forms are supported (see :func:`to_prometheus`,
:func:`write_metrics_jsonl` / :func:`load_metrics_jsonl`, and
:func:`write_metrics_csv`); JSONL round-trips exactly, which the
``repro-metrics`` CLI relies on.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.errors import ObservabilityError

#: Label sets are stored canonically as sorted (key, value) tuples.
Labels = Tuple[Tuple[str, str], ...]

#: Default histogram bucket upper bounds for wall-clock seconds
#: (log-spaced 1 ms .. 60 s); values above the last bound land in the
#: implicit overflow bucket.
DEFAULT_TIME_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


def _canonical_labels(labels: Mapping[str, object]) -> Labels:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, labels: Labels = (), help: str = "") -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self.value: Union[int, float] = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self.value += amount

    def state(self) -> Dict[str, object]:
        return {"value": self.value}

    def restore(self, state: Mapping[str, object]) -> None:
        self.value = state["value"]  # type: ignore[assignment]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Counter):
            return NotImplemented
        return (self.name, self.labels, self.value) == (
            other.name, other.labels, other.value
        )


class Gauge:
    """A point-in-time value (last write wins)."""

    kind = "gauge"

    def __init__(self, name: str, labels: Labels = (), help: str = "") -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = value

    def state(self) -> Dict[str, object]:
        return {"value": self.value}

    def restore(self, state: Mapping[str, object]) -> None:
        self.value = state["value"]  # type: ignore[assignment]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Gauge):
            return NotImplemented
        return (self.name, self.labels, self.value) == (
            other.name, other.labels, other.value
        )


class Histogram:
    """Fixed-bucket distribution with interpolated percentiles.

    Buckets are defined by ascending finite upper bounds; an implicit
    overflow bucket catches values above the last bound.  Percentiles
    are estimated by linear interpolation inside the bucket holding
    the target rank (the Prometheus ``histogram_quantile`` scheme),
    except that ranks landing in the overflow bucket report the
    maximum *observed* value rather than infinity.

    Args:
        name: Metric name.
        bounds: Ascending bucket upper bounds (inclusive).
        labels: Canonical label pairs.
        help: One-line description for exports.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        bounds: Iterable[float] = DEFAULT_TIME_BUCKETS,
        labels: Labels = (),
        help: str = "",
    ) -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        if not self.bounds:
            raise ObservabilityError(
                f"histogram {name!r} needs at least one bucket bound"
            )
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ObservabilityError(
                f"histogram {name!r} bounds must be strictly ascending: "
                f"{self.bounds}"
            )
        if not all(math.isfinite(b) for b in self.bounds):
            raise ObservabilityError(
                f"histogram {name!r} bounds must be finite (the overflow "
                "bucket is implicit)"
            )
        # One count per finite bound, plus the overflow bucket.
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.bucket_counts[index] += 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def quantile(self, q: float) -> float:
        """Estimated value at quantile ``q`` in [0, 1].

        Returns 0.0 for an empty histogram.  The estimate interpolates
        linearly within the bucket containing the target rank, using
        the previous bound (or the minimum observed value for the
        first occupied bucket) as the bucket's lower edge.
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, bound in enumerate(self.bounds):
            in_bucket = self.bucket_counts[i]
            if cumulative + in_bucket >= rank and in_bucket > 0:
                lo = self.bounds[i - 1] if i > 0 else (
                    min(self.min or 0.0, bound)
                )
                fraction = (rank - cumulative) / in_bucket
                return lo + fraction * (bound - lo)
            cumulative += in_bucket
        # Rank lands in the overflow bucket: the best finite answer is
        # the largest value actually seen.
        return self.max if self.max is not None else self.bounds[-1]

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p90(self) -> float:
        return self.quantile(0.90)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def state(self) -> Dict[str, object]:
        return {
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    def restore(self, state: Mapping[str, object]) -> None:
        self.bucket_counts = list(state["bucket_counts"])  # type: ignore[arg-type]
        self.count = int(state["count"])  # type: ignore[arg-type]
        self.sum = float(state["sum"])  # type: ignore[arg-type]
        self.min = state["min"]  # type: ignore[assignment]
        self.max = state["max"]  # type: ignore[assignment]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return (
            self.name, self.labels, self.bounds, self.bucket_counts,
            self.count, self.sum, self.min, self.max,
        ) == (
            other.name, other.labels, other.bounds, other.bucket_counts,
            other.count, other.sum, other.min, other.max,
        )


class Series:
    """Timestamped samples of one signal."""

    kind = "series"

    def __init__(self, name: str, labels: Labels = (), help: str = "") -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self.samples: List[Tuple[float, float]] = []

    def sample(self, t: float, value: float) -> None:
        """Append one (timestamp, value) sample."""
        self.samples.append((t, value))

    @property
    def last(self) -> Optional[float]:
        """Most recent sampled value, or None if empty."""
        return self.samples[-1][1] if self.samples else None

    def values(self) -> List[float]:
        return [value for _, value in self.samples]

    def total(self) -> float:
        """Sum of all sampled values (for windowed-rate reconciliation)."""
        return sum(value for _, value in self.samples)

    def state(self) -> Dict[str, object]:
        return {"samples": [[t, v] for t, v in self.samples]}

    def restore(self, state: Mapping[str, object]) -> None:
        self.samples = [
            (t, v) for t, v in state["samples"]  # type: ignore[union-attr]
        ]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Series):
            return NotImplemented
        return (self.name, self.labels, self.samples) == (
            other.name, other.labels, other.samples
        )


Metric = Union[Counter, Gauge, Histogram, Series]

_KINDS = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
    "series": Series,
}


class MetricsRegistry:
    """Get-or-create registry of named, labeled metrics.

    Accessors are idempotent: asking for an existing ``(name, labels)``
    pair returns the same object, so hot paths can re-resolve by name
    without caching handles (though caching them is cheaper).  A name
    is bound to one metric kind; re-registering it as another kind
    raises :class:`~repro.errors.ObservabilityError`.
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, Labels], Metric] = {}

    def counter(self, name: str, help: str = "", **labels: object) -> Counter:
        """The counter registered under ``(name, labels)``."""
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: object) -> Gauge:
        """The gauge registered under ``(name, labels)``."""
        return self._get(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        bounds: Iterable[float] = DEFAULT_TIME_BUCKETS,
        help: str = "",
        **labels: object,
    ) -> Histogram:
        """The histogram registered under ``(name, labels)``.

        ``bounds`` applies only on first registration; a later lookup
        with different bounds raises, since silently mixing bucket
        layouts would corrupt the distribution.
        """
        key = (name, _canonical_labels(labels))
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise ObservabilityError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            if tuple(float(b) for b in bounds) != existing.bounds:
                raise ObservabilityError(
                    f"histogram {name!r} already registered with bounds "
                    f"{existing.bounds}"
                )
            return existing
        metric = Histogram(name, bounds=bounds, labels=key[1], help=help)
        self._metrics[key] = metric
        return metric

    def series(self, name: str, help: str = "", **labels: object) -> Series:
        """The time series registered under ``(name, labels)``."""
        return self._get(Series, name, help, labels)

    def _get(self, cls, name: str, help: str, labels: Mapping[str, object]):
        key = (name, _canonical_labels(labels))
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ObservabilityError(
                    f"metric {name!r} already registered as {existing.kind}, "
                    f"not {cls.kind}"
                )
            return existing
        metric = cls(name, labels=key[1], help=help)
        self._metrics[key] = metric
        return metric

    def all(self) -> List[Metric]:
        """Every registered metric, sorted by (name, labels)."""
        return [self._metrics[key] for key in sorted(self._metrics)]

    def find(self, name: str) -> List[Metric]:
        """All metrics registered under ``name`` (any labels)."""
        return [m for m in self.all() if m.name == name]

    def names(self) -> List[str]:
        """Distinct metric names, sorted."""
        return sorted({name for name, _ in self._metrics})

    def __len__(self) -> int:
        return len(self._metrics)

    def __bool__(self) -> bool:
        # An empty registry is falsy but still a registry; explicit so
        # `if obs.metrics` reads as "has anything been recorded".
        return bool(self._metrics)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricsRegistry):
            return NotImplemented
        return self._metrics == other._metrics


# ---------------------------------------------------------------------------
# Exporters


def _prom_name(name: str) -> str:
    """A Prometheus-safe metric name (dots and dashes to underscores)."""
    text = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    if text and text[0].isdigit():
        text = "_" + text
    return text


def _prom_escape(value: str) -> str:
    """Escape a label value per the text exposition format.

    Backslash first — escaping it later would double the marks the
    other two replacements introduce.
    """
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_labels(labels: Labels, extra: Optional[Tuple[Tuple[str, str], ...]] = None) -> str:
    pairs = list(labels) + list(extra or ())
    if not pairs:
        return ""
    body = ",".join(
        f'{_prom_name(k)}="{_prom_escape(str(v))}"' for k, v in pairs
    )
    return "{" + body + "}"


def _prom_value(value: float) -> str:
    if isinstance(value, int):
        return str(value)
    if value == math.inf:
        return "+Inf"
    return repr(float(value))


def to_prometheus(registry: MetricsRegistry, prefix: str = "repro") -> str:
    """Render the registry in the Prometheus text exposition format.

    Counters and gauges export directly; histograms export cumulative
    ``_bucket{le=...}`` lines plus ``_sum``/``_count``; a time series
    exports its *last* sample as a gauge (Prometheus scrapes are
    point-in-time — use the JSONL/CSV forms for full series).

    Args:
        registry: The metrics to render.
        prefix: Namespace prepended to every metric name.

    Returns:
        The exposition text, terminated by a newline (empty registry
        renders to an empty string).
    """
    lines: List[str] = []
    typed: Dict[str, str] = {}

    def header(metric: Metric, prom_type: str, full: str) -> None:
        if full in typed:
            if typed[full] != prom_type:
                raise ObservabilityError(
                    f"metric name {full!r} exported as both "
                    f"{typed[full]} and {prom_type}"
                )
            return
        typed[full] = prom_type
        if metric.help:
            lines.append(f"# HELP {full} {metric.help}")
        lines.append(f"# TYPE {full} {prom_type}")

    for metric in registry.all():
        full = f"{_prom_name(prefix)}_{_prom_name(metric.name)}" if prefix else _prom_name(metric.name)
        if isinstance(metric, Counter):
            header(metric, "counter", full)
            lines.append(
                f"{full}{_prom_labels(metric.labels)} "
                f"{_prom_value(metric.value)}"
            )
        elif isinstance(metric, Gauge):
            header(metric, "gauge", full)
            lines.append(
                f"{full}{_prom_labels(metric.labels)} "
                f"{_prom_value(metric.value)}"
            )
        elif isinstance(metric, Histogram):
            header(metric, "histogram", full)
            cumulative = 0
            for bound, count in zip(
                metric.bounds, metric.bucket_counts
            ):
                cumulative += count
                lines.append(
                    f"{full}_bucket"
                    f"{_prom_labels(metric.labels, (('le', _prom_value(float(bound))),))} "
                    f"{cumulative}"
                )
            lines.append(
                f"{full}_bucket"
                f"{_prom_labels(metric.labels, (('le', '+Inf'),))} "
                f"{metric.count}"
            )
            lines.append(
                f"{full}_sum{_prom_labels(metric.labels)} "
                f"{_prom_value(metric.sum)}"
            )
            lines.append(
                f"{full}_count{_prom_labels(metric.labels)} {metric.count}"
            )
        elif isinstance(metric, Series):
            header(metric, "gauge", full)
            last = metric.last
            if last is not None:
                lines.append(
                    f"{full}{_prom_labels(metric.labels)} "
                    f"{_prom_value(last)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def metrics_records(registry: MetricsRegistry) -> List[Dict[str, object]]:
    """The registry as JSON-safe records (one per metric)."""
    records: List[Dict[str, object]] = []
    for metric in registry.all():
        record: Dict[str, object] = {
            "type": metric.kind,
            "name": metric.name,
            "labels": dict(metric.labels),
        }
        if metric.help:
            record["help"] = metric.help
        record.update(metric.state())
        records.append(record)
    return records


def registry_from_records(
    records: Iterable[Mapping[str, object]]
) -> MetricsRegistry:
    """Rebuild a :class:`MetricsRegistry` from :func:`metrics_records`."""
    registry = MetricsRegistry()
    for record in records:
        kind = record.get("type")
        cls = _KINDS.get(str(kind))
        if cls is None:
            continue  # unknown record types are skipped; format can grow
        name = str(record["name"])
        labels = {
            str(k): str(v)
            for k, v in (record.get("labels") or {}).items()  # type: ignore[union-attr]
        }
        help_text = str(record.get("help", ""))
        if cls is Histogram:
            metric = registry.histogram(
                name, bounds=record["bounds"], help=help_text, **labels  # type: ignore[arg-type]
            )
        elif cls is Counter:
            metric = registry.counter(name, help=help_text, **labels)
        elif cls is Gauge:
            metric = registry.gauge(name, help=help_text, **labels)
        else:
            metric = registry.series(name, help=help_text, **labels)
        metric.restore(record)
    return registry


def write_metrics_jsonl(path: str, registry: MetricsRegistry) -> int:
    """Write one JSON object per metric; returns the record count.

    The inverse of :func:`load_metrics_jsonl`: every metric kind,
    including full series samples and histogram buckets, round-trips
    exactly.
    """
    records = metrics_records(registry)
    try:
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
    except OSError as error:
        raise ObservabilityError(
            f"cannot write metrics file: {error}"
        ) from None
    return len(records)


def load_metrics_jsonl(path: str) -> MetricsRegistry:
    """Read a :func:`write_metrics_jsonl` file back into a registry."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        raise ObservabilityError(
            f"cannot read metrics file: {error}"
        ) from None
    records = []
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as error:
            raise ObservabilityError(
                f"{path}:{number}: not a JSONL metrics record ({error})"
            ) from None
    return registry_from_records(records)


def write_metrics_csv(path: str, registry: MetricsRegistry) -> int:
    """Write the registry as flat CSV rows; returns the row count.

    Series emit one row per sample (``name,labels,t,value``); scalar
    metrics emit a single row with an empty timestamp; histograms emit
    one row per percentile plus count/sum.  Convenient for pandas or a
    spreadsheet; use JSONL for lossless round-trips.
    """
    rows: List[Tuple[str, str, str, str]] = []
    for metric in registry.all():
        label_text = ";".join(f"{k}={v}" for k, v in metric.labels)
        if isinstance(metric, Series):
            for t, value in metric.samples:
                rows.append((metric.name, label_text, repr(t), repr(value)))
        elif isinstance(metric, Histogram):
            for stat, value in (
                ("count", float(metric.count)),
                ("sum", metric.sum),
                ("p50", metric.p50),
                ("p90", metric.p90),
                ("p99", metric.p99),
            ):
                rows.append(
                    (f"{metric.name}.{stat}", label_text, "", repr(value))
                )
        else:
            rows.append((metric.name, label_text, "", repr(metric.value)))
    try:
        with open(path, "w", encoding="utf-8", newline="") as handle:
            handle.write("metric,labels,t,value\n")
            for row in rows:
                handle.write(",".join(row) + "\n")
    except OSError as error:
        raise ObservabilityError(
            f"cannot write metrics file: {error}"
        ) from None
    return len(rows)
