"""Trace inspection command line, installed as ``repro-trace``.

Reads a run exported by ``repro-simulate --trace-out`` (Chrome/Perfetto
trace JSON) or by :func:`repro.obs.export.write_jsonl` and prints its
summary, stall-attribution buckets, counters, or events::

    repro-trace /tmp/t.json                 # run summary
    repro-trace /tmp/t.json --stalls        # stall bucket table
    repro-trace /tmp/t.json --counters      # named counters
    repro-trace /tmp/t.json --spans 20      # first 20 span events
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.errors import ObservabilityError, ReproError
from repro.obs.attribution import format_stall_table
from repro.obs.export import TraceDocument, load_trace_file


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description=(
            "Inspect a simulator trace exported as Chrome/Perfetto "
            "trace JSON or JSONL."
        ),
    )
    parser.add_argument("file", help="trace.json or .jsonl file to inspect")
    parser.add_argument("--stalls", action="store_true",
                        help="print the stall-attribution bucket table")
    parser.add_argument("--counters", action="store_true",
                        help="print all named counters")
    parser.add_argument("--spans", type=int, nargs="?", const=20,
                        default=None, metavar="N",
                        help="print the first N span events (default 20)")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _run(args)
    except ReproError as error:
        sys.stderr.write(f"error: {error}\n")
        return 1


def _run(args) -> int:
    document = load_trace_file(args.file)
    printed = False
    if args.stalls:
        if document.stalls is None:
            raise ObservabilityError(
                f"{args.file!r} carries no stall-attribution data; "
                "re-export the run with repro-simulate --trace-out "
                "(or embed stalls in the JSONL)"
            )
        print(format_stall_table(document.stalls))
        printed = True
    if args.counters:
        if not document.counters:
            raise ObservabilityError(
                f"{args.file!r} carries no counters"
            )
        width = max(len(name) for name in document.counters)
        for name in sorted(document.counters):
            print(f"{name:<{width}s}  {document.counters[name]}")
        printed = True
    if args.spans is not None:
        for span in document.spans[: args.spans]:
            detail = " ".join(f"{k}={v}" for k, v in span.args)
            print(
                f"[{span.start:>7d}, {span.end:>7d})  "
                f"{span.track:<12s} {span.name}"
                + (f"  ({detail})" if detail else "")
            )
        printed = True
    if not printed:
        _summary(args.file, document)
    return 0


def _summary(path: str, document: TraceDocument) -> None:
    print(f"trace        : {path}")
    for key in ("kernel", "organization", "policy", "cycles",
                "last_data_end"):
        if key in document.meta:
            print(f"{key:<13s}: {document.meta[key]}")
    print(
        f"events       : {len(document.spans)} spans, "
        f"{len(document.instants)} instants, "
        f"{len(document.counters)} counters, "
        f"{len(document.gauges)} gauges"
    )
    if document.stalls is not None:
        print(format_stall_table(document.stalls))


if __name__ == "__main__":
    raise SystemExit(main())
