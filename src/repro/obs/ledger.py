"""Append-only run ledger: one JSONL event per lifecycle transition.

The exec pool reports *transient* progress (a stderr line, a callback);
the ledger is its *durable* counterpart — an append-only JSONL file in
which every sweep point leaves a timestamped trail of lifecycle events:

``queued``
    The point entered a :func:`~repro.exec.pool.run_specs` batch.
``cache_hit``
    The point was served from the result cache without simulating.
``dispatched``
    The point was handed to a backend (a pool worker or the in-process
    serial path).
``started``
    Simulation of the point began (for pooled runs the start time is
    reconstructed on the parent's clock from the worker's wall time).
``retried``
    A worker crash forced the point back into the queue; ``attempt``
    counts how many crashes it has been involved in.
``completed``
    The point finished; ``wall_s`` is the in-worker simulation time.
``failed``
    Crashes exhausted the point's retry budget.

Every event carries a monotonic timestamp ``t`` (seconds since the
writer opened), the batch number, the point's index within its batch,
and its canonical cache key, so a reader can reconstruct exactly which
specs ran, which were cache hits, and where the wall-clock went —
without having watched the run.  Two meta events frame the stream:
``ledger_open`` (one per writer, with wall-clock provenance) and
``batch`` (one per :func:`~repro.exec.pool.run_specs` call).

Writing is opt-in and bit-neutral: the ledger only ever *observes* a
run (results, cache keys, and cache contents are untouched), the same
contract ``telemetry_window`` obeys.  Enable it ambiently::

    from repro.exec import execution
    with execution(workers=4, ledger="run.jsonl"):
        sweep.run()

or via ``repro-experiments --ledger run.jsonl``, then read it back::

    from repro.obs.ledger import Ledger
    ledger = Ledger.load("run.jsonl")
    print(ledger.summary())
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import (
    Any,
    Callable,
    Dict,
    IO,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ObservabilityError

#: Lifecycle event names, in the order a spec can emit them.
LIFECYCLE_EVENTS = (
    "queued",
    "cache_hit",
    "dispatched",
    "started",
    "retried",
    "completed",
    "failed",
)

#: Stream-framing events (not part of any one spec's lifecycle).
#: ``generation`` frames one policy-search generation (see
#: :mod:`repro.search`).
META_EVENTS = ("ledger_open", "batch", "generation")

#: Events that end a spec's lifecycle.
TERMINAL_EVENTS = ("cache_hit", "completed", "failed")

#: Current on-disk schema version, written into ``ledger_open``.
LEDGER_VERSION = 1


class LedgerWriter:
    """Appends lifecycle events to a JSONL file as they happen.

    Each record is flushed immediately, so a crashed or killed run
    still leaves a readable trail up to its last event.  Writers only
    ever append; pointing two runs at the same path yields one file
    with two ``ledger_open`` framings, which :class:`Ledger` reads as
    two runs.

    Args:
        path: JSONL file to append to (created if missing).
    """

    def __init__(self, path: Union[str, "os.PathLike[str]"]) -> None:
        self.path = os.fspath(path)
        try:
            self._file: Optional[IO[str]] = open(
                self.path, "a", encoding="utf-8"
            )
        except OSError as error:
            raise ObservabilityError(
                f"cannot open ledger file: {error}"
            ) from None
        self._epoch = time.monotonic()
        self._batches = 0
        self.events = 0
        self._write(
            {
                "event": "ledger_open",
                "t": 0.0,
                "version": LEDGER_VERSION,
                "pid": os.getpid(),
                "utc": datetime.now(timezone.utc).isoformat(
                    timespec="seconds"
                ),
            }
        )

    def now(self) -> float:
        """Seconds of monotonic time since the writer opened."""
        return time.monotonic() - self._epoch

    def begin_batch(self, total: int, workers: int) -> int:
        """Frame a new batch; returns its number (0-based per writer)."""
        batch = self._batches
        self._batches += 1
        self.record("batch", batch=batch, total=total, workers=workers)
        return batch

    def record(
        self, event: str, t: Optional[float] = None, **fields: object
    ) -> float:
        """Append one event; returns the timestamp written.

        Args:
            event: One of :data:`LIFECYCLE_EVENTS` or
                :data:`META_EVENTS`.
            t: Explicit timestamp (seconds since open); defaults to
                :meth:`now`.  Used to back-date ``started`` events
                reconstructed from worker wall times.
            **fields: Event payload (batch, index, key, worker, ...).
        """
        if event not in LIFECYCLE_EVENTS and event not in META_EVENTS:
            raise ObservabilityError(f"unknown ledger event {event!r}")
        stamp = self.now() if t is None else t
        self._write({"event": event, "t": round(stamp, 6), **fields})
        return stamp

    def _write(self, record: Dict[str, object]) -> None:
        if self._file is None:
            raise ObservabilityError(
                f"ledger {self.path!r} is closed; no further events "
                "can be recorded"
            )
        self._file.write(json.dumps(record) + "\n")
        self._file.flush()
        self.events += 1

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "LedgerWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LedgerWriter({self.path!r}, events={self.events})"


@dataclass(frozen=True)
class LedgerEvent:
    """One parsed ledger record.

    Attributes:
        event: Event name (see module docstring).
        t: Monotonic seconds since the writer opened.
        run: Which ``ledger_open`` framing the event belongs to
            (0-based), for files appended to by several runs.
        fields: The remaining payload, verbatim.
    """

    event: str
    t: float
    run: int
    fields: Mapping[str, Any] = field(default_factory=dict)

    @property
    def batch(self) -> Optional[int]:
        value = self.fields.get("batch")
        return None if value is None else int(value)

    @property
    def index(self) -> Optional[int]:
        value = self.fields.get("index")
        return None if value is None else int(value)

    @property
    def key(self) -> Optional[str]:
        value = self.fields.get("key")
        return None if value is None else str(value)

    @property
    def label(self) -> Optional[str]:
        value = self.fields.get("label")
        return None if value is None else str(value)

    @property
    def worker(self) -> Optional[str]:
        value = self.fields.get("worker")
        return None if value is None else str(value)

    @property
    def wall_s(self) -> Optional[float]:
        value = self.fields.get("wall_s")
        return None if value is None else float(value)


#: A spec occurrence is identified by (run, batch, index): the same
#: canonical key may legitimately appear in many batches.
LifecycleKey = Tuple[int, int, int]


@dataclass(frozen=True)
class BatchSummary:
    """Per-batch critical-path digest.

    Attributes:
        run: ``ledger_open`` framing the batch belongs to.
        batch: Batch number within its run.
        total: Points in the batch (from the ``batch`` event).
        cache_hits: Points served from the cache.
        completed: Points simulated to completion.
        failed: Points that exhausted their retry budget.
        elapsed_s: First ``queued`` to last terminal event.
        critical_label: Label (or key) of the point whose completion
            ended the batch — the batch's critical path.
        critical_wall_s: That point's in-worker wall time.
    """

    run: int
    batch: int
    total: int
    cache_hits: int
    completed: int
    failed: int
    elapsed_s: float
    critical_label: Optional[str]
    critical_wall_s: Optional[float]


class Ledger:
    """A parsed ledger file, with lifecycle and utilization views."""

    def __init__(self, events: Sequence[LedgerEvent]) -> None:
        self.events: List[LedgerEvent] = list(events)

    @classmethod
    def load(cls, path: Union[str, "os.PathLike[str]"]) -> "Ledger":
        """Parse a :class:`LedgerWriter` file."""
        name = os.fspath(path)
        try:
            with open(name, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as error:
            raise ObservabilityError(
                f"cannot read ledger file: {error}"
            ) from None
        events: List[LedgerEvent] = []
        run = -1
        for number, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ObservabilityError(
                    f"{name}:{number}: not a JSONL ledger record ({error})"
                ) from None
            if not isinstance(record, dict) or "event" not in record:
                raise ObservabilityError(
                    f"{name}:{number}: ledger record has no 'event' field"
                )
            event = str(record.pop("event"))
            t = float(record.pop("t", 0.0))
            if event == "ledger_open":
                run += 1
            if run < 0:
                raise ObservabilityError(
                    f"{name}:{number}: event before any ledger_open"
                )
            events.append(
                LedgerEvent(event=event, t=t, run=run, fields=record)
            )
        return cls(events)

    # -- basic views ----------------------------------------------------

    def counts(self) -> Dict[str, int]:
        """Event occurrences by name."""
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.event] = out.get(event.event, 0) + 1
        return out

    @property
    def runs(self) -> int:
        """Number of ``ledger_open`` framings in the file."""
        return sum(1 for e in self.events if e.event == "ledger_open")

    @property
    def cache_hits(self) -> int:
        """Points served from the cache."""
        return self.counts().get("cache_hit", 0)

    def spec_keys(self) -> List[str]:
        """Canonical keys of every queued point, in queue order."""
        return [
            e.key
            for e in self.events
            if e.event == "queued" and e.key is not None
        ]

    def lifecycles(self) -> Dict[LifecycleKey, List[LedgerEvent]]:
        """Lifecycle events grouped per (run, batch, index) occurrence."""
        out: Dict[LifecycleKey, List[LedgerEvent]] = {}
        for event in self.events:
            if event.event not in LIFECYCLE_EVENTS:
                continue
            if event.batch is None or event.index is None:
                continue
            key = (event.run, event.batch, event.index)
            out.setdefault(key, []).append(event)
        return out

    # -- invariants -----------------------------------------------------

    def verify(self) -> List[str]:
        """Check lifecycle invariants; returns human-readable problems.

        An empty list means the ledger is well-formed: every occurrence
        starts with ``queued``, timestamps never run backwards within a
        lifecycle, a terminal event (``cache_hit`` / ``completed`` /
        ``failed``) appears at most once and nothing follows it, and
        ``started`` is always preceded by ``dispatched``.
        """
        problems: List[str] = []
        for key, events in sorted(self.lifecycles().items()):
            where = "run {0} batch {1} index {2}".format(*key)
            if events[0].event != "queued":
                problems.append(
                    f"{where}: first event is {events[0].event!r}, "
                    "not 'queued'"
                )
            last_t = None
            seen: List[str] = []
            for event in events:
                if last_t is not None and event.t < last_t:
                    problems.append(
                        f"{where}: {event.event!r} at t={event.t} runs "
                        f"backwards past t={last_t}"
                    )
                last_t = event.t
                if seen and seen[-1] in TERMINAL_EVENTS:
                    problems.append(
                        f"{where}: {event.event!r} follows terminal "
                        f"{seen[-1]!r}"
                    )
                if event.event == "started" and "dispatched" not in seen:
                    problems.append(
                        f"{where}: 'started' without a prior 'dispatched'"
                    )
                seen.append(event.event)
            terminals = [e for e in seen if e in TERMINAL_EVENTS]
            if len(terminals) > 1:
                problems.append(
                    f"{where}: {len(terminals)} terminal events {terminals}"
                )
        return problems

    # -- time accounting ------------------------------------------------

    def worker_busy(self) -> Dict[str, float]:
        """Seconds each worker spent simulating (summed ``wall_s``)."""
        busy: Dict[str, float] = {}
        for event in self.events:
            if event.event != "completed":
                continue
            worker = event.worker or "?"
            busy[worker] = busy.get(worker, 0.0) + (event.wall_s or 0.0)
        return busy

    def elapsed_s(self) -> float:
        """First to last lifecycle event, across all runs and batches."""
        stamps = [
            e.t for e in self.events if e.event in LIFECYCLE_EVENTS
        ]
        return (max(stamps) - min(stamps)) if stamps else 0.0

    def worker_utilization(self) -> Dict[str, float]:
        """Fraction of the ledger's elapsed span each worker was busy."""
        elapsed = self.elapsed_s()
        if elapsed <= 0.0:
            return {worker: 0.0 for worker in self.worker_busy()}
        return {
            worker: min(1.0, busy / elapsed)
            for worker, busy in self.worker_busy().items()
        }

    def batch_summaries(self) -> List[BatchSummary]:
        """Critical-path digest of every batch, in stream order."""
        frames: Dict[Tuple[int, int], int] = {}
        for event in self.events:
            if event.event == "batch" and event.batch is not None:
                frames[(event.run, event.batch)] = int(
                    event.fields.get("total", 0)
                )
        grouped: Dict[Tuple[int, int], List[LedgerEvent]] = {}
        for event in self.events:
            if event.event not in LIFECYCLE_EVENTS:
                continue
            if event.batch is None:
                continue
            grouped.setdefault((event.run, event.batch), []).append(event)
        labels: Dict[LifecycleKey, str] = {}
        for key, events in self.lifecycles().items():
            for event in events:
                if event.label is not None:
                    labels[key] = event.label
                    break
                if event.key is not None:
                    labels.setdefault(key, event.key)
        summaries: List[BatchSummary] = []
        for (run, batch), events in sorted(grouped.items()):
            terminals = [e for e in events if e.event in TERMINAL_EVENTS]
            first = min(e.t for e in events)
            critical = max(terminals, key=lambda e: e.t, default=None)
            critical_key: Optional[LifecycleKey] = None
            if critical is not None and critical.index is not None:
                critical_key = (run, batch, critical.index)
            summaries.append(
                BatchSummary(
                    run=run,
                    batch=batch,
                    total=frames.get(
                        (run, batch),
                        len({e.index for e in events}),
                    ),
                    cache_hits=sum(
                        1 for e in events if e.event == "cache_hit"
                    ),
                    completed=sum(
                        1 for e in events if e.event == "completed"
                    ),
                    failed=sum(1 for e in events if e.event == "failed"),
                    elapsed_s=(
                        max(e.t for e in terminals) - first
                        if terminals
                        else 0.0
                    ),
                    critical_label=(
                        labels.get(critical_key)
                        if critical_key is not None
                        else None
                    ),
                    critical_wall_s=(
                        critical.wall_s if critical is not None else None
                    ),
                )
            )
        return summaries

    def summary(self) -> str:
        """Multi-line human-readable digest."""
        counts = self.counts()
        lines = [
            "ledger: {0} events, {1} run(s), {2} batch(es)".format(
                len(self.events),
                self.runs,
                counts.get("batch", 0),
            ),
            "  queued {0}, cache hits {1}, completed {2}, failed {3}, "
            "retried {4}".format(
                counts.get("queued", 0),
                counts.get("cache_hit", 0),
                counts.get("completed", 0),
                counts.get("failed", 0),
                counts.get("retried", 0),
            ),
        ]
        utilization = self.worker_utilization()
        for worker in sorted(utilization):
            lines.append(
                f"  worker {worker}: "
                f"{self.worker_busy()[worker]:.3f}s busy "
                f"({utilization[worker]:.0%} of span)"
            )
        for batch in self.batch_summaries():
            critical = (
                f"; critical path {batch.critical_label}"
                + (
                    f" ({batch.critical_wall_s:.3f}s)"
                    if batch.critical_wall_s is not None
                    else ""
                )
                if batch.critical_label is not None
                else ""
            )
            lines.append(
                f"  batch {batch.run}/{batch.batch}: {batch.total} point(s), "
                f"{batch.cache_hits} cached, {batch.completed} simulated "
                f"in {batch.elapsed_s:.3f}s{critical}"
            )
        return "\n".join(lines)


#: Signature of the pool's internal event emitter (see exec.pool).
LedgerNote = Callable[..., Optional[float]]
