"""Core instrumentation primitives: counters, gauges, and events.

The observability layer is *opt-in and zero-cost when disabled*: every
instrumented component holds an ``obs`` attribute that defaults to
``None``, and each hook is guarded by a single ``if self.obs is not
None`` check, so uninstrumented runs pay one predictable branch per
hook site and allocate nothing.  To instrument a run, construct an
:class:`Instrumentation` and pass it to
:func:`repro.sim.engine.run_smc` (or
:func:`repro.sim.runner.simulate`, or
:class:`repro.naturalorder.controller.NaturalOrderController`); the
engine wires it to every component for you.

Three kinds of data are collected:

* **Counters and gauges** (:class:`CounterRegistry`) — monotonic named
  counts (packets issued, activations, refreshes) and time-stamped
  value samples (FIFO occupancy over time).
* **Events** (:class:`EventTracer`) — named, timestamped
  :class:`SpanEvent` intervals and :class:`InstantEvent` points on
  named tracks ("msu", "cpu", "bank3", "refresh", ...), exportable to
  Chrome/Perfetto trace JSON.
* **DATA-bus gaps** (:class:`DataBusGap`) — one record per idle
  interval on the DATA bus, carrying the constraint decomposition the
  device computed when it scheduled the access that ended the gap.
  The stall-attribution pass (:mod:`repro.obs.attribution`) turns
  these into an exact cycle-by-cycle account of where bandwidth went.

All timestamps are interface-clock cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry


class CounterRegistry:
    """Named monotonic counters and time-stamped gauge series."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, List[Tuple[int, float]]] = {}

    def incr(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at zero)."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (zero if never touched)."""
        return self._counters.get(name, 0)

    def sample_gauge(self, name: str, cycle: int, value: float) -> None:
        """Append one (cycle, value) sample to gauge ``name``."""
        self._gauges.setdefault(name, []).append((cycle, value))

    @property
    def counters(self) -> Dict[str, int]:
        """All counters, by name."""
        return dict(self._counters)

    @property
    def gauges(self) -> Dict[str, List[Tuple[int, float]]]:
        """All gauge series, by name."""
        return {name: list(series) for name, series in self._gauges.items()}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CounterRegistry):
            return NotImplemented
        return (
            self._counters == other._counters
            and self._gauges == other._gauges
        )


@dataclass(frozen=True, eq=True)
class SpanEvent:
    """A named interval on a track.

    Attributes:
        track: Logical timeline the span belongs to ("msu", "cpu",
            "bank0"..., "refresh", "controller").
        name: Event name ("RD x", "idle:fifo", "row 12", ...).
        start: First cycle of the span.
        end: First cycle after the span.
        args: Extra key/value detail carried into exports.
    """

    track: str
    name: str
    start: int
    end: int
    args: Tuple[Tuple[str, object], ...] = ()

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass(frozen=True, eq=True)
class InstantEvent:
    """A named point event on a track."""

    track: str
    name: str
    cycle: int
    args: Tuple[Tuple[str, object], ...] = ()


class EventTracer:
    """Collects span and instant events in emission order."""

    def __init__(self) -> None:
        self.spans: List[SpanEvent] = []
        self.instants: List[InstantEvent] = []

    def add_span(
        self, track: str, name: str, start: int, end: int, **args: object
    ) -> None:
        """Record a finished span (``end`` is exclusive)."""
        self.spans.append(
            SpanEvent(
                track=track,
                name=name,
                start=start,
                end=end,
                args=tuple(sorted(args.items())),
            )
        )

    def add_instant(
        self, track: str, name: str, cycle: int, **args: object
    ) -> None:
        """Record a point event."""
        self.instants.append(
            InstantEvent(
                track=track,
                name=name,
                cycle=cycle,
                args=tuple(sorted(args.items())),
            )
        )

    def spans_on(self, track: str, prefix: str = "") -> List[SpanEvent]:
        """Spans on ``track`` whose name starts with ``prefix``."""
        return [
            span
            for span in self.spans
            if span.track == track and span.name.startswith(prefix)
        ]

    def tracks(self) -> List[str]:
        """All track names, in first-appearance order."""
        seen: Dict[str, None] = {}
        for event in (*self.spans, *self.instants):
            seen.setdefault(event.track, None)
        return list(seen)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventTracer):
            return NotImplemented
        return self.spans == other.spans and self.instants == other.instants


@dataclass(frozen=True)
class DataBusGap:
    """One idle interval on the DATA bus, with its constraint bounds.

    Recorded by the device model when it schedules a DATA packet that
    starts after the bus went idle.  Each ``*_until`` field is the
    first cycle at which the corresponding constraint stopped blocking
    the transfer; the gap's end is the maximum of them (and of
    ``start``), which is exactly how the device schedules.  The
    stall-attribution pass partitions ``[start, end)`` using these
    bounds.

    Attributes:
        start: First idle cycle (end of the previous DATA packet, or 0).
        end: Start cycle of the DATA packet that ended the gap.
        bank: Bank served by the access that ended the gap.
        direction: "read" or "write".
        turnaround_until: Write-to-read t_RW bound (== ``start`` when
            no turnaround applied).
        bank_until: Bank readiness bound — the earliest the bank's
            activate/precharge/t_RCD state allowed data, regardless of
            when the controller asked.
        colbus_until: COL command-bus occupancy bound (including a
            retire slot under ``explicit_retire``).
        request_until: Earliest data had the device been entirely
            unconstrained — the controller's request cycle plus the
            fixed command-to-data pipeline delay.  Idle cycles beyond
            every device bound but below this one are the controller's
            (FIFO stalls, pacing, refresh interference).
    """

    start: int
    end: int
    bank: int
    direction: str
    turnaround_until: int
    bank_until: int
    colbus_until: int
    request_until: int

    @property
    def length(self) -> int:
        return self.end - self.start


class Instrumentation:
    """One run's worth of observability state.

    Create one, pass it to a simulation entry point, then hand it to
    :func:`repro.obs.attribution.attribute_stalls` or the exporters in
    :mod:`repro.obs.export`.

    Attributes:
        counters: Named counters and gauges.
        tracer: Span/instant event collector.
        gaps: DATA-bus idle records, in bus order.
        meta: Run metadata filled in by the engine (kernel,
            organization, cycles, last_data_end, t_pack, t_rw, ...).
        now: Current simulation cycle, maintained by the engine so
            hooks without a cycle argument (FIFO push/pop) can
            timestamp their samples.
        metrics: Time-series registry (:mod:`repro.obs.metrics`) that
            telemetry samples and windowed series land in.
        telemetry_window: Sampling period in cycles; when set, the
            simulation kernel wires a
            :class:`~repro.obs.telemetry.TelemetryProbe` into the run
            and the engine builds windowed series afterwards.  None
            (the default) disables both — runs pay nothing.
    """

    def __init__(self, telemetry_window: Optional[int] = None) -> None:
        if telemetry_window is not None and telemetry_window <= 0:
            raise ConfigurationError(
                "telemetry window must be positive, got "
                f"{telemetry_window}"
            )
        self.counters = CounterRegistry()
        self.tracer = EventTracer()
        self.gaps: List[DataBusGap] = []
        self.meta: Dict[str, object] = {}
        self.now: int = 0
        self.metrics = MetricsRegistry()
        self.telemetry_window = telemetry_window

    def __eq__(self, other: object) -> bool:
        """Equality over the *simulation-determined* record — counters,
        events, and gaps — deliberately ignoring the metrics registry,
        so a telemetry-attached run compares equal to a detached one
        (the basis of the bit-for-bit equivalence tests)."""
        if not isinstance(other, Instrumentation):
            return NotImplemented
        return (
            self.counters == other.counters
            and self.tracer == other.tracer
            and self.gaps == other.gaps
        )


def merge_intervals(
    intervals: Iterable[Tuple[int, int]]
) -> List[Tuple[int, int]]:
    """Merge possibly-overlapping [start, end) intervals, sorted."""
    merged: List[Tuple[int, int]] = []
    for start, end in sorted(intervals):
        if end <= start:
            continue
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def overlap(
    lo: int, hi: int, merged: List[Tuple[int, int]]
) -> int:
    """Total cycles of [lo, hi) covered by merged intervals."""
    covered = 0
    for start, end in merged:
        if start >= hi:
            break
        covered += max(0, min(hi, end) - max(lo, start))
    return covered


def covers(cycle: int, merged: List[Tuple[int, int]]) -> bool:
    """True if ``cycle`` lies inside one of the merged intervals."""
    for start, end in merged:
        if start > cycle:
            return False
        if cycle < end:
            return True
    return False
