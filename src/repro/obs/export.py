"""Exporters and loaders for instrumented runs.

Two on-disk forms are supported:

* **Chrome trace JSON** (:func:`to_chrome_trace` /
  :func:`write_chrome_trace`) — the Trace Event Format understood by
  Perfetto (https://ui.perfetto.dev) and chrome://tracing.  Spans
  become complete ("X") events, instants become "i" events, gauges
  become counter ("C") tracks, and each instrumentation track becomes
  a named thread.  Timestamps map one interface-clock cycle to one
  microsecond tick, so cycle numbers read directly off the Perfetto
  ruler; the real wall time of a cycle (2.5 ns for the paper's -800
  part) is recorded in ``otherData``.
* **JSONL** (:func:`write_jsonl`) — one self-describing JSON object
  per line (``meta``, ``result``, ``stalls``, ``counter``, ``gauge``,
  ``span``, ``instant``), convenient for grep/jq pipelines and
  appending many runs to one log.

:func:`load_trace_file` reads either format back into a
:class:`TraceDocument`, which is what the ``repro-trace`` CLI
consumes.  Counters, spans, instants, gauges, and embedded stall
buckets round-trip exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ObservabilityError
from repro.obs.core import (
    CounterRegistry,
    EventTracer,
    Instrumentation,
    InstantEvent,
    SpanEvent,
)

#: Process id used for all exported events (one run == one process).
_PID = 1


@dataclass
class TraceDocument:
    """An exported run read back from disk.

    Attributes:
        meta: Run metadata (kernel, organization, cycles, ...).
        result: The simulation result fields, if embedded.
        stalls: The stall-attribution dict, if embedded.
        counters: Counter name -> value.
        gauges: Gauge name -> [(cycle, value), ...].
        spans: Span events in file order.
        instants: Instant events in file order.
    """

    meta: Dict[str, object] = field(default_factory=dict)
    result: Optional[Dict[str, object]] = None
    stalls: Optional[Dict[str, object]] = None
    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, List[Tuple[int, float]]] = field(default_factory=dict)
    spans: List[SpanEvent] = field(default_factory=list)
    instants: List[InstantEvent] = field(default_factory=list)


def to_chrome_trace(
    obs: Instrumentation,
    result: Optional[Dict[str, object]] = None,
    stalls: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Build the Chrome trace JSON object for an instrumented run.

    Args:
        obs: Instrumentation from a completed run.
        result: Optional simulation-result dict to embed.
        stalls: Optional stall-attribution dict to embed (from
            :meth:`repro.obs.attribution.StallAttribution.as_dict`).

    Returns:
        A JSON-serializable dict in Trace Event Format.
    """
    events: List[Dict[str, object]] = []
    tids: Dict[str, int] = {}

    def tid_of(track: str) -> int:
        if track not in tids:
            tids[track] = len(tids) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": _PID,
                    "tid": tids[track],
                    "args": {"name": track},
                }
            )
        return tids[track]

    for track in obs.tracer.tracks():
        tid_of(track)
    for span in obs.tracer.spans:
        events.append(
            {
                "name": span.name,
                "cat": span.track,
                "ph": "X",
                "ts": span.start,
                "dur": span.duration,
                "pid": _PID,
                "tid": tid_of(span.track),
                "args": dict(span.args),
            }
        )
    for instant in obs.tracer.instants:
        events.append(
            {
                "name": instant.name,
                "cat": instant.track,
                "ph": "i",
                "s": "t",
                "ts": instant.cycle,
                "pid": _PID,
                "tid": tid_of(instant.track),
                "args": dict(instant.args),
            }
        )
    for name, series in obs.counters.gauges.items():
        for cycle, value in series:
            events.append(
                {
                    "name": name,
                    "ph": "C",
                    "ts": cycle,
                    "pid": _PID,
                    "args": {"value": value},
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "meta": dict(obs.meta),
            "counters": obs.counters.counters,
            "result": result,
            "stalls": stalls,
            "timebase": "1 exported microsecond == 1 interface-clock cycle",
        },
    }


def write_chrome_trace(
    path: str,
    obs: Instrumentation,
    result: Optional[Dict[str, object]] = None,
    stalls: Optional[Dict[str, object]] = None,
) -> int:
    """Write a Chrome/Perfetto ``trace.json``; returns the event count."""
    document = to_chrome_trace(obs, result=result, stalls=stalls)
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
    except OSError as error:
        raise ObservabilityError(
            f"cannot write trace file: {error}"
        ) from None
    return len(document["traceEvents"])  # type: ignore[arg-type]


def write_jsonl(
    path: str,
    obs: Instrumentation,
    result: Optional[Dict[str, object]] = None,
    stalls: Optional[Dict[str, object]] = None,
) -> int:
    """Write one JSON object per line; returns the line count."""
    lines: List[Dict[str, object]] = [{"type": "meta", **obs.meta}]
    if result is not None:
        lines.append({"type": "result", **result})
    if stalls is not None:
        lines.append({"type": "stalls", **stalls})
    for name, value in sorted(obs.counters.counters.items()):
        lines.append({"type": "counter", "name": name, "value": value})
    for name, series in obs.counters.gauges.items():
        lines.append({"type": "gauge", "name": name, "samples": series})
    for span in obs.tracer.spans:
        lines.append(
            {
                "type": "span",
                "track": span.track,
                "name": span.name,
                "start": span.start,
                "end": span.end,
                "args": dict(span.args),
            }
        )
    for instant in obs.tracer.instants:
        lines.append(
            {
                "type": "instant",
                "track": instant.track,
                "name": instant.name,
                "cycle": instant.cycle,
                "args": dict(instant.args),
            }
        )
    try:
        with open(path, "w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(json.dumps(line) + "\n")
    except OSError as error:
        raise ObservabilityError(
            f"cannot write trace file: {error}"
        ) from None
    return len(lines)


def load_trace_file(path: str) -> TraceDocument:
    """Read a Chrome trace JSON or JSONL export back from disk.

    Raises:
        ObservabilityError: If the file is neither format.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        raise ObservabilityError(f"cannot read trace file: {error}") from None
    stripped = text.lstrip()
    if not stripped:
        raise ObservabilityError(f"trace file {path!r} is empty")
    if stripped.startswith("{") and '"traceEvents"' in stripped[:4096]:
        try:
            return _from_chrome(json.loads(text))
        except (json.JSONDecodeError, KeyError, TypeError) as error:
            raise ObservabilityError(
                f"malformed Chrome trace in {path!r}: {error}"
            ) from None
    return _from_jsonl(path, text)


def _args_tuple(args: object) -> Tuple[Tuple[str, object], ...]:
    if not isinstance(args, dict):
        return ()
    return tuple(sorted(args.items()))


def _from_chrome(document: Dict[str, object]) -> TraceDocument:
    other = document.get("otherData") or {}
    loaded = TraceDocument(
        meta=dict(other.get("meta") or {}),
        result=other.get("result"),
        stalls=other.get("stalls"),
        counters=dict(other.get("counters") or {}),
    )
    track_names: Dict[int, str] = {}
    for event in document["traceEvents"]:  # type: ignore[index]
        phase = event.get("ph")
        if phase == "M" and event.get("name") == "thread_name":
            track_names[event["tid"]] = event["args"]["name"]
        elif phase == "X":
            track = track_names.get(event.get("tid"), event.get("cat", ""))
            loaded.spans.append(
                SpanEvent(
                    track=track,
                    name=event["name"],
                    start=event["ts"],
                    end=event["ts"] + event.get("dur", 0),
                    args=_args_tuple(event.get("args")),
                )
            )
        elif phase == "i":
            track = track_names.get(event.get("tid"), event.get("cat", ""))
            loaded.instants.append(
                InstantEvent(
                    track=track,
                    name=event["name"],
                    cycle=event["ts"],
                    args=_args_tuple(event.get("args")),
                )
            )
        elif phase == "C":
            loaded.gauges.setdefault(event["name"], []).append(
                (event["ts"], event["args"]["value"])
            )
    return loaded


def _from_jsonl(path: str, text: str) -> TraceDocument:
    loaded = TraceDocument()
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            kind = record.pop("type")
        except (json.JSONDecodeError, KeyError) as error:
            raise ObservabilityError(
                f"{path}:{number}: not a JSONL trace record ({error})"
            ) from None
        if kind == "meta":
            loaded.meta = record
        elif kind == "result":
            loaded.result = record
        elif kind == "stalls":
            loaded.stalls = record
        elif kind == "counter":
            loaded.counters[record["name"]] = record["value"]
        elif kind == "gauge":
            loaded.gauges[record["name"]] = [
                (cycle, value) for cycle, value in record["samples"]
            ]
        elif kind == "span":
            loaded.spans.append(
                SpanEvent(
                    track=record["track"],
                    name=record["name"],
                    start=record["start"],
                    end=record["end"],
                    args=_args_tuple(record.get("args")),
                )
            )
        elif kind == "instant":
            loaded.instants.append(
                InstantEvent(
                    track=record["track"],
                    name=record["name"],
                    cycle=record["cycle"],
                    args=_args_tuple(record.get("args")),
                )
            )
        # Unknown record types are skipped so the format can grow.
    return loaded


def rebuild_instrumentation(document: TraceDocument) -> Instrumentation:
    """Reconstruct an :class:`Instrumentation` from a loaded export.

    Gap records are not exported, so the result supports event/counter
    inspection but not re-running stall attribution; use the embedded
    ``stalls`` dict for bucket data.
    """
    obs = Instrumentation()
    obs.meta = dict(document.meta)
    registry = CounterRegistry()
    for name, value in document.counters.items():
        registry.incr(name, value)
    for name, series in document.gauges.items():
        for cycle, value in series:
            registry.sample_gauge(name, cycle, value)
    obs.counters = registry
    tracer = EventTracer()
    tracer.spans = list(document.spans)
    tracer.instants = list(document.instants)
    obs.tracer = tracer
    return obs
