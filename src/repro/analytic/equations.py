"""Verbatim transcriptions of the paper's Section 5 equations.

Each function is named after its equation number.  These are kept
exactly as printed so tests and documentation can refer to the paper
line-by-line; note that the printed multi-stream open-page pipeline
equation (5.9) is asymptotically degenerate (it predicts a 100 % limit
for any stream count, contradicting the text's "less than 76 % for PI
systems" for the four-stream kernels), and the printed equation 5.8
omits the t_RP term that its surrounding prose includes.  The
:mod:`repro.analytic.cache` module therefore derives a reconciled
model (documented there) that reproduces the paper's quoted numbers;
this module preserves the printed forms.

Symbols (Section 5): w_p elements per DATA packet, sigma the vector
stride in 64-bit words, L_c words per cacheline, L_P words per RDRAM
page, L_s the stream length, s = s_r + s_w the stream count.
"""

from __future__ import annotations

from repro.rdram.timing import RdramTiming


def eq_5_1_percent_peak(t_avg: float, w_p: int, t_pack: int) -> float:
    """Equation 5.1: % peak bandwidth = 100 / (T * w_p / t_PACK)."""
    if t_avg <= 0:
        raise ValueError("average access time must be positive")
    return 100.0 / (t_avg * w_p / t_pack)


def eq_5_2_t_lcc(timing: RdramTiming, l_c: int, w_p: int) -> int:
    """Equation 5.2: closed-page cacheline access time.

    T_LCC = t_RAC + t_PACK * (L_c / w_p - 1).
    """
    return timing.t_rac + timing.t_pack * (l_c // w_p - 1)


def eq_5_3_single_stream_closed(
    timing: RdramTiming, l_c: int, w_p: int, sigma: int
) -> float:
    """Equation 5.3: average per-word latency, single stream, closed page.

    T = T_LCC / (L_c / sigma) for strides up to the cacheline size;
    beyond the cacheline each line yields a single useful word.
    """
    useful_words = l_c / sigma if sigma <= l_c else 1.0
    return eq_5_2_t_lcc(timing, l_c, w_p) / useful_words


def eq_5_4_t_pipe_closed(
    timing: RdramTiming, l_c: int, w_p: int, s: int
) -> int:
    """Equation 5.4: pipelined group latency, closed page.

    T_pipe = t_RAC + max(t_RR, (L_c / w_p) * t_PACK) * (s - 1).
    """
    per_stream = max(timing.t_rr, (l_c // w_p) * timing.t_pack)
    return timing.t_rac + per_stream * (s - 1)


def eq_5_5_t_last_closed(
    timing: RdramTiming, l_c: int, w_p: int, s: int
) -> int:
    """Equation 5.5: final-group latency, closed page.

    T_last = t_RR * (s - 2) + t_RAC + T_LCC.
    """
    return (
        timing.t_rr * max(s - 2, 0)
        + timing.t_rac
        + eq_5_2_t_lcc(timing, l_c, w_p)
    )


def eq_5_6_cycles_closed(
    timing: RdramTiming, l_c: int, w_p: int, s: int, l_s: int
) -> int:
    """Equation 5.6: total cycles for the computation, closed page.

    cycles = (L_s / L_c - 1) * T_pipe + T_last.
    """
    groups = l_s // l_c
    return (groups - 1) * eq_5_4_t_pipe_closed(
        timing, l_c, w_p, s
    ) + eq_5_5_t_last_closed(timing, l_c, w_p, s)


def eq_5_7_t_lco(timing: RdramTiming, l_c: int, w_p: int) -> int:
    """Equation 5.7: open-page cacheline access time.

    T_LCO = t_CAC + t_PACK * (L_c / w_p - 1).
    """
    return timing.t_cac + timing.t_pack * (l_c // w_p - 1)


def eq_5_8_single_stream_open(
    timing: RdramTiming,
    l_c: int,
    l_p: int,
    w_p: int,
    sigma: int,
    include_t_rp: bool = True,
) -> float:
    """Equation 5.8: average per-word latency, single stream, open page.

    T = (t_RP + T_LCC + T_LCO * (lines - 1)) / (L_p / sigma), where
    *lines* is the number of cachelines the stream touches per page.
    The printed equation omits t_RP but the surrounding prose includes
    it ("This is the time to precharge the page (t_RP), plus ...");
    ``include_t_rp`` selects between the two readings.
    """
    if sigma <= l_c:
        lines = l_p // l_c
    else:
        lines = max(1, l_p // sigma)
    useful_words = l_p / sigma
    overhead = timing.t_rp if include_t_rp else 0
    total = (
        overhead
        + eq_5_2_t_lcc(timing, l_c, w_p)
        + eq_5_7_t_lco(timing, l_c, w_p) * (lines - 1)
    )
    return total / useful_words


def eq_5_9_t_pipe_open(
    timing: RdramTiming, l_c: int, w_p: int, s: int
) -> int:
    """Equation 5.9: pipelined group latency, open page (as printed).

    T_pipe = T_LCO + ((L_c / w_p) * (s - 2) + 1) * t_PACK.

    Note: for every s >= 2 this equals (L_c / w_p) * t_PACK * s, i.e. a
    fully saturated data bus, so as printed it bounds nothing — see the
    module docstring.
    """
    return eq_5_7_t_lco(timing, l_c, w_p) + (
        (l_c // w_p) * (s - 2) + 1
    ) * timing.t_pack


def eq_5_10_t_init_open(
    timing: RdramTiming, l_c: int, w_p: int, s: int
) -> int:
    """Equation 5.10: first-group latency, open page.

    T_init = 2*t_RP + t_RAC + T_LCC + (t_RP + t_RR) * (s - 2).
    """
    return (
        2 * timing.t_rp
        + timing.t_rac
        + eq_5_2_t_lcc(timing, l_c, w_p)
        + (timing.t_rp + timing.t_rr) * max(s - 2, 0)
    )


def eq_5_11_cycles_open(
    timing: RdramTiming, l_c: int, w_p: int, s: int, l_s: int
) -> int:
    """Equation 5.11: total cycles for the computation, open page.

    cycles = T_init + (L_s / L_c - 1) * T_pipe.
    """
    groups = l_s // l_c
    return eq_5_10_t_init_open(timing, l_c, w_p, s) + (
        groups - 1
    ) * eq_5_9_t_pipe_open(timing, l_c, w_p, s)


def eq_5_16_startup_delay_cli(
    timing: RdramTiming, s_r: int, fifo_depth: int, w_p: int
) -> float:
    """Equation 5.16: SMC startup delay, CLI.

    Delta_1 = (s_r - 1) * f * t_PACK / w_p + t_RAC.  The copy
    discussion in Section 6 ("the startup delay here results entirely
    from ... t_RAC ... since there is only one stream being read")
    fixes the parenthesization: the t_RAC term survives at s_r = 1.
    """
    return (s_r - 1) * fifo_depth * timing.t_pack / w_p + timing.t_rac


def eq_5_17_startup_delay_pi(
    timing: RdramTiming, s_r: int, fifo_depth: int, w_p: int
) -> float:
    """Equation 5.17: SMC startup delay, PI (adds the first precharge).

    Delta_1 = (s_r - 1) * f * t_PACK / w_p + t_RAC + t_RP.
    """
    return (
        eq_5_16_startup_delay_cli(timing, s_r, fifo_depth, w_p) + timing.t_rp
    )


def eq_5_18_turnaround_delay(
    timing: RdramTiming, l_s: int, s: int, fifo_depth: int
) -> float:
    """Equation 5.18: total bus-turnaround delay over the computation.

    Delta_2 = t_RW * L_s * (s - 1) / (f * s), from F = f*s/(s-1)
    elements fetched per FIFO service and one turnaround per
    round-robin tour.
    """
    if s < 2:
        return 0.0
    return timing.t_rw * l_s * (s - 1) / (fifo_depth * s)


def eq_5_15_percent_peak(
    timing: RdramTiming, l_s: int, s: int, w_p: int, delta: float
) -> float:
    """Equation 5.15: SMC % peak bandwidth under an extra delay Delta.

    %peak = L_s * (t_PACK / w_p) * s / (Delta + L_s * (t_PACK/w_p) * s).
    """
    base = l_s * (timing.t_pack / w_p) * s
    return 100.0 * base / (delta + base)
