"""Natural-order cacheline access bounds (Section 5.1), reconciled.

The paper's optimistic bounds for a traditional controller that
fetches cachelines in program order.  The model here is a *reconciled*
form of the printed equations: the printed open-page pipeline equation
(5.9) is degenerate (it predicts a saturated data bus for any stream
count) and the closed-page form (5.4-5.6) reproduces none of the
paper's quoted natural-order numbers.  Re-deriving with the read/write
bus-turnaround delay the paper's own Section 6 points to ("loops with
more streams exploit the Direct RDRAM's available concurrency better
by enabling more pipelined loads or stores to be performed between
each bus-turnaround delay") recovers all four quoted values:

* 8 streams, stride 1:  our CLI 76.2 % (paper 76.11 %), our PI 88.9 %
  (paper 88.68 %);
* 8 streams, stride 4:  our CLI 19.0 % (paper 19.03 %), our PI 22.2 %
  (paper 22.17 %).

Model: in steady state the loop body moves one cacheline per stream
per *group*.  Groups pipeline across the device's banks; each group
with at least one write stream pays one write-to-read bus turnaround
(t_RW) plus the read round-trip t_RDLY when the bus switches back.

* closed page (CLI):
    T_group = t_RAC + max(t_RR, (L_c/w_p) * t_PACK) * (s - 1) + X
  — the paper's eq. 5.4 plus the turnaround term X.
* open page (PI): command overheads hide behind open-page data
  streaming, so the group cost is the data itself plus the turnaround:
    T_group = (L_c/w_p) * t_PACK * s + X
  with X = t_RW + t_RDLY when s_w > 0, else 0.

Per-page overheads for PI (precharge and row activation at page
crossings) are ignored, as Section 4.1 assumes ("they can be
overlapped with accesses to other banks").  Dirty-writeback traffic is
ignored, as Section 5.1 does; stores are modeled as full-line writes
following Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.analytic import equations as eq
from repro.memsys.config import (
    ELEMENTS_PER_PACKET,
    Interleaving,
    MemorySystemConfig,
)


@dataclass(frozen=True)
class CacheBound:
    """A natural-order performance bound.

    Attributes:
        percent_of_peak: Percentage of the 1.6 GB/s peak exploited.
        group_cycles: Steady-state cycles per group (one line per
            stream).
        useful_words_per_group: 64-bit words of stream data per group.
        stride: Stride the bound was computed for.
        cycles: Total cycles when a finite length was given, else 0.
    """

    percent_of_peak: float
    group_cycles: float
    useful_words_per_group: float
    stride: int = 1
    cycles: float = 0.0

    @property
    def percent_of_attainable(self) -> float:
        """Relative to the stride-limited attainable ceiling: 100 % of
        peak at stride one, 50 % beyond (used by Figure 9)."""
        if self.stride == 1:
            return self.percent_of_peak
        return min(100.0, 2.0 * self.percent_of_peak)


def useful_words_per_line(config: MemorySystemConfig, stride: int) -> float:
    """Useful 64-bit words a line fill delivers at the given stride."""
    l_c = config.elements_per_cacheline
    if stride <= 0:
        raise ConfigurationError("stride must be positive")
    if stride > l_c:
        return 1.0
    return l_c / stride


def natural_order_bound(
    config: MemorySystemConfig,
    num_read_streams: int,
    num_write_streams: int,
    stride: int = 1,
    length: int = 0,
) -> CacheBound:
    """Bound on % peak for natural-order cacheline accesses.

    Args:
        config: Memory organization (selects the CLI or PI model).
        num_read_streams: The paper's s_r.
        num_write_streams: The paper's s_w.
        stride: Vector stride in 64-bit words.
        length: Vector length for the finite-length correction; 0
            requests the asymptotic bound.

    Returns:
        The bound, including the group decomposition for inspection.
    """
    timing = config.timing
    s = num_read_streams + num_write_streams
    if s < 1:
        raise ConfigurationError("need at least one stream")
    l_c = config.elements_per_cacheline
    w_p = ELEMENTS_PER_PACKET
    packets_per_line = l_c // w_p
    turnaround = timing.t_rw + timing.t_rdly if num_write_streams else 0

    if config.interleaving is Interleaving.CACHELINE:
        if s == 1:
            # No pipelining partner: fall back to the serial line time
            # of eq. 5.2/5.3.
            group = eq.eq_5_2_t_lcc(timing, l_c, w_p) + turnaround
        else:
            group = (
                eq.eq_5_4_t_pipe_closed(timing, l_c, w_p, s) + turnaround
            )
        t_last = eq.eq_5_5_t_last_closed(timing, l_c, w_p, s) + turnaround
        t_init = 0.0
    else:
        group = packets_per_line * timing.t_pack * s + turnaround
        t_last = group
        t_init = eq.eq_5_10_t_init_open(timing, l_c, w_p, max(s, 2))

    useful = s * useful_words_per_line(config, stride)
    total_cycles = 0.0
    if length:
        groups = max(1, length // l_c)
        if config.interleaving is Interleaving.CACHELINE:
            total_cycles = (groups - 1) * group + t_last
        else:
            total_cycles = t_init + groups * group
        total_useful = useful * groups
        percent = 100.0 * (total_useful * 8) / (total_cycles * 4)
    else:
        percent = 100.0 * (useful * 8) / (group * 4)

    return CacheBound(
        percent_of_peak=percent,
        group_cycles=group,
        useful_words_per_group=useful,
        stride=stride,
        cycles=total_cycles,
    )


def single_stream_fill_bound(
    config: MemorySystemConfig,
    stride: int,
    include_page_overhead: bool = True,
) -> float:
    """% peak for natural-order cacheline fills of one stream (Figure 8).

    Implements eq. 5.2/5.3 for closed-page (CLI) systems and
    eq. 5.7/5.8 for open-page (PI) systems.

    Args:
        config: Memory organization.
        stride: Vector stride in 64-bit words.
        include_page_overhead: For PI, whether the per-page t_RP +
            first-line miss cost of eq. 5.8 is charged.  The printed
            equation charges it; the text's claim that the curve "remains
            constant once the stride exceeds the number of words in the
            cacheline" corresponds to dropping it (page misses
            overlapped with accesses to other banks, per Section 4.1).

    Returns:
        Percent of peak bandwidth.
    """
    timing = config.timing
    l_c = config.elements_per_cacheline
    l_p = config.elements_per_page
    w_p = ELEMENTS_PER_PACKET
    if config.interleaving is Interleaving.CACHELINE:
        t_avg = eq.eq_5_3_single_stream_closed(timing, l_c, w_p, stride)
    elif include_page_overhead:
        t_avg = eq.eq_5_8_single_stream_open(timing, l_c, l_p, w_p, stride)
    else:
        useful = useful_words_per_line(config, stride)
        t_avg = eq.eq_5_7_t_lco(timing, l_c, w_p) / useful
    return eq.eq_5_1_percent_peak(t_avg, w_p, timing.t_pack)
