"""Analytic performance models from Section 5 of the paper."""

from repro.analytic.cache import (
    CacheBound,
    natural_order_bound,
    single_stream_fill_bound,
    useful_words_per_line,
)
from repro.analytic.generations import GENERATIONS, RdramGeneration, generations_table
from repro.analytic.smc import SmcBound, smc_bound

__all__ = [
    "CacheBound",
    "natural_order_bound",
    "single_stream_fill_bound",
    "useful_words_per_line",
    "GENERATIONS",
    "RdramGeneration",
    "generations_table",
    "SmcBound",
    "smc_bound",
]
