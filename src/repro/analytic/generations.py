"""Rambus DRAM generations: Base, Concurrent, Direct (Section 2.2).

The paper situates Direct RDRAM in its lineage: "First-generation
Base RDRAMs use a 64-bit or 72-bit internal bus and a 64-to-8 or
72-to-9 bit multiplexer to deliver bandwidth of 500 to 600 Mbytes/sec.
Second-generation Concurrent RDRAMs deliver the same peak bandwidth,
but an improved protocol allows better bandwidth utilization by
handling multiple concurrent transactions.  Current, third-generation
Direct RDRAMs double the external data bus width from 8/9-bits to
16/18-bits and increase the clock frequency from 250/300 MHz to
400 MHz."

This module captures the lineage quantitatively with a first-order
model of cacheline-granularity transactions: peak bandwidth from bus
width x dual-edge clock, and sustained bandwidth limited by (a)
request packets, which on Base/Concurrent parts share the single
multiplexed bus with data, and (b) row-access latency, of which a
generation can hide as much as its outstanding-transaction budget
covers (Base serializes transactions; Concurrent overlaps two;
Direct's packet protocol overlaps four and moves commands to separate
ROW/COL buses — its headline features).  The request-packet size is an
estimate; the Direct entry's sustained figure is cross-checked against
the full cycle-level simulator in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.experiments.rendering import ExperimentTable


@dataclass(frozen=True)
class RdramGeneration:
    """One generation of the Rambus interface.

    Attributes:
        name: Marketing name.
        bus_bytes: External data bus width in bytes.
        clock_mhz: Interface clock; data moves on both edges.
        concurrent_transactions: Transactions the protocol overlaps.
        request_overhead_bytes: Bus-bytes of request packet charged to
            the shared bus per transaction (0 when commands travel on
            separate ROW/COL buses, as on Direct parts).
        row_latency_ns: Row access time (t_RAC-equivalent) the
            protocol must hide per transaction.
        line_bytes: Transaction granularity (one cacheline).
    """

    name: str
    bus_bytes: int
    clock_mhz: int
    concurrent_transactions: int
    request_overhead_bytes: int = 0
    row_latency_ns: float = 50.0
    line_bytes: int = 32

    @property
    def peak_bandwidth_bytes_per_sec(self) -> float:
        """Dual-edge transfer: bytes x 2 edges x clock."""
        return self.bus_bytes * 2 * self.clock_mhz * 1e6

    def sustained_stream_bandwidth(self) -> float:
        """First-order sustained bandwidth for dense cacheline reads.

        Per transaction the shared bus carries the request packet (if
        any) plus the line; the protocol hides row latency behind up
        to ``concurrent_transactions - 1`` overlapped transactions.
        """
        peak = self.peak_bandwidth_bytes_per_sec
        bus_ns = (self.line_bytes + self.request_overhead_bytes) / peak * 1e9
        hidden = min(
            self.row_latency_ns,
            (self.concurrent_transactions - 1) * bus_ns,
        )
        exposed = self.row_latency_ns - hidden
        return self.line_bytes / ((bus_ns + exposed) * 1e-9)

    @property
    def efficiency(self) -> float:
        """Sustained / peak."""
        return self.sustained_stream_bandwidth() / self.peak_bandwidth_bytes_per_sec


#: The three generations as the paper describes them.
GENERATIONS: Dict[str, RdramGeneration] = {
    "base": RdramGeneration(
        name="Base RDRAM",
        bus_bytes=1,
        clock_mhz=300,
        concurrent_transactions=1,
        request_overhead_bytes=8,
    ),
    "concurrent": RdramGeneration(
        name="Concurrent RDRAM",
        bus_bytes=1,
        clock_mhz=300,
        concurrent_transactions=2,
        request_overhead_bytes=8,
    ),
    "direct": RdramGeneration(
        name="Direct RDRAM",
        bus_bytes=2,
        clock_mhz=400,
        concurrent_transactions=4,
        request_overhead_bytes=0,
    ),
}


def generations_table() -> ExperimentTable:
    """Tabulate the lineage (used by the DRAM-generations example)."""
    table = ExperimentTable(
        title="Rambus generations — peak and first-order sustained bandwidth",
        headers=(
            "generation",
            "bus bits",
            "clock MHz",
            "peak MB/s",
            "sustained MB/s",
            "efficiency %",
        ),
    )
    for key in ("base", "concurrent", "direct"):
        generation = GENERATIONS[key]
        table.add_row(
            generation.name,
            generation.bus_bytes * 8,
            generation.clock_mhz,
            round(generation.peak_bandwidth_bytes_per_sec / 1e6),
            round(generation.sustained_stream_bandwidth() / 1e6),
            100.0 * generation.efficiency,
        )
    table.notes.append(
        "Base/Concurrent peak 500-600 MB/s and Direct's 1.6 GB/s match "
        "the paper's Section 2.2; the sustained column is a first-order "
        "protocol-concurrency model (the Direct figure is validated "
        "against the cycle simulator in the tests)."
    )
    return table
