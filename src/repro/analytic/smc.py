"""SMC performance bounds (Section 5.2).

Two limits govern SMC effective bandwidth:

* the **startup delay** Delta_1 — the processor's wait for the first
  element of the last read-stream while the MSU fills a FIFO's worth
  of each earlier read-stream (eq. 5.16 for CLI, 5.17 for PI); it
  grows with FIFO depth and read-stream count but is one-time;
* the **asymptotic bus-turnaround bound** Delta_2 — with deep FIFOs
  and long vectors the only recurring overhead is the t_RW read/write
  turnaround paid once per round-robin tour (eq. 5.18); it shrinks as
  FIFO depth grows.

Both are converted to percent-of-peak with eq. 5.15.  The *combined*
limit charges both delays; its ascending portion (in FIFO depth) is
the asymptotic bound and its descending or flat portion is the
startup bound, exactly the dashed curves of Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.analytic import equations as eq
from repro.memsys.config import (
    ELEMENTS_PER_PACKET,
    Interleaving,
    MemorySystemConfig,
)


@dataclass(frozen=True)
class SmcBound:
    """SMC bandwidth bounds for one configuration.

    Attributes:
        startup_delay: Delta_1 in cycles.
        turnaround_delay: Delta_2 in cycles.
        percent_startup_limit: Bound charging Delta_1 alone.
        percent_asymptotic_limit: Bound charging Delta_2 alone.
        percent_combined_limit: Bound charging both.
    """

    startup_delay: float
    turnaround_delay: float
    percent_startup_limit: float
    percent_asymptotic_limit: float
    percent_combined_limit: float


def smc_bound(
    config: MemorySystemConfig,
    num_read_streams: int,
    num_write_streams: int,
    length: int,
    fifo_depth: int,
    stride: int = 1,
) -> SmcBound:
    """Compute the Section 5.2 bounds for one SMC configuration.

    The paper presents the unit-stride equations and defers non-unit
    strides to Hong's thesis ("see [11] for extensions to non-unit
    strides"); the extension is mechanical: at any stride above one,
    each DATA packet carries a single useful 64-bit element, so the
    effective elements-per-packet w_p drops from 2 to 1, doubling both
    the per-element transfer time in eq. 5.15's base term and the
    FIFO-fill time inside the startup delay.  The resulting limits are
    relative to the stride-limited *attainable* bandwidth (50 % of
    peak), matching Figure 9's y-axis.

    Args:
        config: Memory organization (CLI picks eq. 5.16, PI eq. 5.17).
        num_read_streams: The paper's s_r.
        num_write_streams: The paper's s_w.
        length: Vector length in elements (L_s).
        fifo_depth: FIFO depth in elements (f).
        stride: Vector stride in 64-bit words.

    Returns:
        All three bounds (startup-only, asymptotic-only, combined).
    """
    if fifo_depth <= 0 or length <= 0:
        raise ConfigurationError("length and fifo_depth must be positive")
    if stride <= 0:
        raise ConfigurationError("stride must be positive")
    timing = config.timing
    s = num_read_streams + num_write_streams
    w_p = ELEMENTS_PER_PACKET if stride == 1 else 1
    if config.interleaving is Interleaving.CACHELINE:
        delta_1 = eq.eq_5_16_startup_delay_cli(
            timing, num_read_streams, fifo_depth, w_p
        )
    else:
        delta_1 = eq.eq_5_17_startup_delay_pi(
            timing, num_read_streams, fifo_depth, w_p
        )
    if num_write_streams and num_read_streams:
        delta_2 = eq.eq_5_18_turnaround_delay(timing, length, s, fifo_depth)
    else:
        # A loop with only reads (or only writes) never cycles the bus
        # direction, so no turnaround is ever paid.
        delta_2 = 0.0
    return SmcBound(
        startup_delay=delta_1,
        turnaround_delay=delta_2,
        percent_startup_limit=eq.eq_5_15_percent_peak(
            timing, length, s, w_p, delta_1
        ),
        percent_asymptotic_limit=eq.eq_5_15_percent_peak(
            timing, length, s, w_p, delta_2
        ),
        percent_combined_limit=eq.eq_5_15_percent_peak(
            timing, length, s, w_p, delta_1 + delta_2
        ),
    )
