"""Cache-realistic natural-order controller.

Drives the same in-order, pipelined cacheline transaction model as
:class:`~repro.naturalorder.controller.NaturalOrderController`, but
the transactions come from a real cache model instead of the paper's
idealized assumptions: store misses allocate (fetching the line before
dirtying it), dirty victims generate writeback traffic, and strided or
badly-placed vectors produce the conflict misses Section 6 predicts.

Comparing this controller against the idealized bounds and the SMC
quantifies the paper's closing claim: "When we take non-unit strides,
cache conflicts, and cache writebacks into account, the SMC's
advantages become even more significant."
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, List, Optional

from repro.errors import ConfigurationError
from repro.cache.model import CacheConfig, CacheModel
from repro.cpu.kernels import Kernel
from repro.cpu.streams import (
    Alignment,
    Direction,
    StreamDescriptor,
    place_streams,
)
from repro.memsys.config import ELEMENT_BYTES, MemorySystemConfig
from repro.naturalorder.controller import MAX_OUTSTANDING, NaturalOrderController
from repro.sim.kernel import ResultBuilder
from repro.sim.results import SimulationResult


class CachedNaturalOrderController(NaturalOrderController):
    """Natural-order controller behind a write-allocate data cache.

    Args:
        config: Memory organization.
        cache_config: Cache geometry; its line size must match the
            memory system's cacheline.
        record_trace: Record device packets for auditing.
        refresh: Run a background refresh engine alongside the
            transaction stream.
    """

    POLICY = "cached-natural-order"

    def __init__(
        self,
        config: MemorySystemConfig,
        cache_config: Optional[CacheConfig] = None,
        record_trace: bool = False,
        refresh: bool = False,
    ) -> None:
        super().__init__(config, record_trace=record_trace, refresh=refresh)
        self.cache_config = cache_config or CacheConfig(
            line_bytes=config.cacheline_bytes
        )
        if self.cache_config.line_bytes != config.cacheline_bytes:
            raise ConfigurationError(
                "cache line size must match the memory system cacheline: "
                f"{self.cache_config.line_bytes} != {config.cacheline_bytes}"
            )
        self.cache: Optional[CacheModel] = None

    def run(
        self,
        kernel: Kernel,
        length: int,
        stride: int = 1,
        alignment: Alignment = Alignment.STAGGERED,
        descriptors: Optional[List[StreamDescriptor]] = None,
        flush_at_end: bool = True,
        dense: bool = False,
        engine: str = "auto",
    ) -> SimulationResult:
        """Execute one kernel through the cache.

        Args:
            kernel: The inner loop.
            length: Vector length in elements.
            stride: Stride in elements.
            alignment: Vector base placement.
            descriptors: Pre-placed streams overriding placement.
            flush_at_end: Write every dirty line back when the loop
                finishes (charged to the computation, as a following
                computation would observe it).
            dense: Visit every cycle in the simulation kernel instead
                of skipping to the next transaction start.
            engine: ``"event"``, ``"batch"``, or ``"auto"`` (see
                :func:`repro.sim.batch.resolve_controller_engine`).

        Returns:
            The result; ``bank_conflicts`` reports device-level
            conflicts, while the attached :attr:`cache` carries
            hit/miss/writeback statistics.
        """
        self.device.reset()
        self.cache = CacheModel(self.cache_config)
        if descriptors is None:
            descriptors = place_streams(
                kernel.streams,
                self.config,
                length=length,
                stride=stride,
                alignment=alignment,
            )
        builder = ResultBuilder(
            kernel=kernel.name,
            organization=self.config.describe(),
            length=length,
            stride=stride,
            fifo_depth=0,
            alignment=alignment.value,
            policy=self.POLICY,
        )
        self._simulate(
            self._cached_steps(
                length, descriptors, builder, flush_at_end
            ),
            # Every miss can carry a writeback, plus the final flush.
            max_steps=3 * length * len(descriptors),
            label=f"{self.POLICY}: kernel={kernel.name}, "
            f"org={self.config.describe()}",
            dense=dense,
            engine=engine,
        )

        useful = len(descriptors) * length * ELEMENT_BYTES
        return builder.build(
            cycles=builder.last_data_end,
            useful_bytes=useful,
            transferred_bytes=self.device.bytes_transferred,
            packets_issued=(
                builder.transactions * self.config.packets_per_cacheline
            ),
            refreshes=self.refreshes_issued,
        )

    def _cached_steps(
        self,
        length: int,
        descriptors: List[StreamDescriptor],
        builder: ResultBuilder,
        flush_at_end: bool,
    ) -> Iterator[int]:
        """Generate the cache-filtered transaction stream.

        The cache walk is timing-independent — outcomes depend only on
        the access order — so the generator interleaves cache state
        updates with issues and yields each transaction's start lower
        bound for the kernel's :class:`TransactionPump`.
        """
        cache = self.cache
        assert cache is not None
        line_first_data: Dict[str, int] = {d.name: 0 for d in descriptors}
        outstanding: Deque[int] = deque()
        clock = _ProgramClock()

        def prepare(start_at: int) -> int:
            if len(outstanding) >= MAX_OUTSTANDING:
                start_at = max(start_at, outstanding.popleft())
            return start_at

        def issue(
            line_address: int, direction: Direction, start_at: int
        ) -> int:
            (first_cmd, first_arrival, data_end,
             had_conflict, hits, misses) = self._issue_line(
                line_address, direction, start_at
            )
            builder.transactions += 1
            builder.bank_conflicts += int(had_conflict)
            builder.page_hits += hits
            builder.page_misses += misses
            clock.value = max(clock.value, first_cmd)
            builder.note_data_end(data_end)
            outstanding.append(data_end)
            if direction is Direction.READ:
                builder.note_first_data(first_arrival)
            return first_arrival

        for index in range(length):
            for descriptor in descriptors:
                address = descriptor.element_address(index)
                is_write = descriptor.direction is Direction.WRITE
                outcome = cache.access(address, is_write)
                if outcome.hit:
                    continue
                start_at = clock.value
                if is_write:
                    # Write-allocate: the fill depends on this
                    # iteration's loads only through program order,
                    # but the line fetch itself is a read.
                    dependence = max(
                        (
                            line_first_data[d.name]
                            for d in descriptors
                            if d.direction is Direction.READ
                        ),
                        default=0,
                    )
                    start_at = max(start_at, dependence)
                start_at = prepare(start_at)
                yield start_at
                arrival = issue(outcome.fill_line, Direction.READ, start_at)
                if not is_write:
                    line_first_data[descriptor.name] = arrival
                if outcome.writeback_line is not None:
                    start_at = prepare(clock.value)
                    yield start_at
                    issue(
                        outcome.writeback_line, Direction.WRITE, start_at
                    )

        if flush_at_end:
            for line_address in cache.flush_dirty_lines():
                start_at = prepare(clock.value)
                yield start_at
                issue(line_address, Direction.WRITE, start_at)


class _ProgramClock:
    """Mutable program-order clock shared by the generator's closures."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0
