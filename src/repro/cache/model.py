"""Set-associative writeback cache model.

The paper's natural-order bounds deliberately idealize the cache: they
"ignore the time to write dirty cachelines back to memory" and assume
no conflict misses, while Section 6 notes that strided vectors "are
likely to generate many cache conflicts" and that measuring the impact
"is beyond the scope of this study."  This package goes there: a
plain LRU, write-allocate, writeback cache whose misses and evictions
drive the natural-order controller, so the idealized bounds can be
compared against cache-realistic traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of the modeled data cache.

    Defaults approximate a late-90s L1: 16 KB, direct-mapped, 32-byte
    lines (matching the memory system's cacheline).

    Attributes:
        size_bytes: Total capacity.
        associativity: Ways per set (1 = direct-mapped).
        line_bytes: Line size; must match the memory system's
            cacheline for the traffic model to line up.
    """

    size_bytes: int = 16 * 1024
    associativity: int = 1
    line_bytes: int = 32

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.associativity <= 0 or self.line_bytes <= 0:
            raise ConfigurationError("cache fields must be positive")
        if self.size_bytes % (self.associativity * self.line_bytes):
            raise ConfigurationError(
                "cache size must be a whole number of sets: "
                f"{self.size_bytes} % "
                f"({self.associativity} * {self.line_bytes}) != 0"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_bytes)


@dataclass(frozen=True)
class AccessOutcome:
    """Result of one cache access.

    Attributes:
        hit: True if the line was present.
        fill_line: Line address to fetch from memory (None on hit).
        evicted_line: Victim line address displaced by the fill
            (clean or dirty), or None.
        writeback_line: Dirty victim line address to write back, or
            None (implies ``evicted_line`` when set).
    """

    hit: bool
    fill_line: Optional[int] = None
    evicted_line: Optional[int] = None
    writeback_line: Optional[int] = None


class CacheModel:
    """LRU, write-allocate, writeback cache.

    Args:
        config: Cache geometry.
    """

    def __init__(self, config: Optional[CacheConfig] = None) -> None:
        self.config = config or CacheConfig()
        # Per set: line address -> dirty flag; dict order is LRU order
        # (oldest first), maintained by re-insertion on touch.
        self._sets: List[Dict[int, bool]] = [
            {} for __ in range(self.config.num_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def _set_for(self, line: int) -> Dict[int, bool]:
        return self._sets[line % self.config.num_sets]

    def access(self, address: int, is_write: bool) -> AccessOutcome:
        """Perform one byte-granularity access.

        Returns:
            The fill/writeback traffic the access generates.
        """
        line = address // self.config.line_bytes
        lines = self._set_for(line)
        if line in lines:
            dirty = lines.pop(line) or is_write
            lines[line] = dirty  # move to MRU position
            self.hits += 1
            return AccessOutcome(hit=True)
        self.misses += 1
        evicted_line = None
        writeback_line = None
        if len(lines) >= self.config.associativity:
            victim, victim_dirty = next(iter(lines.items()))
            del lines[victim]
            evicted_line = victim * self.config.line_bytes
            if victim_dirty:
                self.writebacks += 1
                writeback_line = evicted_line
        lines[line] = is_write
        return AccessOutcome(
            hit=False,
            fill_line=line * self.config.line_bytes,
            evicted_line=evicted_line,
            writeback_line=writeback_line,
        )

    def flush_dirty_lines(self) -> List[int]:
        """Drain every dirty line (end-of-computation writebacks).

        Returns:
            Byte addresses of the flushed lines, in set order.
        """
        flushed = []
        for lines in self._sets:
            for line, dirty in list(lines.items()):
                if dirty:
                    flushed.append(line * self.config.line_bytes)
                    lines[line] = False
        self.writebacks += len(flushed)
        return flushed

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that missed."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
