"""Cache-realistic baseline: real misses, conflicts, and writebacks."""

from repro.cache.controller import CachedNaturalOrderController
from repro.cache.model import AccessOutcome, CacheConfig, CacheModel

__all__ = [
    "CachedNaturalOrderController",
    "AccessOutcome",
    "CacheConfig",
    "CacheModel",
]
