"""Compiler front end: loop source -> stream descriptors -> SMC run."""

from repro.compiler.frontend import (
    CANDIDATE_DEPTHS,
    choose_fifo_depth,
    compile_loop,
    simulate_loop,
)
from repro.compiler.stream_detect import ArrayReference, detect_streams

__all__ = [
    "CANDIDATE_DEPTHS",
    "choose_fifo_depth",
    "compile_loop",
    "simulate_loop",
    "ArrayReference",
    "detect_streams",
]
