"""Compiler-side stream detection.

Section 3: "The compiler detects the presence of streams (as in
[Benitez & Davidson's access/execute work]), and generates code to
transmit information about those streams (base address, stride, number
of elements, and whether the stream is being read or written) to the
hardware at runtime."

This module is that detector, for inner loops written as plain Python
assignment syntax over subscripted arrays:

    y[i] = a * x[i] + y[i]                      # daxpy
    x[i] = q + y[i] * (r*zx[i+10] + t*zx[i+11]) # hydro
    x[i], y[i] = y[i], x[i]                     # swap (tuple form)

Rules, matching the SMC's programming model:

* the loop index appears only inside subscripts, and every subscript
  is an affine function ``s*i + c`` of it with s >= 1 and c >= 0;
* a subscripted array reference is a stream: reads on the right-hand
  side (in source order), writes on the left;
* bare names are scalars (held in registers — no memory traffic);
* an array that is both read and written is a read-modify-write
  vector: its read- and write-streams share the vector, exactly the
  paper's footnote ("a read-modify-write vector constitutes two
  streams");
* augmented assignment (``y[i] += x[i]``) is sugar for the
  read-modify-write form;
* indirect subscripts (``x[idx[i]]``), non-affine subscripts
  (``x[i*i]``), and negative strides/offsets are rejected with
  :class:`~repro.errors.CompileError` — the SMC's descriptor format
  cannot express them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import CompileError
from repro.cpu.streams import Direction, StreamSpec


@dataclass(frozen=True)
class ArrayReference:
    """One subscripted array reference found in the loop body.

    Attributes:
        array: Array (vector) name.
        stride_factor: Coefficient s of the affine subscript s*i + c.
        offset: Constant c of the affine subscript.
        direction: READ or WRITE.
        order: Source position, for natural access ordering.
    """

    array: str
    stride_factor: int
    offset: int
    direction: Direction
    order: Tuple[int, int]


def detect_streams(source: str, index: str = "i") -> List[StreamSpec]:
    """Extract the stream declarations from a loop body.

    Args:
        source: One or more assignment statements (newline- or
            semicolon-separated) forming the loop body.
        index: Name of the loop induction variable.

    Returns:
        Stream specs in natural access order: each statement's reads
        in source order, then its writes.

    Raises:
        CompileError: If the body cannot be expressed as streams.
    """
    normalized = "\n".join(
        line.strip() for line in source.strip().splitlines() if line.strip()
    )
    try:
        module = ast.parse(normalized)
    except SyntaxError as error:
        raise CompileError(f"loop body does not parse: {error}") from None
    references: List[ArrayReference] = []
    for statement in module.body:
        references.extend(_statement_references(statement, index))
    if not references:
        raise CompileError("loop body touches no arrays")
    return _references_to_specs(references)


def _statement_references(
    statement: ast.stmt, index: str
) -> List[ArrayReference]:
    if isinstance(statement, ast.Assign):
        if len(statement.targets) != 1:
            raise CompileError("chained assignment is not supported")
        target = statement.targets[0]
        if isinstance(target, ast.Tuple):
            if not isinstance(statement.value, ast.Tuple) or len(
                target.elts
            ) != len(statement.value.elts):
                raise CompileError(
                    "tuple assignment needs matching tuple of values"
                )
            value_nodes = list(statement.value.elts)
            target_nodes = list(target.elts)
        else:
            value_nodes = [statement.value]
            target_nodes = [target]
    elif isinstance(statement, ast.AugAssign):
        # y[i] += x[i]  ==  y[i] = y[i] + x[i]: the target is both a
        # read and a write.
        value_nodes = [statement.value, statement.target]
        target_nodes = [statement.target]
    else:
        raise CompileError(
            f"only assignments are supported, got {type(statement).__name__}"
        )

    references: List[ArrayReference] = []
    for node in value_nodes:
        references.extend(_collect(node, index, Direction.READ))
    for node in target_nodes:
        if isinstance(node, ast.Name):
            continue  # scalar accumulator (e.g. a dot product)
        if not isinstance(node, ast.Subscript):
            raise CompileError(
                "assignment targets must be array elements or scalars"
            )
        references.extend(_collect(node, index, Direction.WRITE))
    return references


def _collect(
    node: ast.AST, index: str, direction: Direction
) -> List[ArrayReference]:
    """All array references under ``node``, in source order."""
    references = []
    for child in ast.walk(node):
        if not isinstance(child, ast.Subscript):
            continue
        if not isinstance(child.value, ast.Name):
            raise CompileError(
                "only simple arrays may be subscripted (no nested or "
                "attribute arrays)"
            )
        _reject_indirect_subscripts(child.slice)
        stride_factor, offset = _affine(child.slice, index)
        references.append(
            ArrayReference(
                array=child.value.id,
                stride_factor=stride_factor,
                offset=offset,
                direction=direction,
                order=(child.lineno, child.col_offset),
            )
        )
    # The loop index must not be used as a bare value.
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Name)
            and child.id == index
            and not _inside_subscript(node, child)
        ):
            raise CompileError(
                f"loop index {index!r} may only appear inside subscripts"
            )
    references.sort(key=lambda ref: ref.order)
    return references


def _inside_subscript(root: ast.AST, target: ast.Name) -> bool:
    """True if ``target`` sits under some Subscript slice of ``root``."""
    for child in ast.walk(root):
        if isinstance(child, ast.Subscript):
            for grandchild in ast.walk(child.slice):
                if grandchild is target:
                    return True
    return False


def _reject_indirect_subscripts(node: ast.AST) -> None:
    """Nested subscripts inside a slice would be indirect addressing."""
    for child in ast.walk(node):
        if isinstance(child, ast.Subscript):
            raise CompileError(
                "indirect (gather/scatter) subscripts are not streams; "
                "the paper points to Impulse-style controllers for those"
            )


def _affine(node: ast.AST, index: str) -> Tuple[int, int]:
    """Evaluate a subscript as s*i + c.

    Returns:
        (s, c) with s >= 1 and c >= 0.

    Raises:
        CompileError: For anything non-affine or out of range.
    """
    coefficient, constant = _linear(node, index)
    if coefficient < 1:
        raise CompileError(
            f"subscript must advance with the loop (coefficient "
            f"{coefficient})"
        )
    if constant < 0:
        raise CompileError(
            f"negative subscript offset {constant} is not supported"
        )
    return coefficient, constant


def _linear(node: ast.AST, index: str) -> Tuple[int, int]:
    if isinstance(node, ast.Name):
        if node.id == index:
            return 1, 0
        raise CompileError(
            f"subscript uses unknown name {node.id!r}; only the loop "
            f"index {index!r} and integer constants are allowed"
        )
    if isinstance(node, ast.Constant):
        if isinstance(node.value, int):
            return 0, node.value
        raise CompileError(f"non-integer subscript constant {node.value!r}")
    if isinstance(node, ast.BinOp):
        left = _linear(node.left, index)
        right = _linear(node.right, index)
        if isinstance(node.op, ast.Add):
            return left[0] + right[0], left[1] + right[1]
        if isinstance(node.op, ast.Sub):
            return left[0] - right[0], left[1] - right[1]
        if isinstance(node.op, ast.Mult):
            if left[0] and right[0]:
                raise CompileError("subscript is not linear in the index")
            if left[0]:
                return left[0] * right[1], left[1] * right[1]
            return right[0] * left[1], right[1] * left[1]
        raise CompileError(
            f"unsupported subscript operator {type(node.op).__name__}"
        )
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        coefficient, constant = _linear(node.operand, index)
        return -coefficient, -constant
    raise CompileError(
        f"unsupported subscript expression {type(node).__name__}"
    )


def _references_to_specs(
    references: List[ArrayReference],
) -> List[StreamSpec]:
    """Turn references into uniquely named specs in access order."""
    directions: Dict[str, set] = {}
    for ref in references:
        directions.setdefault(ref.array, set()).add(ref.direction)
    specs: List[StreamSpec] = []
    seen = set()
    for ref in references:
        rmw = len(directions[ref.array]) == 2
        suffix = ""
        if rmw:
            suffix = ".rd" if ref.direction is Direction.READ else ".wr"
        name = f"{ref.array}{suffix}"
        if ref.offset or ref.stride_factor != 1:
            name = f"{name}@{ref.stride_factor}i+{ref.offset}"
        if name in seen:
            # The same element read twice costs one stream; common
            # subexpressions collapse.
            continue
        seen.add(name)
        specs.append(
            StreamSpec(
                name=name,
                vector=ref.array,
                direction=ref.direction,
                offset=ref.offset,
                stride_factor=ref.stride_factor,
            )
        )
    return specs
