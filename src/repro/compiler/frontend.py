"""Loop-to-SMC compilation front end.

Combines stream detection with kernel construction and FIFO-depth
selection, so a user can go from loop source to a simulated SMC run in
one call:

    >>> from repro.compiler import simulate_loop
    >>> result = simulate_loop("y[i] = a*x[i] + y[i]", length=1024)
    >>> result.kernel
    'loop'
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

from repro.errors import CompileError
from repro.compiler.stream_detect import detect_streams
from repro.cpu.kernels import Kernel
from repro.cpu.streams import Alignment
from repro.analytic.smc import smc_bound
from repro.memsys.config import MemorySystemConfig
from repro.sim.results import SimulationResult
from repro.sim.runner import RunSpec, resolve_config
from repro.sim.runner import simulate as _simulate

#: FIFO depths a hardware SMC plausibly implements.
CANDIDATE_DEPTHS: Tuple[int, ...] = (8, 16, 32, 64, 128, 256)


def compile_loop(source: str, name: str = "loop", index: str = "i") -> Kernel:
    """Compile a loop body into a :class:`~repro.cpu.kernels.Kernel`.

    Args:
        source: Assignment statement(s) forming the loop body.
        name: Kernel name for reports.
        index: Loop induction variable name.

    Returns:
        A kernel whose streams are the detected array references, in
        natural access order.

    Raises:
        CompileError: If the body cannot be expressed as streams.
    """
    specs = detect_streams(source, index=index)
    return Kernel(
        name=name,
        expression="; ".join(line.strip() for line in source.strip().splitlines()),
        streams=tuple(specs),
    )


def choose_fifo_depth(
    kernel: Kernel,
    organization: Union[str, MemorySystemConfig] = "cli",
    length: int = 1024,
    candidates: Sequence[int] = CANDIDATE_DEPTHS,
    simulate: bool = False,
    stride: int = 1,
) -> int:
    """Pick a FIFO depth for a computation.

    The paper notes the Section 5.2 limits "do not help in calculating
    appropriate FIFO depths for a computation a priori" and that "the
    best FIFO depth must be chosen experimentally."  Accordingly,
    ``simulate=True`` sweeps real simulations and returns the
    empirical argmax; the default uses the cheap combined analytic
    bound as a screening heuristic.

    Args:
        kernel: The compiled (or hand-written) kernel.
        organization: "cli", "pi", or a full configuration.
        length: Vector length the loop will run at.
        candidates: Depths to consider.
        simulate: Sweep full simulations instead of the bound.
        stride: Stride of the computation.

    Returns:
        The chosen depth.
    """
    if not candidates:
        raise CompileError("no candidate FIFO depths given")
    config = resolve_config(organization)
    best_depth = None
    best_score = -1.0
    for depth in candidates:
        if simulate:
            spec = RunSpec(
                kernel=kernel, organization=config,
                length=length, fifo_depth=depth, stride=stride,
            )
            score = _simulate(spec).percent_of_peak
        else:
            score = smc_bound(
                config,
                kernel.num_read_streams,
                kernel.num_write_streams,
                length,
                depth,
            ).percent_combined_limit
        if score > best_score:
            best_score = score
            best_depth = depth
    assert best_depth is not None
    return best_depth


def simulate_loop(
    source: str,
    organization: Union[str, MemorySystemConfig] = "cli",
    length: int = 1024,
    fifo_depth: Optional[int] = None,
    stride: int = 1,
    alignment: Union[str, Alignment] = Alignment.STAGGERED,
    index: str = "i",
    **simulate_kwargs,
) -> SimulationResult:
    """Compile a loop and simulate it on the SMC in one call.

    Args:
        source: Loop body source.
        organization: Memory organization.
        length: Vector length in elements.
        fifo_depth: FIFO depth; None picks one via
            :func:`choose_fifo_depth`.
        stride: Computation stride.
        alignment: Vector placement.
        index: Loop induction variable name.
        **simulate_kwargs: Extra :class:`~repro.sim.runner.RunSpec`
            fields (policy, audit, refresh, engine, ...) plus an
            optional ``obs`` instrumentation, forwarded to
            :func:`repro.sim.runner.simulate`.

    Returns:
        The simulation result.
    """
    kernel = compile_loop(source, index=index)
    if fifo_depth is None:
        fifo_depth = choose_fifo_depth(
            kernel, organization, length=length, stride=stride
        )
    obs = simulate_kwargs.pop("obs", None)
    spec = RunSpec(
        kernel=kernel,
        organization=organization,
        length=length,
        fifo_depth=fifo_depth,
        stride=stride,
        alignment=alignment,
        **simulate_kwargs,
    )
    return _simulate(spec, obs=obs)
