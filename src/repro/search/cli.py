"""``repro-search``: the policy-search command-line interface.

Runs a seeded evolve-and-evaluate search over the policy registries
(address mappings x page policies x request schedulers plus their
tuning knobs) and prints the per-generation winners.  The execution
plumbing mirrors ``repro-experiments``: ``--cache`` keeps results
warm across generations and across whole searches, ``--ledger``
records every spec lifecycle plus one ``generation`` frame per round,
``--workers`` fans the closed-loop evaluations out over processes.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.exec import execution
from repro.exec.stats import SweepStats
from repro.search.driver import SearchConfig, run_search


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-search",
        description=(
            "evolve-and-evaluate policy search over the mapping, "
            "page-policy, and scheduler registries"
        ),
    )
    parser.add_argument(
        "--generations", type=int, default=3,
        help="evolve-and-evaluate rounds (default 3)",
    )
    parser.add_argument(
        "--population", type=int, default=8,
        help="genomes per generation (default 8)",
    )
    parser.add_argument(
        "--elites", type=int, default=3,
        help="genomes carried verbatim between generations (default 3)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="search PRNG seed; same seed, same winners (default 0)",
    )
    parser.add_argument(
        "--length", type=int, default=128,
        help="stream length of the closed-loop runs (default 128)",
    )
    parser.add_argument(
        "--fifo-depth", type=int, default=32,
        help="SMC FIFO depth of the closed-loop runs (default 32)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size for the closed-loop evaluations",
    )
    parser.add_argument(
        "--cache", default=None, metavar="DIR",
        help="result-cache directory (warm across generations/searches)",
    )
    parser.add_argument(
        "--ledger", default=None, metavar="FILE",
        help="append lifecycle + generation events to this JSONL file",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print sweep execution stats (cache hits, wall time)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the full result (all generations) as JSON",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        config = SearchConfig(
            generations=args.generations,
            population=args.population,
            elites=args.elites,
            seed=args.seed,
            length=args.length,
            fifo_depth=args.fifo_depth,
        )
        stats = SweepStats() if args.stats else None
        with execution(
            workers=args.workers,
            cache=args.cache,
            stats=stats,
            ledger=args.ledger,
        ):
            result = run_search(config)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(result.summary())
    if stats is not None:
        print(stats.summary())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
