"""Policy genomes: the mutation space of the search driver.

A :class:`PolicyGenome` names one point in the policy space the
refactored registries expose — an address mapping, a page policy, a
request scheduler, and their tuning knobs (reorder window, starvation
age cap, re-arrangement epoch, page timeout).  Genomes are frozen and
canonically keyed, so identical policy choices hash and sort equally
regardless of how the search reached them, and the whole evolve loop
is reproducible from one seed.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigurationError
from repro.memsys.address import list_mappings
from repro.memsys.config import MemorySystemConfig
from repro.memsys.pagemanager import list_page_policies
from repro.traffic.scheduling import Scheduler, list_schedulers, make_scheduler

#: Tuning-knob palettes the mutator draws from.
WINDOW_CHOICES = (8, 16, 32, 64)
AGE_CAP_CHOICES = (128, 256, 512, 1024, 2048)
EPOCH_CHOICES = (256, 512, 1024, 2048)
TIMEOUT_CHOICES = (16, 32, 64, 128, 256)


@dataclass(frozen=True, order=True)
class PolicyGenome:
    """One candidate policy configuration.

    Attributes:
        interleaving: Address-mapping registry name.
        page_policy: Page-policy registry name.
        scheduler: Scheduler registry name.
        window: Reorder window for ``frfcfs``/``mars``.
        age_cap: MARS starvation age cap, in cycles.
        remap_epoch: Accesses between ``dream`` re-arrangement
            decisions.
        page_timeout: Idle cycles before the ``timeout`` page policy
            closes a bank.
    """

    interleaving: str = "cli"
    page_policy: str = "closed"
    scheduler: str = "fcfs"
    window: int = 32
    age_cap: int = 512
    remap_epoch: int = 1024
    page_timeout: int = 64

    def key(self) -> str:
        """Canonical sortable identity string."""
        return (
            f"{self.interleaving}/{self.page_policy}/{self.scheduler}"
            f"/w{self.window}/a{self.age_cap}"
            f"/e{self.remap_epoch}/t{self.page_timeout}"
        )

    def normalized(self) -> "PolicyGenome":
        """This genome with inert knobs reset to their defaults.

        A knob only matters when the policy reading it is selected:
        the window is dead weight under ``fcfs``, the age cap outside
        ``mars``, the remap epoch outside ``dream``, the page timeout
        outside the ``timeout`` policy.  Normalizing collapses such
        genomes onto one evaluation, so memo tables and winner
        comparisons never distinguish behaviorally identical points.
        """
        defaults = PolicyGenome()
        changes: Dict[str, int] = {}
        if self.scheduler == "fcfs":
            changes["window"] = defaults.window
        if self.scheduler != "mars":
            changes["age_cap"] = defaults.age_cap
        if self.interleaving != "dream":
            changes["remap_epoch"] = defaults.remap_epoch
        if self.page_policy != "timeout":
            changes["page_timeout"] = defaults.page_timeout
        return dataclasses.replace(self, **changes) if changes else self

    def memory_config(self) -> MemorySystemConfig:
        """The memory-system configuration this genome selects."""
        return MemorySystemConfig.cli(
            interleaving=self.interleaving,
            page_policy=self.page_policy,
            page_timeout_cycles=self.page_timeout,
            remap_epoch_accesses=self.remap_epoch,
        )

    def build_scheduler(self) -> Scheduler:
        """One scheduler instance with this genome's knobs applied."""
        if self.scheduler == "mars":
            return make_scheduler(
                "mars", window=self.window, age_cap=self.age_cap
            )
        if self.scheduler == "frfcfs":
            return make_scheduler("frfcfs", window=self.window)
        return make_scheduler(self.scheduler)


#: Mutable genome fields, in mutation-palette order.
MUTATION_FIELDS = (
    "interleaving",
    "page_policy",
    "scheduler",
    "window",
    "age_cap",
    "remap_epoch",
    "page_timeout",
)


def _palette(field: str):
    if field == "interleaving":
        return tuple(list_mappings())
    if field == "page_policy":
        return tuple(list_page_policies())
    if field == "scheduler":
        return tuple(list_schedulers())
    if field == "window":
        return WINDOW_CHOICES
    if field == "age_cap":
        return AGE_CAP_CHOICES
    if field == "remap_epoch":
        return EPOCH_CHOICES
    if field == "page_timeout":
        return TIMEOUT_CHOICES
    raise ConfigurationError(f"unknown genome field {field!r}")


def random_genome(rng: random.Random) -> PolicyGenome:
    """A uniformly random genome drawn from the registries/palettes."""
    return PolicyGenome(
        **{field: rng.choice(_palette(field)) for field in MUTATION_FIELDS}
    )


def mutate(genome: PolicyGenome, rng: random.Random) -> PolicyGenome:
    """One-field mutation: a different value from that field's palette."""
    field = rng.choice(MUTATION_FIELDS)
    alternatives = [
        value
        for value in _palette(field)
        if value != getattr(genome, field)
    ]
    return dataclasses.replace(genome, **{field: rng.choice(alternatives)})
