"""The evolve-and-evaluate policy search loop.

Each generation holds a population of :class:`~repro.search.genome.
PolicyGenome` candidates.  Every candidate is scored on two fronts:

* **Closed-loop bandwidth** — the paper's kernels through the SMC at
  the genome's mapping/page-policy point, evaluated as one
  :func:`~repro.exec.pool.run_specs` batch.  Specs flow through the
  ambient :func:`~repro.exec.context.execution` context, so a warm
  :class:`~repro.exec.cache.ResultCache` makes repeated points (the
  elites, and any mutation that only touched scheduling knobs) free —
  generation 2+ of a seeded search is mostly cache hits.
* **Open-loop tail latency** — the matched-load Zipf hot-set traffic
  workload under the genome's scheduler, memoized in-process by the
  genome's :meth:`~repro.search.genome.PolicyGenome.normalized` key.

The fitness is ``mean % of peak − p99/100``: reward effective
bandwidth, penalize tail latency (one p99 cycle per hundred trades
against one bandwidth point).  Ranking is deterministic — ties break
on the canonical genome key — so the same seed always produces the
same winners, generation by generation.  Survivors seed the next
generation: elites carry over verbatim, the rest are one-field
mutations of the elites.

Each generation is framed in the active run ledger with a
``generation`` event carrying the generation index, population and
the best genome/score, so ``repro-report`` timelines show the search
converging.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.exec.pool import run_specs
from repro.search.genome import PolicyGenome, mutate, random_genome
from repro.sim.runner import RunSpec
from repro.traffic import TrafficWorkload, run_traffic

#: The matched-load Zipf hot-set population every genome's scheduler
#: is judged on: arrival rate just under one channel's service
#: capacity, so queues form in bursts where reordering can act.
SEARCH_WORKLOAD = TrafficWorkload(
    clients=8,
    requests=512,
    mean_gap=32.0,
    zipf_s=2.0,
    hot_lines=4,
    hot_fraction=0.9,
    seed=5,
)


def _active_ledger():
    from repro.exec.context import active_ledger

    return active_ledger()


@dataclass(frozen=True)
class SearchConfig:
    """Parameters of one policy search.

    Attributes:
        generations: Evolve-and-evaluate rounds.
        population: Genomes per generation.
        elites: Top genomes carried verbatim into the next
            generation (the rest are mutations of them).
        seed: PRNG seed; the whole search is reproducible from it.
        kernels: Paper kernels for the closed-loop bandwidth score.
        length: Stream length of the closed-loop runs.
        fifo_depth: SMC FIFO depth of the closed-loop runs.
        workload: Traffic population for the tail-latency score.
    """

    generations: int = 3
    population: int = 8
    elites: int = 3
    seed: int = 0
    kernels: Tuple[str, ...] = ("daxpy", "vaxpy")
    length: int = 128
    fifo_depth: int = 32
    workload: TrafficWorkload = field(default_factory=lambda: SEARCH_WORKLOAD)

    def __post_init__(self) -> None:
        if self.generations < 1:
            raise ConfigurationError("need at least one generation")
        if self.population < 2:
            raise ConfigurationError("need a population of at least two")
        if not 1 <= self.elites < self.population:
            raise ConfigurationError(
                "elites must be at least 1 and below the population "
                f"size, got {self.elites} of {self.population}"
            )
        if not self.kernels:
            raise ConfigurationError("need at least one kernel")


@dataclass(frozen=True)
class EvaluatedGenome:
    """One genome with its generation scores.

    Attributes:
        genome: The candidate.
        score: Fitness (higher is better).
        percent_of_peak: Mean closed-loop % of peak over the kernels.
        p99_latency: Traffic p99 latency under the genome's
            scheduler, in cycles.
        spec_keys: Canonical cache keys of the closed-loop runs.
    """

    genome: PolicyGenome
    score: float
    percent_of_peak: float
    p99_latency: float
    spec_keys: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {
            "genome": self.genome.key(),
            "score": round(self.score, 6),
            "percent_of_peak": round(self.percent_of_peak, 4),
            "p99_latency": round(self.p99_latency, 4),
            "spec_keys": list(self.spec_keys),
        }


@dataclass(frozen=True)
class GenerationReport:
    """One generation's deterministic ranking (best first)."""

    index: int
    ranking: Tuple[EvaluatedGenome, ...]

    @property
    def best(self) -> EvaluatedGenome:
        return self.ranking[0]

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "ranking": [entry.to_dict() for entry in self.ranking],
        }


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one :func:`run_search`."""

    generations: Tuple[GenerationReport, ...]
    winner: EvaluatedGenome

    def to_dict(self) -> Dict[str, object]:
        return {
            "winner": self.winner.to_dict(),
            "generations": [g.to_dict() for g in self.generations],
        }

    def summary(self) -> str:
        """Per-generation best genomes plus the final winner."""
        lines = []
        for report in self.generations:
            best = report.best
            lines.append(
                f"gen {report.index}: best {best.genome.key()} "
                f"score {best.score:.2f} "
                f"({best.percent_of_peak:.1f}% peak, "
                f"p99 {best.p99_latency:.0f} cyc)"
            )
        lines.append(f"winner: {self.winner.genome.key()}")
        return "\n".join(lines)


def _score(percent_of_peak: float, p99_latency: float) -> float:
    """Fitness: bandwidth points minus one per hundred p99 cycles."""
    return percent_of_peak - p99_latency / 100.0


def _evaluate(
    population: List[PolicyGenome],
    config: SearchConfig,
    traffic_memo: Dict[str, float],
) -> List[EvaluatedGenome]:
    """Score every genome (one run_specs batch + memoized traffic)."""
    specs = [
        RunSpec(
            kernel=kernel,
            organization=genome.memory_config(),
            length=config.length,
            fifo_depth=config.fifo_depth,
        )
        for genome in population
        for kernel in config.kernels
    ]
    results = iter(run_specs(specs))
    spec_iter = iter(specs)
    evaluated = []
    for genome in population:
        peaks = [next(results).percent_of_peak for _ in config.kernels]
        keys = tuple(
            next(spec_iter).canonical_key() for _ in config.kernels
        )
        memo_key = genome.normalized().key()
        if memo_key not in traffic_memo:
            traffic_memo[memo_key] = run_traffic(
                genome.memory_config(),
                config.workload,
                scheduler=genome.build_scheduler(),
            ).p99_latency
        p99 = traffic_memo[memo_key]
        mean_peak = sum(peaks) / len(peaks)
        evaluated.append(
            EvaluatedGenome(
                genome=genome,
                score=_score(mean_peak, p99),
                percent_of_peak=mean_peak,
                p99_latency=p99,
                spec_keys=keys,
            )
        )
    return evaluated


def run_search(config: Optional[SearchConfig] = None) -> SearchResult:
    """Evolve policy genomes over seeded workloads; return the winner.

    Runs inside the ambient :func:`~repro.exec.context.execution`
    context: its result cache makes repeated design points free
    across generations (and across whole searches), its ledger
    receives one ``generation`` frame per round plus the usual
    per-spec lifecycle events.
    """
    config = config or SearchConfig()
    rng = random.Random(config.seed)
    # Generation 0: the paper's default policies plus random draws.
    population = [PolicyGenome()] + [
        random_genome(rng) for _ in range(config.population - 1)
    ]
    traffic_memo: Dict[str, float] = {}
    ledger = _active_ledger()
    reports: List[GenerationReport] = []
    for index in range(config.generations):
        evaluated = _evaluate(population, config, traffic_memo)
        evaluated.sort(key=lambda entry: (-entry.score, entry.genome.key()))
        best = evaluated[0]
        if ledger is not None:
            ledger.record(
                "generation",
                index=index,
                key=f"search/gen{index}",
                population=len(evaluated),
                best_genome=best.genome.key(),
                best_score=round(best.score, 6),
            )
        reports.append(
            GenerationReport(index=index, ranking=tuple(evaluated))
        )
        if index + 1 < config.generations:
            elites = [entry.genome for entry in evaluated[: config.elites]]
            population = list(elites)
            parent = 0
            while len(population) < config.population:
                population.append(
                    mutate(elites[parent % len(elites)], rng)
                )
                parent += 1
    return SearchResult(
        generations=tuple(reports), winner=reports[-1].best
    )
