"""Evolve-and-evaluate search over the policy registries.

The policy layer exposes three orthogonal registries — address
mappings, page policies, request schedulers — plus tuning knobs
(reorder window, starvation age cap, re-arrangement epoch, page
timeout).  This package searches that space: seeded populations of
:class:`~repro.search.genome.PolicyGenome` candidates are scored on
closed-loop bandwidth (through :func:`~repro.exec.pool.run_specs`
and the warm result cache) and open-loop tail latency, winners
survive, mutations explore.  Exposed as the ``policy_search``
experiment and the ``repro-search`` CLI.
"""

from repro.search.genome import (
    MUTATION_FIELDS,
    PolicyGenome,
    mutate,
    random_genome,
)
from repro.search.driver import (
    SEARCH_WORKLOAD,
    EvaluatedGenome,
    GenerationReport,
    SearchConfig,
    SearchResult,
    run_search,
)

__all__ = [
    "EvaluatedGenome",
    "GenerationReport",
    "MUTATION_FIELDS",
    "PolicyGenome",
    "SEARCH_WORKLOAD",
    "SearchConfig",
    "SearchResult",
    "mutate",
    "random_genome",
    "run_search",
]
