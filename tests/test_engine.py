"""Tests for the simulation engine and the SMC system builder."""

from __future__ import annotations

import pytest

from repro.errors import SchedulingError
from repro.core.policies import BankAwarePolicy
from repro.core.smc import build_smc_system
from repro.cpu.kernels import COPY, DAXPY, DOT, FILL
from repro.cpu.streams import Alignment, place_streams
from repro.sim.engine import run_smc


class TestBuilder:
    def test_wiring(self, cli_config):
        system = build_smc_system(DAXPY, cli_config, length=32, fifo_depth=8)
        assert len(system.sbu) == 3
        assert system.msu.policy.name == "round-robin"
        assert system.processor.length == 32
        assert not system.device.record_trace

    def test_policy_override(self, cli_config):
        system = build_smc_system(
            DAXPY, cli_config, length=32, fifo_depth=8, policy=BankAwarePolicy()
        )
        assert system.msu.policy.name == "bank-aware"

    def test_descriptor_override(self, cli_config):
        descriptors = place_streams(COPY.streams, cli_config, length=16)
        system = build_smc_system(
            COPY, cli_config, length=16, fifo_depth=8, descriptors=descriptors
        )
        assert system.descriptors == descriptors


class TestRunSmc:
    def test_completes_and_moves_all_data(self, cli_config):
        system = build_smc_system(COPY, cli_config, length=64, fifo_depth=16)
        result = run_smc(system)
        assert result.useful_bytes == 2 * 64 * 8
        assert result.transferred_bytes == result.useful_bytes
        assert 0 < result.percent_of_peak <= 100

    def test_audit_requires_and_uses_trace(self, cli_config):
        system = build_smc_system(
            COPY, cli_config, length=64, fifo_depth=16, record_trace=True
        )
        result = run_smc(system, audit=True)
        assert result.cycles > 0

    def test_watchdog_fires(self, cli_config):
        system = build_smc_system(COPY, cli_config, length=256, fifo_depth=16)
        with pytest.raises(SchedulingError, match="exceeded"):
            run_smc(system, max_cycles=10)

    def test_write_only_kernel(self, cli_config):
        system = build_smc_system(FILL, cli_config, length=64, fifo_depth=16)
        result = run_smc(system)
        assert result.useful_bytes == 64 * 8
        assert result.percent_of_peak > 50

    def test_read_only_kernel(self, pi_config):
        system = build_smc_system(DOT, pi_config, length=64, fifo_depth=16)
        result = run_smc(system)
        # No writes: no turnarounds; PI reads stream at near-peak.
        assert result.percent_of_peak > 80

    def test_alignment_is_reported_from_placement(self, pi_config):
        aligned = build_smc_system(
            COPY, pi_config, length=32, fifo_depth=8,
            alignment=Alignment.ALIGNED,
        )
        staggered = build_smc_system(
            COPY, pi_config, length=32, fifo_depth=8,
            alignment=Alignment.STAGGERED,
        )
        assert run_smc(aligned).alignment == "aligned"
        assert run_smc(staggered).alignment == "staggered"

    def test_strided_run_halves_attainable(self, cli_config):
        system = build_smc_system(COPY, cli_config, length=64, fifo_depth=16, stride=2)
        result = run_smc(system)
        assert result.transferred_bytes == 2 * result.useful_bytes
        assert result.attainable_fraction == pytest.approx(0.5)
        assert result.percent_of_attainable == pytest.approx(
            2 * result.percent_of_peak
        )

    def test_startup_cycle_reasonable(self, cli_config):
        system = build_smc_system(COPY, cli_config, length=64, fifo_depth=16)
        result = run_smc(system)
        # First element cannot appear before the page-miss latency plus
        # the data packet round trip.
        assert result.startup_cycles >= cli_config.timing.t_rac

    def test_deterministic(self, pi_config):
        results = [
            run_smc(build_smc_system(DAXPY, pi_config, length=128, fifo_depth=32))
            for __ in range(2)
        ]
        assert results[0] == results[1]

    def test_stats_populated(self, cli_config):
        system = build_smc_system(DAXPY, cli_config, length=128, fifo_depth=16)
        result = run_smc(system)
        assert result.packets_issued == 3 * 64
        assert result.activations >= 3 * 32  # one per line per stream
        assert result.fifo_switches > 0
