"""Tests for the N-channel x M-device memory topology.

Covers the :class:`~repro.memsys.config.MemoryTopology` configuration
surface, the channel-striping address-mapping composition (with
hypothesis bijection properties over random topologies), the
:class:`~repro.rdram.fabric.MemoryFabric` routing layer, the
:class:`~repro.sim.runner.RunSpec` topology fields (including
canonical-cache-key stability for the default topology), and the
engine gates that keep multi-channel runs on the event kernel.

``tests/data/pinned_topology_identity.json`` was captured from the
simulator *before* the topology refactor: every result field for all
five controllers on the default single-channel system.  The identity
tests prove the refactor changed nothing at N=1/M=1 — any drift in
any field is a behavioral regression, not noise.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.controller import CachedNaturalOrderController
from repro.core.l2stream import L2StreamingController
from repro.core.smc import build_smc_system
from repro.cpu.kernels import DAXPY, PAPER_KERNELS
from repro.errors import ConfigurationError
from repro.memsys.address import get_address_mapping
from repro.memsys.config import MemorySystemConfig, MemoryTopology
from repro.naturalorder.controller import NaturalOrderController
from repro.naturalorder.random_driver import RandomAccessDriver
from repro.rdram.channel import ChannelGeometry, make_memory
from repro.rdram.device import RdramGeometry
from repro.rdram.fabric import FabricGeometry, MemoryFabric
from repro.rdram.timing import DATA_PACKET_BYTES
from repro.sim.batch import batch_unsupported_reason
from repro.sim.engine import run_smc
from repro.sim.runner import RunSpec, simulate

FIXTURE = Path(__file__).parent / "data" / "pinned_topology_identity.json"

LENGTH = 128
FIFO_DEPTH = 32

ORGS = {
    "cli": MemorySystemConfig.cli,
    "pi": MemorySystemConfig.pi,
}


class TestMemoryTopology:
    def test_defaults_are_single(self):
        topology = MemoryTopology()
        assert topology.single
        assert (topology.channels, topology.devices_per_channel) == (1, 1)

    def test_describe(self):
        assert MemoryTopology(2, 4).describe() == "2ch x 4dev"

    @pytest.mark.parametrize("bad", [0, -1, 17, True, 2.0, "2"])
    def test_rejects_bad_channels(self, bad):
        with pytest.raises(ConfigurationError):
            MemoryTopology(channels=bad)

    @pytest.mark.parametrize("bad", [0, -3, 33, False, 1.5])
    def test_rejects_bad_devices(self, bad):
        with pytest.raises(ConfigurationError):
            MemoryTopology(devices_per_channel=bad)


class TestConfigTopology:
    def test_default_config_is_single(self, cli_config):
        assert cli_config.topology.single
        assert cli_config.banks_per_channel == cli_config.geometry.num_banks
        assert cli_config.total_banks == cli_config.geometry.num_banks

    def test_multi_channel_bank_and_capacity_math(self):
        config = MemorySystemConfig.cli(
            topology=MemoryTopology(channels=2, devices_per_channel=2)
        )
        assert config.banks_per_channel == 2 * config.geometry.num_banks
        assert config.total_banks == 4 * config.geometry.num_banks
        assert (
            config.total_capacity_bytes
            == 4 * config.geometry.capacity_bytes
        )

    def test_describe_prefixes_topology(self):
        single = MemorySystemConfig.cli()
        multi = MemorySystemConfig.cli(
            topology=MemoryTopology(channels=2, devices_per_channel=2)
        )
        assert not single.describe().startswith("1ch")
        assert multi.describe().startswith("2ch x 2dev, ")
        assert multi.describe().endswith(single.describe())

    def test_topology_must_be_memory_topology(self):
        with pytest.raises(ConfigurationError):
            MemorySystemConfig.cli(topology=(2, 2))

    def test_topology_rejects_channel_geometry(self):
        with pytest.raises(ConfigurationError):
            MemorySystemConfig.cli(
                geometry=ChannelGeometry(num_devices=2),
                topology=MemoryTopology(channels=2),
            )

    def test_channel_geometry_property_wraps_devices(self):
        config = MemorySystemConfig.cli(
            topology=MemoryTopology(channels=2, devices_per_channel=4)
        )
        per_channel = config.channel_geometry
        assert isinstance(per_channel, ChannelGeometry)
        assert per_channel.num_devices == 4


class TestChannelGeometryValidation:
    @pytest.mark.parametrize("bad", [0, -1, 33, True, 2.5])
    def test_rejects_bad_device_count(self, bad):
        with pytest.raises(ConfigurationError):
            ChannelGeometry(num_devices=bad)

    def test_rejects_nested_channels(self):
        with pytest.raises(ConfigurationError):
            ChannelGeometry(num_devices=2, device=ChannelGeometry())

    def test_exposes_consistent_capacity(self):
        device = RdramGeometry()
        channel = ChannelGeometry(num_devices=4, device=device)
        assert channel.capacity_bytes == 4 * device.capacity_bytes
        assert channel.num_banks == 4 * device.num_banks


# Small enough to keep hypothesis fast, large enough to cross every
# branch: single/multi channel x single/multi device x both orgs.
topologies = st.tuples(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=2),
)


class TestChannelStriping:
    @staticmethod
    def _mapping(org, channels, devices):
        config = ORGS[org](
            topology=MemoryTopology(
                channels=channels, devices_per_channel=devices
            )
        )
        return get_address_mapping(config)

    @pytest.mark.parametrize("org", sorted(ORGS))
    @given(topology=topologies, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_decompose_compose_roundtrip(self, org, topology, data):
        mapping = self._mapping(org, *topology)
        address = data.draw(
            st.integers(min_value=0, max_value=mapping.capacity_bytes - 1)
        )
        location = mapping.decompose(address)
        offset = address % DATA_PACKET_BYTES
        assert mapping.compose(location, offset) == address

    @pytest.mark.parametrize("org", sorted(ORGS))
    @given(topology=topologies, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_channel_of_matches_bank_ownership(self, org, topology, data):
        mapping = self._mapping(org, *topology)
        address = data.draw(
            st.integers(min_value=0, max_value=mapping.capacity_bytes - 1)
        )
        channel = mapping.channel_of(address)
        assert 0 <= channel < topology[0]
        bank = mapping.decompose(address).bank
        assert mapping.channel_of_bank(bank) == channel

    def test_consecutive_lines_stripe_round_robin(self):
        mapping = self._mapping("cli", 4, 1)
        line = mapping.config.cacheline_bytes
        channels = [mapping.channel_of(i * line) for i in range(8)]
        assert channels == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_capacity_scales_with_topology(self, cli_config):
        mapping = self._mapping("cli", 4, 2)
        assert (
            mapping.capacity_bytes
            == 8 * cli_config.geometry.capacity_bytes
        )

    def test_single_channel_config_keeps_plain_mapping(self, cli_config):
        mapping = get_address_mapping(cli_config)
        assert mapping.channels == 1
        assert mapping.channel_of(0) == 0


class TestMemoryFabric:
    def test_fabric_geometry_validation(self):
        with pytest.raises(ConfigurationError):
            FabricGeometry(channels=0, channel=RdramGeometry())
        with pytest.raises(ConfigurationError):
            FabricGeometry(channels=2, channel="not-a-geometry")

    def test_neighbors_never_cross_channels(self):
        geometry = FabricGeometry(
            channels=2, channel=RdramGeometry(doubled_banks=True)
        )
        per_channel = geometry.banks_per_channel
        for bank in range(geometry.num_banks):
            for neighbor in geometry.neighbors(bank):
                assert geometry.channel_of(neighbor) == geometry.channel_of(
                    bank
                )
        # Last bank of channel 0 and first of channel 1 are adjacent
        # indices but must not share sense amps.
        assert per_channel not in geometry.neighbors(per_channel - 1)

    def test_make_memory_builds_fabric(self):
        memory = make_memory(
            topology=MemoryTopology(channels=2, devices_per_channel=1)
        )
        assert isinstance(memory, MemoryFabric)
        assert len(memory.channel_memories) == 2

    def test_routing_isolates_channels(self):
        fabric = make_memory(topology=MemoryTopology(channels=2))
        per_channel = fabric.geometry.banks_per_channel
        from repro.rdram.packets import BusDirection

        fabric.issue_access(0, 0, 0, 0, BusDirection.READ)
        fabric.issue_access(per_channel, 0, 0, 0, BusDirection.READ)
        first, second = fabric.channel_bytes()
        assert first == second > 0
        assert fabric.bytes_transferred == first + second

    def test_out_of_range_bank_rejected(self):
        from repro.errors import ProtocolError

        fabric = make_memory(topology=MemoryTopology(channels=2))
        with pytest.raises(ProtocolError):
            fabric.bank(fabric.geometry.num_banks)

    def test_shared_page_manager_rejected(self):
        fabric = make_memory(topology=MemoryTopology(channels=2))
        with pytest.raises(ConfigurationError):
            fabric.page_manager = object()


class TestRunSpecTopology:
    def test_default_topology_keeps_old_canonical_key(self):
        spec = RunSpec(kernel=DAXPY, organization="cli", length=64)
        payload = spec.to_dict()
        assert "channels" not in payload
        assert "devices" not in payload

    def test_topology_fields_enter_the_key(self):
        spec = RunSpec(
            kernel=DAXPY, organization="cli", length=64, channels=2, devices=2
        )
        payload = spec.to_dict()
        assert payload["channels"] == 2
        assert payload["devices"] == 2
        assert "topo=2x2" in spec.describe()

    def test_config_topology_decomposes_to_the_same_key(self):
        config = MemorySystemConfig.cli(
            topology=MemoryTopology(channels=2, devices_per_channel=2)
        )
        via_config = RunSpec(kernel=DAXPY, organization=config, length=64)
        via_fields = RunSpec(
            kernel=DAXPY, organization="cli", length=64, channels=2, devices=2
        )
        assert via_config.canonical_key() == via_fields.canonical_key()

    def test_conflicting_topologies_rejected(self):
        config = MemorySystemConfig.cli(
            topology=MemoryTopology(channels=2, devices_per_channel=2)
        )
        with pytest.raises(ConfigurationError):
            RunSpec(kernel=DAXPY, organization=config, length=64, channels=4)

    def test_multi_channel_refuses_audit(self):
        with pytest.raises(ConfigurationError):
            simulate(
                RunSpec(
                    kernel=DAXPY,
                    organization="cli",
                    length=64,
                    channels=2,
                    audit=True,
                )
            )

    def test_multi_channel_refuses_instrumentation(self):
        from repro.obs import Instrumentation

        with pytest.raises(ConfigurationError):
            simulate(
                RunSpec(
                    kernel=DAXPY, organization="cli", length=64, channels=2
                ),
                obs=Instrumentation(),
            )


class TestEngineGates:
    def test_batch_rejects_multi_channel(self):
        config = MemorySystemConfig.cli(
            topology=MemoryTopology(channels=2, devices_per_channel=2)
        )
        reason = batch_unsupported_reason(config)
        assert reason is not None and "2ch x 2dev" in reason

    def test_batch_accepts_default_topology(self, cli_config):
        assert batch_unsupported_reason(cli_config) is None


class TestMultiChannelRuns:
    def test_channel_bytes_sum_to_transferred(self):
        result = simulate(
            RunSpec(
                kernel=DAXPY, organization="cli", length=128, channels=4
            )
        )
        assert result.channels == 4
        assert len(result.channel_transferred_bytes) == 4
        assert (
            sum(result.channel_transferred_bytes) == result.transferred_bytes
        )
        assert sum(result.channel_shares) == pytest.approx(1.0)

    def test_striping_balances_channels(self):
        result = simulate(
            RunSpec(
                kernel=DAXPY, organization="cli", length=128, channels=2
            )
        )
        first, second = result.channel_transferred_bytes
        assert first == second

    def test_percent_of_peak_scales_with_channels(self):
        single = simulate(
            RunSpec(kernel=DAXPY, organization="cli", length=128)
        )
        quad = simulate(
            RunSpec(
                kernel=DAXPY, organization="cli", length=128, channels=4
            )
        )
        # The serial SMC cannot saturate four DATA buses; the peak
        # denominator scales, so the percentage must drop well below
        # the single-channel figure.
        assert quad.percent_of_peak < 0.5 * single.percent_of_peak
        assert single.channels == 1 and quad.channels == 4


class TestSingleChannelIdentity:
    """Explicit 1x1 topology must be bit-identical to the default."""

    def test_event_results_equal(self):
        default = simulate(
            RunSpec(kernel=DAXPY, organization="cli", length=64)
        )
        explicit = simulate(
            RunSpec(
                kernel=DAXPY,
                organization="cli",
                length=64,
                channels=1,
                devices=1,
            )
        )
        assert default == explicit

    def test_canonical_keys_equal(self):
        default = RunSpec(kernel=DAXPY, organization="cli", length=64)
        explicit = RunSpec(
            kernel=DAXPY, organization="cli", length=64, channels=1, devices=1
        )
        assert default.canonical_key() == explicit.canonical_key()


@pytest.fixture(scope="module")
def pinned():
    return json.loads(FIXTURE.read_text())


def _assert_matches(result, want):
    got = dataclasses.asdict(result)
    mismatches = {
        field: (got[field], value)
        for field, value in want.items()
        if got[field] != value
    }
    assert not mismatches, mismatches


@pytest.mark.parametrize("org", sorted(ORGS))
@pytest.mark.parametrize("kernel_name", sorted(PAPER_KERNELS))
class TestPinnedTopologyIdentity:
    """All five controllers at N=1/M=1, against pre-refactor values."""

    def test_smc(self, pinned, org, kernel_name):
        result = run_smc(
            build_smc_system(
                PAPER_KERNELS[kernel_name],
                ORGS[org](),
                length=LENGTH,
                fifo_depth=FIFO_DEPTH,
            )
        )
        _assert_matches(result, pinned[f"smc/{org}/{kernel_name}"])

    def test_natural_order(self, pinned, org, kernel_name):
        result = NaturalOrderController(ORGS[org]()).run(
            PAPER_KERNELS[kernel_name], length=LENGTH
        )
        _assert_matches(result, pinned[f"natural/{org}/{kernel_name}"])

    def test_cached(self, pinned, org, kernel_name):
        result = CachedNaturalOrderController(ORGS[org]()).run(
            PAPER_KERNELS[kernel_name], length=LENGTH
        )
        _assert_matches(result, pinned[f"cached/{org}/{kernel_name}"])

    def test_l2_streaming(self, pinned, org, kernel_name):
        result = L2StreamingController(ORGS[org]()).run(
            PAPER_KERNELS[kernel_name], length=LENGTH
        )
        _assert_matches(result, pinned[f"l2/{org}/{kernel_name}"])


@pytest.mark.parametrize("org", sorted(ORGS))
def test_pinned_random_driver_identity(pinned, org):
    result = RandomAccessDriver(ORGS[org]()).run(
        64, write_fraction=0.25, seed=7
    )
    _assert_matches(result, pinned[f"random/{org}/uniform"])


def test_pinned_fixture_covers_the_full_matrix(pinned):
    expected = {
        f"{controller}/{org}/{kernel}"
        for controller in ("smc", "natural", "cached", "l2")
        for org in ORGS
        for kernel in PAPER_KERNELS
    } | {f"random/{org}/uniform" for org in ORGS}
    assert set(pinned) == expected
