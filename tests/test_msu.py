"""Tests for the Memory Scheduling Unit."""

from __future__ import annotations


from repro.core.msu import IDLE, ArrivalEvent, MemorySchedulingUnit
from repro.core.policies import RoundRobinPolicy
from repro.core.sbu import StreamBufferUnit
from repro.cpu.kernels import COPY, DAXPY
from repro.cpu.streams import Alignment, place_streams
from repro.memsys.config import MemorySystemConfig
from repro.rdram.device import RdramDevice
from repro.rdram.packets import ColPacket


def make_msu(kernel=DAXPY, org="cli", length=32, depth=8, alignment=Alignment.STAGGERED):
    config = getattr(MemorySystemConfig, org)()
    descriptors = place_streams(kernel.streams, config, length=length, alignment=alignment)
    device = RdramDevice(
        timing=config.timing, geometry=config.geometry, record_trace=True
    )
    sbu = StreamBufferUnit.from_descriptors(descriptors, config, depth)
    return device, sbu, MemorySchedulingUnit(device, sbu, RoundRobinPolicy())


class TestIssuing:
    def test_first_tick_issues_act_and_col(self):
        device, sbu, msu = make_msu()
        events = msu.tick(0)
        assert len(events) == 1
        assert isinstance(events[0], ArrivalEvent)
        assert msu.packets_issued == 1
        assert msu.activations == 1

    def test_read_events_report_fifo_and_elements(self):
        device, sbu, msu = make_msu()
        event = msu.tick(0)[0]
        assert event.fifo_index == 0
        assert event.elements == 2
        assert event.cycle > 0

    def test_writes_produce_no_events(self):
        device, sbu, msu = make_msu(depth=2)
        # Fill the write FIFO and let the reads exhaust FIFO capacity;
        # the third decision must service the write FIFO.
        sbu[2].cpu_push()
        sbu[2].cpu_push()
        events = []
        while msu.next_decision < IDLE:
            events.extend(msu.tick(msu.next_decision))
        writes = [
            p for p in device.trace
            if isinstance(p, ColPacket) and p.command.value == "WR"
        ]
        assert len(writes) == 1
        # Only the two read packets produced arrival events.
        assert len(events) == 2

    def test_idle_when_nothing_serviceable(self):
        device, sbu, msu = make_msu(depth=2)
        while msu.next_decision < IDLE:
            msu.tick(msu.next_decision)
        # Both read FIFOs full (2 in flight each), write FIFO empty.
        assert msu.packets_issued == 2
        assert msu.next_decision == IDLE

    def test_wake_rearms_idle_msu(self):
        device, sbu, msu = make_msu(depth=2)
        while msu.next_decision < IDLE:
            msu.tick(msu.next_decision)
        msu.wake(50)
        assert msu.next_decision == 50

    def test_wake_does_not_preempt_pacing(self):
        device, sbu, msu = make_msu()
        msu.tick(0)
        pending = msu.next_decision
        msu.wake(0)
        assert msu.next_decision == pending

    def test_tick_before_decision_time_is_noop(self):
        device, sbu, msu = make_msu()
        msu.tick(0)
        issued = msu.packets_issued
        msu.tick(msu.next_decision - 1)
        assert msu.packets_issued == issued


class TestStats:
    def test_fifo_switches_counted(self):
        device, sbu, msu = make_msu(depth=2)
        msu.tick(0)
        msu.tick(1)
        assert msu.fifo_switches == 1

    def test_bank_conflicts_counted_on_aligned_pi(self):
        device, sbu, msu = make_msu(
        	kernel=COPY, org="pi", length=64, depth=4, alignment=Alignment.ALIGNED
        )
        cycle = 0
        while not msu.done and cycle < 20000:
            for event in msu.tick(cycle):
                sbu[event.fifo_index].note_arrival(event.elements)
            for fifo in sbu:
                while fifo.cpu_can_pop():
                    fifo.cpu_pop()
                if not fifo.is_read and not fifo.exhausted and fifo.cpu_can_push():
                    fifo.cpu_push()
            msu.wake(cycle + 1)
            cycle += 1
        assert msu.done
        # Aligned vectors share bank 0: switching FIFOs must conflict.
        assert msu.bank_conflicts > 0

    def test_done_tracks_exhaustion(self):
        device, sbu, msu = make_msu(kernel=COPY, length=4, depth=8)
        assert not msu.done
        cycle = 0
        while not msu.done and cycle < 1000:
            for event in msu.tick(cycle):
                sbu[event.fifo_index].note_arrival(event.elements)
            for fifo in sbu:
                while fifo.cpu_can_pop():
                    fifo.cpu_pop()
                if not fifo.is_read and not fifo.exhausted and fifo.cpu_can_push():
                    fifo.cpu_push()
            msu.wake(cycle + 1)
            cycle += 1
        assert msu.done
        assert msu.last_data_end > 0
