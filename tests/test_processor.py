"""Tests for the in-order bandwidth-matched processor model."""

from __future__ import annotations


from repro.cpu.kernels import COPY, DAXPY, DOT
from repro.cpu.processor import MATCHED_ACCESS_INTERVAL, StreamProcessor


class FakePort:
    """A StreamPort with scriptable readiness."""

    def __init__(self, pop_ready=True, push_ready=True):
        self.pop_ready = pop_ready
        self.push_ready = push_ready
        self.pops = []
        self.pushes = []

    def cpu_can_pop(self, index):
        return self.pop_ready

    def cpu_pop(self, index):
        self.pops.append(index)

    def cpu_can_push(self, index):
        return self.push_ready

    def cpu_push(self, index):
        self.pushes.append(index)


class TestPacing:
    def test_matched_interval_is_two_cycles(self):
        assert MATCHED_ACCESS_INTERVAL == 2

    def test_one_access_per_interval(self):
        proc = StreamProcessor(COPY, length=2)
        port = FakePort()
        retired = [proc.tick(cycle, port) for cycle in range(8)]
        # Accesses retire at cycles 0, 2, 4, 6.
        assert retired == [True, False, True, False, True, False, True, False]
        assert proc.done

    def test_natural_order_interleaves_streams(self):
        proc = StreamProcessor(COPY, length=2)
        port = FakePort()
        for cycle in range(8):
            proc.tick(cycle, port)
        assert port.pops == [0, 0]
        assert port.pushes == [1, 1]

    def test_respects_custom_interval(self):
        proc = StreamProcessor(DOT, length=2, access_interval=5)
        port = FakePort()
        for cycle in range(25):
            proc.tick(cycle, port)
        assert proc.last_retire_cycle == 15  # accesses at 0, 5, 10, 15


class TestBlocking:
    def test_blocked_pop_stalls(self):
        proc = StreamProcessor(COPY, length=1)
        port = FakePort(pop_ready=False)
        for cycle in range(10):
            proc.tick(cycle, port)
        assert proc.accesses_retired == 0
        assert proc.next_attempt_cycle is None

    def test_stall_cycles_counted_from_block_start(self):
        proc = StreamProcessor(COPY, length=1)
        port = FakePort(pop_ready=False)
        proc.tick(0, port)
        proc.tick(1, port)
        port.pop_ready = True
        proc.tick(7, port)
        assert proc.stall_cycles == 7
        assert proc.first_element_cycle == 7

    def test_stall_accounting_is_skip_safe(self):
        # Visiting only the block cycle and the wake cycle must count
        # the same stall as visiting every cycle in between.
        dense = StreamProcessor(COPY, length=1)
        sparse = StreamProcessor(COPY, length=1)
        port_dense, port_sparse = FakePort(pop_ready=False), FakePort(pop_ready=False)
        for cycle in range(6):
            dense.tick(cycle, port_dense)
        sparse.tick(0, port_sparse)
        port_dense.pop_ready = port_sparse.pop_ready = True
        dense.tick(6, port_dense)
        sparse.tick(6, port_sparse)
        assert dense.stall_cycles == sparse.stall_cycles == 6

    def test_blocked_push(self):
        proc = StreamProcessor(COPY, length=1)
        port = FakePort(push_ready=False)
        proc.tick(0, port)  # pop x[0]
        proc.tick(2, port)  # blocked push
        assert proc.accesses_retired == 1
        port.push_ready = True
        proc.tick(3, port)
        assert proc.done


class TestCompletion:
    def test_done_after_all_accesses(self):
        proc = StreamProcessor(DAXPY, length=4)
        port = FakePort()
        cycle = 0
        while not proc.done:
            proc.tick(cycle, port)
            cycle += 1
        assert proc.accesses_retired == 12  # 3 streams x 4 elements
        assert len(port.pops) == 8
        assert len(port.pushes) == 4

    def test_done_processor_ignores_ticks(self):
        proc = StreamProcessor(COPY, length=1)
        port = FakePort()
        for cycle in range(6):
            proc.tick(cycle, port)
        assert proc.done
        assert not proc.tick(100, port)
        assert proc.next_attempt_cycle is None

    def test_first_and_last_retire_cycles(self):
        proc = StreamProcessor(COPY, length=2)
        port = FakePort()
        for cycle in range(10):
            proc.tick(cycle, port)
        assert proc.first_element_cycle == 0
        assert proc.last_retire_cycle == 6
