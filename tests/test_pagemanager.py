"""Tests for the page-management strategy registry.

Covers the plan-time behavior of the paper's closed policy, the lazy
materialization of the timeout policy, the hybrid predictor's counter
dynamics, coercion/back-compat helpers, and end-to-end runs of the
new policies (and the swizzle mapping) through both controllers.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.cpu.kernels import get_kernel
from repro.cpu.streams import Alignment, place_streams
from repro.core.fifo import build_access_units
from repro.core.smc import build_smc_system
from repro.memsys.address import get_address_mapping
from repro.memsys.config import MemorySystemConfig, PagePolicy
from repro.memsys.pagemanager import (
    PAGE_POLICIES,
    HybridPageManager,
    OpenPageManager,
    PageManager,
    TimeoutPageManager,
    as_page_manager,
    list_page_policies,
    make_page_manager,
    register_page_policy,
)
from repro.naturalorder.controller import NaturalOrderController
from repro.rdram.device import RdramDevice
from repro.rdram.packets import BusDirection
from repro.rdram.timing import RdramTiming
from repro.sim.engine import run_smc


@pytest.fixture
def daxpy_descriptor(cli_config):
    return place_streams(
        get_kernel("daxpy").streams,
        cli_config,
        length=64,
        stride=1,
        alignment=Alignment.STAGGERED,
    )[0]


class TestPlanTime:
    def test_closed_plan_flags_last_unit_of_each_row_run(
        self, cli_config, daxpy_descriptor
    ):
        mapping = get_address_mapping(cli_config)
        units = build_access_units(daxpy_descriptor, mapping, "closed")
        for index, unit in enumerate(units):
            is_last_of_run = index + 1 == len(units) or (
                units[index + 1].location.bank,
                units[index + 1].location.row,
            ) != (unit.location.bank, unit.location.row)
            assert unit.precharge_after == is_last_of_run

    def test_enum_and_name_spellings_plan_identically(
        self, cli_config, daxpy_descriptor
    ):
        mapping = get_address_mapping(cli_config)
        assert build_access_units(
            daxpy_descriptor, mapping, PagePolicy.CLOSED
        ) == build_access_units(daxpy_descriptor, mapping, "closed")

    def test_open_plan_never_flags(self, cli_config, daxpy_descriptor):
        mapping = get_address_mapping(cli_config)
        units = build_access_units(daxpy_descriptor, mapping, "open")
        assert not any(unit.precharge_after for unit in units)

    def test_paper_policies_have_no_runtime_overhead(self):
        assert not PAGE_POLICIES["closed"].runtime
        assert not PAGE_POLICIES["open"].runtime
        assert PAGE_POLICIES["timeout"].runtime
        assert PAGE_POLICIES["hybrid"].runtime


class TestTimeout:
    def test_idle_bank_closes_after_the_timeout(self):
        device = RdramDevice(timing=RdramTiming())
        device.page_manager = TimeoutPageManager(timeout=50)
        outcome = device.issue_access(0, 3, 0, 0, BusDirection.READ)
        bank = device.bank(0)
        assert bank.is_open and bank.open_row == 3
        due = max(bank.last_act_start, bank.last_col_end) + 50
        device.sync_bank(0, due - 1)
        assert bank.is_open
        device.sync_bank(0, due)
        assert not bank.is_open
        assert outcome.activated and not outcome.page_hit

    def test_retouch_within_the_timeout_keeps_the_page_open(self):
        device = RdramDevice(timing=RdramTiming())
        device.page_manager = TimeoutPageManager(timeout=500)
        device.issue_access(0, 3, 0, 0, BusDirection.READ)
        second = device.issue_access(
            0, 3, 1, device.bank(0).last_col_end + 100, BusDirection.READ
        )
        assert second.page_hit

    def test_timeout_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="positive"):
            TimeoutPageManager(timeout=0)

    def test_make_page_manager_honors_the_config_knob(self):
        config = MemorySystemConfig.pi(
            page_policy="timeout", page_timeout_cycles=123
        )
        manager = make_page_manager(config)
        assert isinstance(manager, TimeoutPageManager)
        assert manager.timeout == 123


class TestHybrid:
    def test_starts_weakly_open(self):
        manager = HybridPageManager()
        assert not manager.close_after(None, 0, 7)

    def test_row_switches_weaken_the_abandoned_row(self):
        manager = HybridPageManager()
        manager.observe(None, 0, 1)
        manager.observe(None, 0, 2)  # abandons row 1
        assert manager.close_after(None, 0, 1)
        assert not manager.close_after(None, 0, 2)

    def test_retouches_strengthen_toward_open(self):
        manager = HybridPageManager()
        manager.observe(None, 0, 1)
        manager.observe(None, 0, 1)
        manager.observe(None, 0, 1)
        # One later abandonment must not flip a well-reinforced row.
        manager.observe(None, 0, 2)
        assert not manager.close_after(None, 0, 1)

    def test_banks_predict_independently(self):
        manager = HybridPageManager()
        manager.observe(None, 0, 1)
        manager.observe(None, 0, 2)
        assert manager.close_after(None, 0, 1)
        assert not manager.close_after(None, 1, 1)

    def test_reset_clears_the_predictor(self):
        manager = HybridPageManager()
        manager.observe(None, 0, 1)
        manager.observe(None, 0, 2)
        manager.reset()
        assert not manager.close_after(None, 0, 1)


class TestCoercion:
    def test_manager_instances_pass_through(self):
        manager = OpenPageManager()
        assert as_page_manager(manager) is manager

    def test_enum_and_string_coerce(self):
        assert isinstance(as_page_manager(PagePolicy.OPEN), OpenPageManager)
        assert isinstance(as_page_manager("open"), OpenPageManager)

    def test_unknown_policy_lists_registered_names(self):
        config = MemorySystemConfig(interleaving="cli", page_policy="zorp")
        with pytest.raises(ConfigurationError) as err:
            make_page_manager(config)
        for name in list_page_policies():
            assert name in str(err.value)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="registered twice"):

            @register_page_policy
            class Duplicate(PageManager):
                name = "open"


@pytest.mark.parametrize("interleaving", ("cli", "pi", "swizzle"))
@pytest.mark.parametrize("page_policy", ("timeout", "hybrid"))
class TestEndToEnd:
    def _config(self, interleaving, page_policy):
        return MemorySystemConfig(
            interleaving=interleaving, page_policy=page_policy
        )

    def test_smc_runs_to_completion(self, interleaving, page_policy):
        result = run_smc(
            build_smc_system(
                get_kernel("daxpy"),
                self._config(interleaving, page_policy),
                length=64,
                fifo_depth=16,
            )
        )
        assert result.cycles > 0
        assert 0 < result.percent_of_peak <= 100
        assert result.page_hits + result.page_misses == result.packets_issued

    def test_natural_order_runs_to_completion(self, interleaving, page_policy):
        result = NaturalOrderController(
            self._config(interleaving, page_policy)
        ).run(get_kernel("daxpy"), length=64)
        assert result.cycles > 0
        assert 0 < result.percent_of_peak <= 100
        assert result.page_hits + result.page_misses == result.packets_issued
