"""Tests for the one-call simulation API."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.core.policies import BankAwarePolicy
from repro.memsys.config import Interleaving, MemorySystemConfig
from repro.sim.runner import (
    ORGANIZATIONS,
    RunSpec,
    resolve_config,
    resolve_policy,
    simulate,
)


class TestResolvers:
    def test_named_organizations(self):
        assert set(ORGANIZATIONS) == {"cli", "pi"}
        assert resolve_config("cli").interleaving is Interleaving.CACHELINE
        assert resolve_config("PI").interleaving is Interleaving.PAGE

    def test_config_passthrough(self):
        config = MemorySystemConfig.cli(cacheline_bytes=64)
        assert resolve_config(config) is config

    def test_unknown_organization(self):
        with pytest.raises(ConfigurationError, match="unknown organization"):
            resolve_config("numa")

    def test_policy_by_name(self):
        assert resolve_policy("bank-aware").name == "bank-aware"

    def test_policy_passthrough_and_default(self):
        policy = BankAwarePolicy()
        assert resolve_policy(policy) is policy
        assert resolve_policy(None) is None

    def test_unknown_policy(self):
        with pytest.raises(ConfigurationError, match="unknown policy"):
            resolve_policy("fifo-first")


class TestSimulateKernel:
    def test_by_name(self):
        result = simulate(RunSpec("copy", "cli", length=64, fifo_depth=16))
        assert result.kernel == "copy"
        assert result.fifo_depth == 16
        assert result.length == 64

    def test_alignment_strings(self):
        aligned = simulate(RunSpec(
            "copy", "pi", length=64, fifo_depth=8, alignment="aligned"
        ))
        assert aligned.alignment == "aligned"

    def test_bad_alignment_string(self):
        with pytest.raises(ValueError):
            simulate(RunSpec("copy", "cli", length=64, fifo_depth=8,
                            alignment="diagonal"))

    def test_policy_string(self):
        result = simulate(RunSpec(
            "daxpy", "pi", length=64, fifo_depth=16, policy="bank-aware"
        ))
        assert result.policy == "bank-aware"

    def test_audited_run(self):
        result = simulate(RunSpec("vaxpy", "cli", length=64, fifo_depth=16, audit=True))
        assert result.cycles > 0

    def test_unknown_kernel(self):
        from repro.errors import StreamError
        with pytest.raises(StreamError, match="unknown kernel"):
            simulate(RunSpec("fft", "cli"))

    def test_summary_renders(self):
        result = simulate(RunSpec("copy", "cli", length=64, fifo_depth=16))
        line = result.summary()
        assert "copy" in line and "% peak" in line

    def test_effective_bandwidth_scales_with_percent(self):
        result = simulate(RunSpec("copy", "pi", length=128, fifo_depth=32))
        assert result.effective_bandwidth_bytes_per_sec == pytest.approx(
            result.percent_of_peak / 100 * 1.6e9
        )
