"""Tests for the reconciled natural-order bounds against the paper."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.analytic.cache import (
    natural_order_bound,
    single_stream_fill_bound,
    useful_words_per_line,
)
from repro.memsys.config import MemorySystemConfig


@pytest.fixture
def cli():
    return MemorySystemConfig.cli()


@pytest.fixture
def pi():
    return MemorySystemConfig.pi()


class TestPaperQuotes:
    """Every natural-order number Section 6 quotes, within 0.3 points."""

    def test_eight_streams_stride_one_pi(self, pi):
        assert natural_order_bound(pi, 7, 1).percent_of_peak == pytest.approx(
            88.68, abs=0.3
        )

    def test_eight_streams_stride_one_cli(self, cli):
        assert natural_order_bound(cli, 7, 1).percent_of_peak == pytest.approx(
            76.11, abs=0.3
        )

    def test_eight_streams_stride_four_pi(self, pi):
        assert natural_order_bound(
            pi, 7, 1, stride=4
        ).percent_of_peak == pytest.approx(22.17, abs=0.3)

    def test_eight_streams_stride_four_cli(self, cli):
        assert natural_order_bound(
            cli, 7, 1, stride=4
        ).percent_of_peak == pytest.approx(19.03, abs=0.3)

    def test_benchmark_range_brackets_abstract(self, cli, pi):
        # "44-76% of peak" across the four kernels; our reconciled
        # model spans 44.4-80.0%.
        bounds = [
            natural_order_bound(config, s_r, 1).percent_of_peak
            for config in (cli, pi)
            for s_r in (1, 2, 3)
        ]
        assert min(bounds) == pytest.approx(44.4, abs=0.1)
        assert max(bounds) <= 81.0


class TestModelStructure:
    def test_pi_beats_cli_at_every_stream_count(self, cli, pi):
        for s_r in range(1, 8):
            assert (
                natural_order_bound(pi, s_r, 1).percent_of_peak
                > natural_order_bound(cli, s_r, 1).percent_of_peak
            )

    def test_bandwidth_grows_with_streams(self, cli):
        values = [
            natural_order_bound(cli, s_r, 1).percent_of_peak
            for s_r in range(1, 8)
        ]
        assert values == sorted(values)

    def test_read_only_loop_pays_no_turnaround(self, pi):
        with_write = natural_order_bound(pi, 3, 1)
        read_only = natural_order_bound(pi, 4, 0)
        assert read_only.group_cycles < with_write.group_cycles

    def test_finite_length_below_asymptote_pi(self, pi):
        finite = natural_order_bound(pi, 2, 1, length=128).percent_of_peak
        asymptotic = natural_order_bound(pi, 2, 1).percent_of_peak
        assert finite < asymptotic

    def test_single_stream_falls_back_to_serial_line_time(self, cli):
        bound = natural_order_bound(cli, 1, 0)
        # T_LCC = 24 cycles for 4 words: 33.3% of peak.
        assert bound.percent_of_peak == pytest.approx(100 * 32 / (24 * 4))

    def test_zero_streams_rejected(self, cli):
        with pytest.raises(ConfigurationError):
            natural_order_bound(cli, 0, 0)

    def test_attainable_doubles_for_non_unit_stride(self, cli):
        strided = natural_order_bound(cli, 3, 1, stride=4)
        assert strided.percent_of_attainable == pytest.approx(
            2 * strided.percent_of_peak
        )
        unit = natural_order_bound(cli, 3, 1, stride=1)
        assert unit.percent_of_attainable == unit.percent_of_peak


class TestUsefulWords:
    def test_dense(self, cli):
        assert useful_words_per_line(cli, 1) == 4

    def test_fractional(self, cli):
        assert useful_words_per_line(cli, 3) == pytest.approx(4 / 3)

    def test_sparse(self, cli):
        assert useful_words_per_line(cli, 16) == 1

    def test_bad_stride(self, cli):
        with pytest.raises(ConfigurationError):
            useful_words_per_line(cli, 0)


class TestFigure8Bounds:
    def test_cli_declines_then_flattens(self, cli):
        values = [single_stream_fill_bound(cli, s) for s in range(1, 33)]
        assert values[0] == pytest.approx(33.33, abs=0.01)
        assert values[3] == pytest.approx(8.33, abs=0.01)
        assert all(v == pytest.approx(8.33, abs=0.01) for v in values[3:])

    def test_pi_above_cli_everywhere(self, cli, pi):
        for stride in range(1, 33):
            assert single_stream_fill_bound(pi, stride) > (
                single_stream_fill_bound(cli, stride)
            )

    def test_pi_overlapped_variant_constant_beyond_line(self, pi):
        values = [
            single_stream_fill_bound(pi, s, include_page_overhead=False)
            for s in range(4, 33)
        ]
        assert all(v == pytest.approx(values[0]) for v in values)
        assert values[0] == pytest.approx(100 * 2 / 12, abs=0.01)

    def test_pi_eq58_variant_keeps_declining(self, pi):
        assert single_stream_fill_bound(pi, 32) < single_stream_fill_bound(pi, 8)

    def test_large_stride_delivers_ten_percent_or_less_cli(self, cli):
        # Section 6: "the natural-order cacheline accesses only deliver
        # 10% or less of the Direct RDRAM's potential bandwidth".
        assert single_stream_fill_bound(cli, 32) <= 10.0
