"""Tests for the parameter-sweep utility."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.exec import ResultCache
from repro.sim import runner
from repro.sim.runner import RunSpec
from repro.sim.sweep import Sweep, pivot, sweep


class TestSweep:
    def test_size_and_points(self):
        sweep = Sweep(kernel=["copy", "daxpy"], fifo_depth=[8, 16, 32])
        assert sweep.size == 6
        points = list(sweep.points())
        assert len(points) == 6
        assert points[0]["kernel"] == "copy"
        assert points[0]["fifo_depth"] == 8
        # Unswept axes take their defaults.
        assert points[0]["length"] == 1024

    def test_scalar_axis_broadcast(self):
        sweep = Sweep(kernel="copy", fifo_depth=[8, 16])
        assert sweep.size == 2
        assert all(p["kernel"] == "copy" for p in sweep.points())

    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown sweep axes"):
            Sweep(voltage=[1, 2])

    def test_run_produces_results_in_grid_order(self):
        sweep = Sweep(kernel="copy", length=64, fifo_depth=[8, 32])
        results = sweep.run()
        assert [r.fifo_depth for r in results] == [8, 32]
        assert all(r.kernel == "copy" for r in results)

    def test_progress_callback(self):
        seen = []
        Sweep(kernel="copy", length=64, fifo_depth=[8, 16]).run(
            progress=lambda point, result: seen.append(point["fifo_depth"])
        )
        assert seen == [8, 16]

    def test_fixed_kwargs_forwarded(self):
        results = Sweep(kernel="copy", length=64, fifo_depth=8).run(
            audit=True
        )
        assert len(results) == 1

    def test_specs_mirror_points(self):
        grid = Sweep(kernel="copy", length=64, fifo_depth=[8, 32])
        specs = grid.specs(audit=True)
        assert specs == [
            RunSpec(**point, audit=True) for point in grid.points()
        ]

    def test_parallel_run_identical_to_serial(self):
        grid = Sweep(kernel=["copy", "daxpy"], length=64, fifo_depth=[8, 16])
        assert grid.run(workers=2) == grid.run()

    def test_cached_rerun_skips_the_engine(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path, salt="v1")
        grid = Sweep(kernel="copy", length=64, fifo_depth=[8, 16])
        first = grid.run(cache=cache)
        monkeypatch.setattr(
            runner, "run_smc",
            lambda *a, **k: (_ for _ in ()).throw(AssertionError("simulated")),
        )
        assert grid.run(cache=cache) == first

    def test_obs_cannot_be_pooled(self):
        from repro.obs import Instrumentation

        with pytest.raises(ConfigurationError, match="obs="):
            Sweep(kernel="copy", length=64, fifo_depth=8).run(
                workers=2, obs=Instrumentation()
            )

    def test_obs_still_supported_serially(self):
        from repro.obs import Instrumentation

        obs = Instrumentation()
        results = Sweep(kernel="copy", length=64, fifo_depth=8).run(obs=obs)
        assert len(results) == 1


class TestSweepFunction:
    def test_one_call_sweep(self):
        results = sweep(kernel="copy", length=64, fifo_depth=[8, 16])
        assert [r.fifo_depth for r in results] == [8, 16]


class TestPivot:
    def test_grid_shape(self):
        results = Sweep(
            kernel=["copy", "daxpy"], length=64, fifo_depth=[8, 16]
        ).run()
        rows, columns, grid = pivot(
            results,
            row_key=lambda r: r.kernel,
            column_key=lambda r: r.fifo_depth,
        )
        assert rows == ["copy", "daxpy"]
        assert columns == [8, 16]
        assert all(len(row) == 2 for row in grid)
        assert all(0 < cell <= 100 for row in grid for cell in row)

    def test_custom_value(self):
        results = Sweep(kernel="copy", length=64, fifo_depth=[8, 16]).run()
        __, __, grid = pivot(
            results,
            row_key=lambda r: r.kernel,
            column_key=lambda r: r.fifo_depth,
            value=lambda r: r.cycles,
        )
        assert all(isinstance(cell, int) for cell in grid[0])

    def test_duplicate_cell_rejected(self):
        results = Sweep(
            kernel="copy", length=64, fifo_depth=[8, 16]
        ).run()
        with pytest.raises(ConfigurationError, match="duplicate"):
            pivot(
                results,
                row_key=lambda r: r.kernel,
                column_key=lambda r: r.kernel,
            )
