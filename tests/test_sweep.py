"""Tests for the parameter-sweep utility."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.sweep import Sweep, pivot


class TestSweep:
    def test_size_and_points(self):
        sweep = Sweep(kernel=["copy", "daxpy"], fifo_depth=[8, 16, 32])
        assert sweep.size == 6
        points = list(sweep.points())
        assert len(points) == 6
        assert points[0]["kernel"] == "copy"
        assert points[0]["fifo_depth"] == 8
        # Unswept axes take their defaults.
        assert points[0]["length"] == 1024

    def test_scalar_axis_broadcast(self):
        sweep = Sweep(kernel="copy", fifo_depth=[8, 16])
        assert sweep.size == 2
        assert all(p["kernel"] == "copy" for p in sweep.points())

    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown sweep axes"):
            Sweep(voltage=[1, 2])

    def test_run_produces_results_in_grid_order(self):
        sweep = Sweep(kernel="copy", length=64, fifo_depth=[8, 32])
        results = sweep.run()
        assert [r.fifo_depth for r in results] == [8, 32]
        assert all(r.kernel == "copy" for r in results)

    def test_progress_callback(self):
        seen = []
        Sweep(kernel="copy", length=64, fifo_depth=[8, 16]).run(
            progress=lambda point, result: seen.append(point["fifo_depth"])
        )
        assert seen == [8, 16]

    def test_fixed_kwargs_forwarded(self):
        results = Sweep(kernel="copy", length=64, fifo_depth=8).run(
            audit=True
        )
        assert len(results) == 1


class TestPivot:
    def test_grid_shape(self):
        results = Sweep(
            kernel=["copy", "daxpy"], length=64, fifo_depth=[8, 16]
        ).run()
        rows, columns, grid = pivot(
            results,
            row_key=lambda r: r.kernel,
            column_key=lambda r: r.fifo_depth,
        )
        assert rows == ["copy", "daxpy"]
        assert columns == [8, 16]
        assert all(len(row) == 2 for row in grid)
        assert all(0 < cell <= 100 for row in grid for cell in row)

    def test_custom_value(self):
        results = Sweep(kernel="copy", length=64, fifo_depth=[8, 16]).run()
        __, __, grid = pivot(
            results,
            row_key=lambda r: r.kernel,
            column_key=lambda r: r.fifo_depth,
            value=lambda r: r.cycles,
        )
        assert all(isinstance(cell, int) for cell in grid[0])

    def test_duplicate_cell_rejected(self):
        results = Sweep(
            kernel="copy", length=64, fifo_depth=[8, 16]
        ).run()
        with pytest.raises(ConfigurationError, match="duplicate"):
            pivot(
                results,
                row_key=lambda r: r.kernel,
                column_key=lambda r: r.kernel,
            )
