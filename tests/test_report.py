"""Tests for the reproduction report generator."""

from __future__ import annotations

import pytest

from repro.experiments.report import generate_report


class TestReport:
    @pytest.fixture(scope="class")
    def report(self):
        return generate_report()

    def test_markdown_structure(self, report):
        assert report.startswith("# Reproduction report")
        assert "| source | claim | paper | this build | verdict |" in report

    def test_all_claims_present(self, report):
        for fragment in (
            "88.68", "76.11", "22.17", "19.03",
            "copy, 1024 elements", "improvement factors",
            "natural-order range", "strided SMC",
        ):
            assert fragment in report

    def test_no_diff_verdicts(self, report):
        """Every claim lands PASS or NEAR on this build."""
        assert " DIFF |" not in report
        assert report.count("PASS") >= 5

    def test_summary_line_counts_rows(self, report):
        rows = report.count("\n| Section") + report.count("\n| Abstract")
        summary = report.splitlines()[-1]
        total = int(summary.split("/")[1].split(" ")[0])
        assert total == rows

    def test_cli_flag_writes_file(self, tmp_path, capsys):
        from repro.experiments.cli import main

        target = tmp_path / "REPORT.md"
        assert main(["figure1", "--report", str(target)]) == 0
        assert target.exists()
        assert "Reproduction report" in target.read_text()
