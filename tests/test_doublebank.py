"""Tests for the double-bank (shared sense amp) core architecture."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.memsys.address import AddressMap
from repro.memsys.config import MemorySystemConfig
from repro.rdram.device import RdramDevice, RdramGeometry
from repro.sim.runner import RunSpec, simulate


@pytest.fixture
def doubled():
    return RdramGeometry(num_banks=16, doubled_banks=True)


class TestGeometry:
    def test_neighbors(self, doubled):
        assert doubled.neighbors(0) == (1,)
        assert doubled.neighbors(5) == (4, 6)
        assert doubled.neighbors(15) == (14,)

    def test_independent_core_has_no_neighbors(self):
        assert RdramGeometry().neighbors(3) == ()

    def test_needs_two_banks(self):
        with pytest.raises(ConfigurationError):
            RdramGeometry(num_banks=1, doubled_banks=True)


class TestDeviceRules:
    def test_act_blocked_while_neighbor_open(self, doubled, timing):
        device = RdramDevice(geometry=doubled)
        device.issue_act(4, 0, 0)
        with pytest.raises(ProtocolError, match="adjacent"):
            device.issue_act(5, 0, 100)

    def test_act_waits_t_rp_from_neighbor_precharge(self, doubled, timing):
        device = RdramDevice(geometry=doubled)
        device.issue_act(4, 0, 0)
        prer = device.issue_prer(4, 0)
        act = device.issue_act(5, 0, prer.start)
        assert act.start >= prer.start + timing.t_rp

    def test_non_adjacent_banks_independent(self, doubled):
        device = RdramDevice(geometry=doubled)
        device.issue_act(4, 0, 0)
        act = device.issue_act(6, 0, 0)  # not adjacent: only t_RR binds
        assert act.start == 8


class TestAddressPermutation:
    def test_consecutive_lines_land_on_non_adjacent_banks(self, doubled):
        config = MemorySystemConfig.cli(geometry=doubled)
        mapping = AddressMap(config)
        banks = [mapping.decompose(i * 32).bank for i in range(17)]
        for a, b in zip(banks, banks[1:]):
            assert abs(a - b) != 1
        # All sixteen banks are still used.
        assert set(banks) == set(range(16))

    def test_permuted_map_round_trips(self, doubled):
        config = MemorySystemConfig.pi(geometry=doubled)
        mapping = AddressMap(config)
        for address in range(0, 16 * 1024 * 1024, 131072):
            location = mapping.decompose(address)
            assert mapping.compose(location) == address - address % 16

    def test_plain_geometry_keeps_identity_order(self, cli_config):
        mapping = AddressMap(cli_config)
        banks = [mapping.decompose(i * 32).bank for i in range(8)]
        assert banks == list(range(8))


class TestEffectivelyEight:
    @pytest.mark.parametrize("org", ["cli", "pi"])
    def test_double_bank_tracks_eight_independent(self, org, doubled):
        """Section 2.2: sixteen doubled banks behave like eight
        independent ones (within a tolerance for the pairing rules)."""
        eight = simulate(RunSpec("daxpy", org, length=1024, fifo_depth=64))
        doubled_config = getattr(MemorySystemConfig, org)(geometry=doubled)
        sixteen = simulate(RunSpec(
            "daxpy", doubled_config, length=1024, fifo_depth=64, audit=True
        ))
        assert sixteen.percent_of_peak > 0.88 * eight.percent_of_peak

    def test_sixteen_independent_at_least_as_good(self, doubled):
        independent = MemorySystemConfig.cli(
            geometry=RdramGeometry(num_banks=16)
        )
        paired = MemorySystemConfig.cli(geometry=doubled)
        free = simulate(RunSpec("vaxpy", independent, length=1024, fifo_depth=64))
        constrained = simulate(RunSpec("vaxpy", paired, length=1024, fifo_depth=64))
        assert free.percent_of_peak >= constrained.percent_of_peak
