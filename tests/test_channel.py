"""Tests for the multi-device Rambus channel."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.cpu.kernels import DAXPY
from repro.memsys.config import MemorySystemConfig
from repro.naturalorder.controller import NaturalOrderController
from repro.rdram.audit import audit_trace
from repro.rdram.channel import ChannelGeometry, RambusChannel, make_memory
from repro.rdram.device import RdramDevice, RdramGeometry
from repro.rdram.packets import BusDirection
from repro.sim.runner import RunSpec, simulate


class TestChannelGeometry:
    def test_global_bank_count(self):
        geometry = ChannelGeometry(num_devices=4)
        assert geometry.num_banks == 32
        assert geometry.capacity_bytes == 4 * 8 * 1024 * 1024

    def test_device_and_local_bank(self):
        geometry = ChannelGeometry(num_devices=4)
        assert geometry.device_of(0) == 0
        assert geometry.device_of(8) == 1
        assert geometry.local_bank(19) == 3

    def test_device_count_limits(self):
        with pytest.raises(ConfigurationError):
            ChannelGeometry(num_devices=0)
        with pytest.raises(ConfigurationError):
            ChannelGeometry(num_devices=33)

    def test_neighbors_stay_within_device(self):
        geometry = ChannelGeometry(
            num_devices=2,
            device=RdramGeometry(num_banks=16, doubled_banks=True),
        )
        # Bank 15 is the last bank of device 0: no neighbor 16.
        assert geometry.neighbors(15) == (14,)
        assert geometry.neighbors(16) == (17,)

    def test_no_neighbors_without_doubling(self):
        assert ChannelGeometry(num_devices=2).neighbors(7) == ()


class TestMakeMemory:
    def test_dispatches_on_geometry(self):
        assert isinstance(make_memory(geometry=ChannelGeometry()), RambusChannel)
        assert isinstance(make_memory(geometry=RdramGeometry()), RdramDevice)
        assert isinstance(make_memory(), RdramDevice)


class TestChannelTiming:
    def test_t_rr_is_per_device(self, timing):
        channel = RambusChannel(geometry=ChannelGeometry(num_devices=2))
        first = channel.issue_act(0, 0, 0)   # device 0
        second = channel.issue_act(8, 0, 0)  # device 1: only row bus binds
        third = channel.issue_act(1, 0, 0)   # device 0 again: t_RR binds
        assert second.start == first.start + timing.t_pack
        assert third.start == first.start + timing.t_rr

    def test_shared_data_bus(self, timing):
        channel = RambusChannel(geometry=ChannelGeometry(num_devices=2))
        channel.issue_act(0, 0, 0)
        channel.issue_act(8, 0, 0)
        a = channel.issue_col(0, 0, 0, 0, BusDirection.READ)
        b = channel.issue_col(8, 0, 0, 0, BusDirection.READ)
        assert b.data.start == a.data.end

    def test_turnaround_is_channel_global(self, timing):
        channel = RambusChannel(geometry=ChannelGeometry(num_devices=2))
        channel.issue_act(0, 0, 0)
        channel.issue_act(8, 0, 0)
        write = channel.issue_col(0, 0, 0, 0, BusDirection.WRITE)
        read = channel.issue_col(8, 0, 0, write.col.end, BusDirection.READ)
        assert read.data.start >= write.data.end + timing.t_rw

    def test_bank_bounds(self):
        channel = RambusChannel(geometry=ChannelGeometry(num_devices=2))
        with pytest.raises(ProtocolError):
            channel.bank(16)

    def test_reset(self):
        channel = RambusChannel(geometry=ChannelGeometry(num_devices=2))
        channel.issue_act(0, 0, 0)
        channel.reset()
        assert channel.bytes_transferred == 0
        assert channel.issue_act(0, 0, 0).start == 0


class TestChannelAudit:
    def test_channel_trace_passes_with_per_device_t_rr(self, timing):
        channel = RambusChannel(geometry=ChannelGeometry(num_devices=2))
        channel.issue_act(0, 0, 0)
        channel.issue_act(8, 0, 0)
        channel.issue_col(0, 0, 0, 0, BusDirection.READ)
        channel.issue_col(8, 0, 0, 0, BusDirection.READ)
        audit_trace(channel.trace, timing, num_banks=16, banks_per_device=8)

    def test_single_device_audit_would_reject_same_trace(self, timing):
        from repro.errors import ProtocolError

        channel = RambusChannel(geometry=ChannelGeometry(num_devices=2))
        channel.issue_act(0, 0, 0)
        channel.issue_act(8, 0, 0)
        with pytest.raises(ProtocolError, match="t_RR"):
            audit_trace(channel.trace, timing, num_banks=16)


class TestControllersOnChannels:
    @pytest.mark.parametrize("devices", [1, 2, 4])
    def test_smc_runs_and_audits_on_channel(self, devices):
        config = MemorySystemConfig.cli(
            geometry=ChannelGeometry(num_devices=devices)
        )
        result = simulate(RunSpec(
            "daxpy", config, length=512, fifo_depth=32, audit=True
        ))
        assert result.percent_of_peak > 80

    def test_more_devices_never_hurt_smc(self):
        single = simulate(RunSpec(
            "daxpy",
            MemorySystemConfig.cli(geometry=ChannelGeometry(num_devices=1)),
            length=1024,
            fifo_depth=64,
        ))
        quad = simulate(RunSpec(
            "daxpy",
            MemorySystemConfig.cli(geometry=ChannelGeometry(num_devices=4)),
            length=1024,
            fifo_depth=64,
        ))
        assert quad.percent_of_peak >= single.percent_of_peak

    def test_single_device_channel_matches_plain_device(self):
        channel_config = MemorySystemConfig.cli(
            geometry=ChannelGeometry(num_devices=1)
        )
        plain = simulate(RunSpec("copy", "cli", length=512, fifo_depth=32))
        chan = simulate(RunSpec("copy", channel_config, length=512, fifo_depth=32))
        assert chan.cycles == plain.cycles
        assert chan.percent_of_peak == plain.percent_of_peak

    def test_natural_order_on_channel(self):
        config = MemorySystemConfig.pi(
            geometry=ChannelGeometry(num_devices=2)
        )
        controller = NaturalOrderController(config, record_trace=True)
        result = controller.run(DAXPY, length=256)
        audit_trace(
            controller.device.trace,
            config.timing,
            num_banks=16,
            banks_per_device=8,
        )
        assert result.percent_of_peak > 40
