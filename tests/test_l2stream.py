"""Tests for the L2-streaming controller (conclusion future work)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.cache.model import CacheConfig
from repro.core.l2stream import L2StreamingController
from repro.cpu.kernels import COPY, DAXPY, VAXPY
from repro.cpu.streams import Alignment
from repro.memsys.config import MemorySystemConfig
from repro.rdram.audit import audit_trace
from repro.sim.runner import RunSpec, simulate


class TestConstruction:
    def test_line_size_must_match(self, cli_config):
        with pytest.raises(ConfigurationError, match="line size"):
            L2StreamingController(
                cli_config, CacheConfig(line_bytes=64)
            )

    def test_window_must_be_positive(self, cli_config):
        with pytest.raises(ConfigurationError, match="window"):
            L2StreamingController(cli_config, prefetch_window=0)


class TestExecution:
    @pytest.mark.parametrize("org", ["cli", "pi"])
    @pytest.mark.parametrize("kernel", [COPY, DAXPY, VAXPY])
    def test_runs_and_audits(self, org, kernel):
        config = getattr(MemorySystemConfig, org)()
        controller = L2StreamingController(
            config, prefetch_window=8, record_trace=True
        )
        result = controller.run(kernel, length=256)
        audit_trace(controller.device.trace, config.timing)
        assert result.policy == "l2-streaming"
        assert result.useful_bytes == kernel.num_streams * 256 * 8
        assert result.percent_of_peak > 30

    def test_deterministic(self, pi_config):
        runs = [
            L2StreamingController(pi_config, prefetch_window=8).run(
                DAXPY, length=256
            )
            for __ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_dirty_lines_all_stream_out(self, cli_config):
        controller = L2StreamingController(cli_config, prefetch_window=8)
        controller.run(COPY, length=256)
        # Every line of y is written back exactly once (64 lines).
        assert controller.writebacks_streamed == 256 // 4

    def test_strided_run(self, cli_config):
        controller = L2StreamingController(cli_config, prefetch_window=8)
        result = controller.run(DAXPY, length=256, stride=4)
        assert result.stride == 4
        assert result.percent_of_peak > 5


class TestPrematureEviction:
    def test_ample_l2_has_no_refetches(self, cli_config):
        controller = L2StreamingController(cli_config, prefetch_window=8)
        controller.run(COPY, length=512)
        assert controller.refetches == 0

    def test_tiny_direct_mapped_l2_thrashes(self, cli_config):
        """The paper's predicted failure mode: conflicts evict needed
        data prematurely, forcing demand refetches."""
        tiny = CacheConfig(size_bytes=2048, associativity=1, line_bytes=32)
        controller = L2StreamingController(
            cli_config, l2_config=tiny, prefetch_window=16
        )
        result = controller.run(
            VAXPY, length=512, alignment=Alignment.ALIGNED
        )
        assert controller.refetches > 100
        healthy = L2StreamingController(cli_config, prefetch_window=16).run(
            VAXPY, length=512, alignment=Alignment.ALIGNED
        )
        assert result.percent_of_peak < healthy.percent_of_peak / 2

    def test_associativity_rescues_conflicts(self, cli_config):
        tiny_direct = CacheConfig(size_bytes=4096, associativity=1, line_bytes=32)
        tiny_assoc = CacheConfig(size_bytes=4096, associativity=4, line_bytes=32)
        direct = L2StreamingController(
            cli_config, l2_config=tiny_direct, prefetch_window=8
        )
        direct.run(VAXPY, length=512, alignment=Alignment.ALIGNED)
        assoc = L2StreamingController(
            cli_config, l2_config=tiny_assoc, prefetch_window=8
        )
        assoc.run(VAXPY, length=512, alignment=Alignment.ALIGNED)
        assert assoc.refetches <= direct.refetches


class TestAgainstFifoSmc:
    def test_fifo_sbu_beats_l2_staging(self, pi_config):
        """The FIFO SBU avoids both the coherence problem's cost and
        the conflict exposure; the L2 variant trades bandwidth for
        coherence simplicity."""
        l2 = L2StreamingController(pi_config, prefetch_window=8).run(
            DAXPY, length=1024
        )
        fifo = simulate(RunSpec("daxpy", pi_config, length=1024, fifo_depth=32))
        assert fifo.percent_of_peak > l2.percent_of_peak
