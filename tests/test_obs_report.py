"""Tests for the self-contained HTML report and its CLI.

The one property everything else hangs off: the output is a single
static document — no scripts, no external references — that renders
from any combination of ledger, metrics, and traffic inputs.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ObservabilityError
from repro.exec import execution, run_specs
from repro.obs.ledger import Ledger
from repro.obs.metrics import MetricsRegistry, write_metrics_jsonl
from repro.obs.report import main, render_report
from repro.sim.runner import RunSpec
from repro.traffic import TrafficWorkload, run_traffic

WORKLOAD = TrafficWorkload(clients=16, requests=80, seed=9)


@pytest.fixture
def ledger(tmp_path):
    path = tmp_path / "run.jsonl"
    with execution(ledger=path):
        run_specs([RunSpec(kernel="copy", length=128)])
    return Ledger.load(path)


@pytest.fixture
def traffic_registry():
    registry = MetricsRegistry()
    result = run_traffic(
        workload=WORKLOAD,
        channels=2,
        registry=registry,
        telemetry_window=128,
    )
    return result, registry


def _assert_self_contained(text):
    lowered = text.lower()
    assert "<script" not in lowered
    assert "http" not in lowered  # no external assets of any kind
    assert text.startswith("<!DOCTYPE html>")
    assert "prefers-color-scheme: dark" in text


class TestRender:
    def test_ledger_only(self, ledger):
        text = render_report(ledger=ledger)
        _assert_self_contained(text)
        assert "Run ledger" in text
        assert "Batches" in text

    def test_traffic_and_metrics(self, traffic_registry):
        result, registry = traffic_registry
        text = render_report(metrics=registry, traffic=[result])
        _assert_self_contained(text)
        assert "Where request latency went" in text
        assert "queue_wait" in text
        assert "traffic.bank_bytes" in text
        assert "<svg" in text

    def test_all_inputs(self, ledger, traffic_registry):
        result, registry = traffic_registry
        text = render_report(
            ledger=ledger, metrics=registry, traffic=[result]
        )
        _assert_self_contained(text)
        for heading in ("Run ledger", "Traffic", "Metrics"):
            assert f"<h2>{heading}</h2>" in text

    def test_empty_inputs_rejected(self):
        with pytest.raises(ObservabilityError):
            render_report()
        with pytest.raises(ObservabilityError):
            render_report(metrics=MetricsRegistry())

    def test_title_is_escaped(self, ledger):
        text = render_report(ledger=ledger, title='<img src=x> & "q"')
        assert "<img" not in text
        assert "&lt;img src=x&gt; &amp; &quot;q&quot;" in text


class TestCli:
    def test_renders_all_inputs(
        self, tmp_path, ledger, traffic_registry, capsys
    ):
        result, registry = traffic_registry
        ledger_path = tmp_path / "run.jsonl"
        with execution(ledger=ledger_path):
            run_specs([RunSpec(kernel="copy", length=128)])
        metrics_path = tmp_path / "metrics.jsonl"
        write_metrics_jsonl(metrics_path, registry)
        traffic_path = tmp_path / "traffic.json"
        traffic_path.write_text(json.dumps(result.to_dict()))
        out = tmp_path / "report.html"

        assert main([
            "--ledger", str(ledger_path),
            "--metrics", str(metrics_path),
            "--traffic", str(traffic_path),
            "--out", str(out),
            "--title", "cli smoke",
        ]) == 0
        text = out.read_text()
        _assert_self_contained(text)
        assert "cli smoke" in text
        assert str(out) in capsys.readouterr().out

    def test_missing_input_is_an_error(self, tmp_path, capsys):
        assert main([
            "--ledger", str(tmp_path / "absent.jsonl"),
            "--out", str(tmp_path / "report.html"),
        ]) == 1
        assert "error:" in capsys.readouterr().err

    def test_no_inputs_is_an_error(self, tmp_path, capsys):
        assert main(["--out", str(tmp_path / "report.html")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_traffic_json_is_an_error(self, tmp_path, capsys):
        bogus = tmp_path / "traffic.json"
        bogus.write_text("[1, 2, 3]")
        assert main([
            "--traffic", str(bogus),
            "--out", str(tmp_path / "report.html"),
        ]) == 1
        assert "organization" in capsys.readouterr().err
