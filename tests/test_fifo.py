"""Tests for stream FIFOs and access-unit planning."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchedulingError, StreamError
from repro.core.fifo import StreamFifo, build_access_units
from repro.cpu.streams import Direction, StreamDescriptor
from repro.memsys.address import AddressMap
from repro.memsys.config import MemorySystemConfig


def make_units(
    stride=1, length=64, org="cli", base=0, policy=None
):
    config = getattr(MemorySystemConfig, org)()
    descriptor = StreamDescriptor(
        "x", base=base, stride=stride, length=length, direction=Direction.READ
    )
    return build_access_units(
        descriptor,
        AddressMap(config),
        policy if policy is not None else config.page_policy,
    )


class TestAccessUnits:
    def test_unit_stride_pairs_elements_into_packets(self):
        units = make_units(stride=1, length=64)
        assert len(units) == 32
        assert all(unit.elements == 2 for unit in units)

    def test_stride_two_uses_one_element_per_packet(self):
        units = make_units(stride=2, length=64)
        assert len(units) == 64
        assert all(unit.elements == 1 for unit in units)

    def test_units_cover_every_element_exactly_once(self):
        for stride in (1, 2, 3, 4, 7, 16):
            units = make_units(stride=stride, length=50)
            assert sum(unit.elements for unit in units) == 50

    def test_closed_page_flags_last_unit_of_each_line(self):
        units = make_units(stride=1, length=16, org="cli")
        # 4-word lines, 2 packets per line: flags on every second unit.
        flags = [unit.precharge_after for unit in units]
        assert flags == [False, True] * 4

    def test_open_page_plants_no_flags(self):
        units = make_units(stride=1, length=64, org="pi")
        assert not any(unit.precharge_after for unit in units)

    def test_closed_page_run_spans_same_row(self):
        # At stride 8 on CLI, each element is its own line; every unit
        # is the last of its run.
        units = make_units(stride=8, length=16, org="cli")
        assert all(unit.precharge_after for unit in units)

    def test_pi_units_stay_in_bank_for_a_page(self):
        units = make_units(stride=1, length=256, org="pi")
        banks = [unit.location.bank for unit in units]
        assert banks[:64] == [0] * 64
        assert banks[64:128] == [1] * 64

    def test_cli_units_rotate_banks_each_line(self):
        units = make_units(stride=1, length=64, org="cli")
        banks = [unit.location.bank for unit in units]
        assert banks[:8] == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_final_partial_flag_on_stream_end(self):
        units = make_units(stride=1, length=6, org="cli")
        assert units[-1].precharge_after


def make_fifo(depth=8, direction=Direction.READ, length=32, stride=1):
    config = MemorySystemConfig.cli()
    descriptor = StreamDescriptor(
        "s", base=0, stride=stride, length=length, direction=direction
    )
    units = build_access_units(descriptor, AddressMap(config), config.page_policy)
    return StreamFifo(descriptor, depth, units)


class TestReadFifo:
    def test_depth_must_hold_a_packet(self):
        with pytest.raises(StreamError, match="depth"):
            make_fifo(depth=1)

    def test_serviceable_until_full(self):
        fifo = make_fifo(depth=4)
        assert fifo.serviceable
        fifo.note_issue()
        fifo.note_issue()
        assert not fifo.serviceable  # 4 elements in flight == depth

    def test_arrival_moves_inflight_to_occupancy(self):
        fifo = make_fifo(depth=4)
        fifo.note_issue()
        fifo.note_arrival(2)
        assert fifo.inflight == 0
        assert fifo.occupancy == 2

    def test_cpu_pop_frees_space(self):
        fifo = make_fifo(depth=4)
        fifo.note_issue()
        fifo.note_issue()
        fifo.note_arrival(2)
        assert not fifo.serviceable
        fifo.cpu_pop()
        fifo.cpu_pop()
        assert fifo.serviceable

    def test_pop_empty_rejected(self):
        fifo = make_fifo()
        with pytest.raises(SchedulingError, match="empty"):
            fifo.cpu_pop()

    def test_arrival_overflow_rejected(self):
        fifo = make_fifo(depth=4)
        fifo.note_issue()
        with pytest.raises(SchedulingError, match="in flight"):
            fifo.note_arrival(4)

    def test_arrival_on_write_fifo_rejected(self):
        fifo = make_fifo(direction=Direction.WRITE)
        with pytest.raises(SchedulingError, match="write FIFO"):
            fifo.note_arrival(1)

    def test_exhaustion_and_drain(self):
        fifo = make_fifo(depth=64, length=8)
        while not fifo.exhausted:
            fifo.note_issue()
        assert not fifo.fully_drained
        fifo.note_arrival(8)
        for __ in range(8):
            fifo.cpu_pop()
        assert fifo.fully_drained

    def test_next_unit_after_exhaustion_rejected(self):
        fifo = make_fifo(depth=64, length=4)
        fifo.note_issue()
        fifo.note_issue()
        with pytest.raises(SchedulingError, match="no units"):
            fifo.next_unit()

    def test_upcoming_units_window(self):
        fifo = make_fifo(depth=64, length=32)
        assert len(fifo.upcoming_units(4)) == 4
        fifo.note_issue()
        assert fifo.upcoming_units(100)[0] is fifo.units[1]


class TestWriteFifo:
    def test_needs_full_packet_to_drain(self):
        fifo = make_fifo(direction=Direction.WRITE, depth=8)
        assert not fifo.serviceable
        fifo.cpu_push()
        assert not fifo.serviceable
        fifo.cpu_push()
        assert fifo.serviceable

    def test_drain_consumes_elements(self):
        fifo = make_fifo(direction=Direction.WRITE, depth=8)
        fifo.cpu_push()
        fifo.cpu_push()
        fifo.note_issue()
        assert fifo.occupancy == 0

    def test_push_to_full_rejected(self):
        fifo = make_fifo(direction=Direction.WRITE, depth=2)
        fifo.cpu_push()
        fifo.cpu_push()
        with pytest.raises(SchedulingError, match="full"):
            fifo.cpu_push()

    def test_cannot_pop_write_fifo(self):
        fifo = make_fifo(direction=Direction.WRITE)
        fifo.cpu_push()
        assert not fifo.cpu_can_pop()

    def test_issue_unserviceable_rejected(self):
        fifo = make_fifo(direction=Direction.WRITE)
        with pytest.raises(SchedulingError, match="unserviceable"):
            fifo.note_issue()

    def test_write_fully_drained_when_exhausted(self):
        fifo = make_fifo(direction=Direction.WRITE, depth=8, length=4)
        for __ in range(4):
            fifo.cpu_push()
        fifo.note_issue()
        fifo.note_issue()
        assert fifo.fully_drained


class TestFifoProperties:
    @given(
        ops=st.lists(st.sampled_from(["issue", "arrive", "pop"]), max_size=60),
        depth=st.integers(min_value=2, max_value=16),
    )
    @settings(max_examples=100)
    def test_read_fifo_invariants(self, ops, depth):
        """Occupancy + inflight never exceeds depth; counts never go
        negative; arrivals never exceed what was issued."""
        fifo = make_fifo(depth=depth, length=64)
        pending = []  # in-flight packet element counts, FIFO order
        for op in ops:
            if op == "issue" and fifo.serviceable:
                unit = fifo.next_unit()
                fifo.note_issue()
                pending.append(unit.elements)
            elif op == "arrive" and pending:
                fifo.note_arrival(pending.pop(0))
            elif op == "pop" and fifo.cpu_can_pop():
                fifo.cpu_pop()
            assert 0 <= fifo.occupancy
            assert 0 <= fifo.inflight
            assert fifo.occupancy + fifo.inflight <= depth
