"""Tests for the adaptive-policy refactor: schedulers, dream, search.

``tests/data/pinned_policy_refactor.json`` was captured from the
simulator *before* scheduling was extracted out of
:class:`~repro.traffic.driver.ChannelServer`, before the registries
moved onto the shared :class:`repro.registry.Registry`, and before the
observe/epoch hook landed on :class:`~repro.memsys.address.
AddressMapping`.  The identity tests regenerate every pinned
configuration — open-loop traffic (scaled, hot, regulated) and all
five controllers across the static policy registries — and require
byte-identical results: the refactor re-routed the code, not the
behavior.

On top of the identity floor:

* scheduler registry semantics (FCFS equivalence, FR-FCFS/MARS
  parameter validation, the single-channel instance rule),
* the MARS starvation age cap and its matched-load p99 win,
* a Hypothesis property: ``dream`` remains a full bijection after
  every re-arrangement epoch, on random geometries and epoch lengths,
* the policy-search driver: same seed, same winners, warm-cache hit
  rates on generation 2+.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.controller import CachedNaturalOrderController
from repro.core.l2stream import L2StreamingController
from repro.core.smc import build_smc_system
from repro.cpu.kernels import PAPER_KERNELS
from repro.errors import ConfigurationError
from repro.exec import execution
from repro.experiments.multi_client import (
    HOT_WORKLOAD,
    REGULATOR_BUDGET,
    REGULATOR_WINDOW,
    SCALING_WORKLOAD,
)
from repro.memsys.address import get_address_mapping
from repro.memsys.config import MemorySystemConfig
from repro.naturalorder.controller import NaturalOrderController
from repro.naturalorder.random_driver import RandomAccessDriver
from repro.obs.ledger import Ledger
from repro.rdram.device import RdramGeometry
from repro.registry import Registry
from repro.search import PolicyGenome, SearchConfig, mutate, run_search
from repro.sim.engine import run_smc
from repro.traffic import (
    SCHEDULERS,
    BankBudgetRegulator,
    TrafficWorkload,
    list_schedulers,
    make_scheduler,
    run_traffic,
)

FIXTURE = Path(__file__).parent / "data" / "pinned_policy_refactor.json"

LENGTH = 128
FIFO_DEPTH = 32

ORGS = {
    "cli": MemorySystemConfig.cli,
    "pi": MemorySystemConfig.pi,
}

#: The matched-load Zipf hot-set population the scheduler comparisons
#: run on (small enough for the test budget: queues form in bursts,
#: so reordering has material to work with).
MATCHED_WORKLOAD = TrafficWorkload(
    clients=8,
    requests=512,
    mean_gap=32.0,
    zipf_s=2.0,
    hot_lines=4,
    hot_fraction=0.9,
    seed=5,
)


@pytest.fixture(scope="module")
def pinned():
    return json.loads(FIXTURE.read_text())


def _assert_matches(got: dict, want: dict) -> None:
    # Fixture keys only: fields added after the capture (e.g. the
    # TrafficResult ``scheduler`` tag) are new surface, not drift.
    # The JSON round trip normalizes tuples to lists, like the capture.
    got = json.loads(json.dumps(got))
    mismatches = {
        field: (got[field], value)
        for field, value in want.items()
        if got[field] != value
    }
    assert not mismatches, mismatches


class TestPinnedPolicyRefactorIdentity:
    """Static-policy results must be byte-identical to pre-refactor."""

    @pytest.mark.parametrize("channels", (1, 2, 4))
    def test_traffic_scaling(self, pinned, channels):
        result = run_traffic(workload=SCALING_WORKLOAD, channels=channels)
        _assert_matches(
            result.to_dict(), pinned[f"traffic/scaling/{channels}ch"]
        )

    def test_traffic_hot_unregulated(self, pinned):
        result = run_traffic(workload=HOT_WORKLOAD)
        _assert_matches(result.to_dict(), pinned["traffic/hot/unregulated"])

    def test_traffic_hot_regulated(self, pinned):
        result = run_traffic(
            workload=HOT_WORKLOAD,
            regulator=BankBudgetRegulator(
                window_cycles=REGULATOR_WINDOW,
                budget_bytes=REGULATOR_BUDGET,
            ),
        )
        _assert_matches(result.to_dict(), pinned["traffic/hot/regulated"])

    @pytest.mark.parametrize("org", sorted(ORGS))
    def test_smc(self, pinned, org):
        result = run_smc(
            build_smc_system(
                PAPER_KERNELS["daxpy"],
                ORGS[org](),
                length=LENGTH,
                fifo_depth=FIFO_DEPTH,
            )
        )
        _assert_matches(
            dataclasses.asdict(result), pinned[f"smc/{org}/daxpy"]
        )

    @pytest.mark.parametrize("org", sorted(ORGS))
    def test_natural_order(self, pinned, org):
        result = NaturalOrderController(ORGS[org]()).run(
            PAPER_KERNELS["daxpy"], length=LENGTH
        )
        _assert_matches(
            dataclasses.asdict(result), pinned[f"natural/{org}/daxpy"]
        )

    @pytest.mark.parametrize("org", sorted(ORGS))
    def test_cached(self, pinned, org):
        result = CachedNaturalOrderController(ORGS[org]()).run(
            PAPER_KERNELS["daxpy"], length=LENGTH
        )
        _assert_matches(
            dataclasses.asdict(result), pinned[f"cached/{org}/daxpy"]
        )

    @pytest.mark.parametrize("org", sorted(ORGS))
    def test_l2_streaming(self, pinned, org):
        result = L2StreamingController(ORGS[org]()).run(
            PAPER_KERNELS["daxpy"], length=LENGTH
        )
        _assert_matches(
            dataclasses.asdict(result), pinned[f"l2/{org}/daxpy"]
        )

    @pytest.mark.parametrize("org", sorted(ORGS))
    def test_random_driver(self, pinned, org):
        result = RandomAccessDriver(ORGS[org]()).run(
            64, write_fraction=0.25, seed=7
        )
        _assert_matches(
            dataclasses.asdict(result), pinned[f"random/{org}/uniform"]
        )

    @pytest.mark.parametrize(
        "interleaving,page_policy",
        (("swizzle", "closed"), ("cli", "timeout"), ("pi", "hybrid")),
    )
    def test_static_policy_combinations(
        self, pinned, interleaving, page_policy
    ):
        config = MemorySystemConfig(
            interleaving=interleaving, page_policy=page_policy
        )
        result = run_smc(
            build_smc_system(
                PAPER_KERNELS["daxpy"],
                config,
                length=LENGTH,
                fifo_depth=FIFO_DEPTH,
            )
        )
        _assert_matches(
            dataclasses.asdict(result),
            pinned[f"smc/{interleaving}+{page_policy}/daxpy"],
        )

    def test_fixture_covers_the_full_matrix(self, pinned):
        assert len(pinned) == 18


class TestSchedulerRegistry:
    def test_listing(self):
        assert list_schedulers() == ["fcfs", "frfcfs", "mars"]

    def test_unknown_name_lists_the_registered(self):
        with pytest.raises(ConfigurationError, match="zorp.*fcfs"):
            make_scheduler("zorp")

    def test_duplicate_registration_rejected(self):
        class Impostor(SCHEDULERS["fcfs"]):
            name = "fcfs"

        with pytest.raises(ConfigurationError, match="registered twice"):
            SCHEDULERS.register(Impostor)
        assert SCHEDULERS["fcfs"] is not Impostor

    def test_default_name_rejected(self):
        registry: Registry[type] = Registry("widget")

        class Nameless:
            pass

        with pytest.raises(ConfigurationError, match="non-default name"):
            registry.register(Nameless)

    @pytest.mark.parametrize("params", ({"window": 0}, {"window": -4}))
    def test_frfcfs_validates_the_window(self, params):
        with pytest.raises(ConfigurationError, match="window"):
            make_scheduler("frfcfs", **params)

    def test_mars_validates_the_age_cap(self):
        with pytest.raises(ConfigurationError, match="age cap"):
            make_scheduler("mars", age_cap=0)

    def test_instance_rejected_across_channels(self):
        with pytest.raises(ConfigurationError, match="prebuilt"):
            run_traffic(
                workload=MATCHED_WORKLOAD,
                channels=2,
                scheduler=make_scheduler("mars"),
            )

    def test_name_accepted_across_channels(self):
        result = run_traffic(
            workload=MATCHED_WORKLOAD, channels=2, scheduler="mars"
        )
        assert result.scheduler == "mars"
        assert result.requests == MATCHED_WORKLOAD.requests


class TestSchedulerBehavior:
    def test_fcfs_is_the_default_and_identical(self):
        baseline = run_traffic(workload=MATCHED_WORKLOAD)
        explicit = run_traffic(workload=MATCHED_WORKLOAD, scheduler="fcfs")
        assert baseline.to_dict() == explicit.to_dict()
        assert baseline.scheduler == "fcfs"

    def test_fcfs_identical_under_regulation(self):
        regulator = lambda: BankBudgetRegulator(  # noqa: E731
            window_cycles=REGULATOR_WINDOW, budget_bytes=REGULATOR_BUDGET
        )
        baseline = run_traffic(workload=HOT_WORKLOAD, regulator=regulator())
        explicit = run_traffic(
            workload=HOT_WORKLOAD, regulator=regulator(), scheduler="fcfs"
        )
        assert baseline.to_dict() == explicit.to_dict()

    def test_mars_cuts_p99_at_matched_load(self):
        # The PR's acceptance criterion: batching the Zipf hot rows
        # into consecutive page hits cuts tail latency vs FCFS at
        # identical offered load (open-page system).
        config = MemorySystemConfig.cli(page_policy="open")
        fcfs = run_traffic(config, MATCHED_WORKLOAD, scheduler="fcfs")
        mars = run_traffic(config, MATCHED_WORKLOAD, scheduler="mars")
        assert mars.p99_latency < fcfs.p99_latency

    def test_mars_with_exhausted_age_cap_degenerates_to_fcfs(self):
        # Age cap 1: the oldest request is always "starved", so every
        # pick takes the strict-arrival-order path.
        config = MemorySystemConfig.cli(page_policy="open")
        fcfs = run_traffic(config, MATCHED_WORKLOAD, scheduler="fcfs")
        capped = run_traffic(
            config,
            MATCHED_WORKLOAD,
            scheduler=make_scheduler("mars", age_cap=1),
        )
        want = {
            k: v for k, v in fcfs.to_dict().items() if k != "scheduler"
        }
        _assert_matches(capped.to_dict(), want)

    def test_scheduler_round_trips_through_to_dict(self):
        from repro.traffic import TrafficResult

        result = run_traffic(workload=MATCHED_WORKLOAD, scheduler="frfcfs")
        assert result.scheduler == "frfcfs"
        restored = TrafficResult.from_dict(result.to_dict())
        assert restored.scheduler == "frfcfs"
        assert restored.to_dict() == result.to_dict()


@st.composite
def dream_histories(draw):
    """A dream mapping plus an access history spanning >= 2 epochs."""
    num_banks = draw(st.integers(min_value=1, max_value=8))
    geometry = RdramGeometry(
        num_banks=num_banks,
        page_bytes=256,
        rows_per_bank=draw(st.integers(min_value=2, max_value=8)),
    )
    epoch = draw(st.integers(min_value=1, max_value=32))
    config = MemorySystemConfig(
        geometry=geometry,
        interleaving="dream",
        page_policy="open",
        remap_epoch_accesses=epoch,
    )
    mapping = get_address_mapping(config)
    accesses = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=num_banks - 1),
                st.integers(
                    min_value=0, max_value=geometry.rows_per_bank - 1
                ),
            ),
            min_size=2 * epoch,
            max_size=4 * epoch,
        )
    )
    return mapping, epoch, accesses


class TestDreamMapping:
    @given(dream_histories())
    @settings(max_examples=60, deadline=None)
    def test_bijection_survives_every_epoch(self, case):
        # The satellite property: after *every* re-arrangement epoch —
        # whatever skew the history applied — decompose/compose is
        # still an exact bijection over the whole address space.
        mapping, epoch, accesses = case
        for position, (bank, row) in enumerate(accesses):
            mapping.observe_access(bank, row, now=position)
            if (position + 1) % epoch:
                continue
            seen = set()
            for address in range(0, mapping.capacity_bytes, 16):
                location = mapping.decompose(address)
                key = (location.bank, location.row, location.column)
                assert key not in seen
                seen.add(key)
                assert mapping.compose(location) == address
            assert len(seen) == mapping.capacity_bytes // 16

    def test_skewed_history_forces_remaps(self):
        config = MemorySystemConfig(
            geometry=RdramGeometry(
                num_banks=8, page_bytes=256, rows_per_bank=4
            ),
            interleaving="dream",
            page_policy="open",
            remap_epoch_accesses=16,
        )
        mapping = get_address_mapping(config)
        hot = mapping.decompose(0)
        events = sum(
            mapping.observe_access(hot.bank, hot.row, now=cycle)
            for cycle in range(64)
        )
        assert events == 4  # every fully-skewed epoch re-arranges
        assert mapping.remap_events == 4
        # The hot page lands somewhere else after the re-arrangement.
        assert mapping.decompose(0) != hot

    def test_balanced_history_never_remaps(self):
        config = MemorySystemConfig(
            geometry=RdramGeometry(
                num_banks=4, page_bytes=256, rows_per_bank=4
            ),
            interleaving="dream",
            page_policy="open",
            remap_epoch_accesses=8,
        )
        mapping = get_address_mapping(config)
        before = [
            mapping.decompose(a)
            for a in range(0, mapping.capacity_bytes, 16)
        ]
        for cycle in range(64):
            mapping.observe_access(cycle % 4, 0, now=cycle)
        after = [
            mapping.decompose(a)
            for a in range(0, mapping.capacity_bytes, 16)
        ]
        assert mapping.remap_events == 0
        assert before == after

    def test_channel_striping_delegates_observation(self):
        config = MemorySystemConfig(
            geometry=RdramGeometry(
                num_banks=8, page_bytes=256, rows_per_bank=4
            ),
            interleaving="dream",
            page_policy="open",
            remap_epoch_accesses=16,
        )
        striped = get_address_mapping(
            dataclasses.replace(
                config,
                topology=type(config.topology)(channels=2),
            )
        )
        assert striped.stateful
        hot = striped.base.decompose(0)
        for cycle in range(32):
            striped.observe_access(hot.bank, hot.row, now=cycle)
        assert striped.remap_events == striped.base.remap_events > 0
        # Still bijective through the striping composition.
        for address in range(0, striped.capacity_bytes, 256):
            assert striped.compose(striped.decompose(address)) == address

    def test_epoch_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="remap_epoch"):
            MemorySystemConfig.cli(remap_epoch_accesses=0)

    def test_dream_routes_to_the_event_engine(self):
        from repro.sim.runner import RunSpec, simulate

        spec = RunSpec(
            kernel="daxpy",
            organization=MemorySystemConfig.cli(interleaving="dream"),
            length=64,
            fifo_depth=16,
            engine="auto",
        )
        result = simulate(spec)
        assert result.cycles > 0
        with pytest.raises(ConfigurationError, match="batch"):
            simulate(dataclasses.replace(spec, engine="batch"))


def _batch_hit_rates(ledger_path):
    """Per-batch warm-cache hit fraction from lifecycle events."""
    ledger = Ledger.load(ledger_path)
    hits: dict = {}
    done: dict = {}
    for event in ledger.events:
        if event.batch is None:
            continue
        # Traffic runs frame their own single-spec batches; only the
        # run_specs generation batches measure the result cache.
        if event.key is not None and event.key.startswith("traffic/"):
            continue
        if event.event == "cache_hit":
            hits[event.batch] = hits.get(event.batch, 0) + 1
        elif event.event == "completed":
            done[event.batch] = done.get(event.batch, 0) + 1
    return {
        batch: hits.get(batch, 0)
        / (hits.get(batch, 0) + done.get(batch, 0))
        for batch in sorted(set(hits) | set(done))
    }


class TestPolicySearch:
    def _config(self):
        return SearchConfig(generations=3, population=6, length=64)

    def test_same_seed_same_winners(self, tmp_path):
        outcomes = []
        for attempt in range(2):
            with execution(cache=str(tmp_path / "cache")):
                outcomes.append(run_search(self._config()))
        first, second = outcomes
        assert [g.best.genome for g in first.generations] == [
            g.best.genome for g in second.generations
        ]
        assert first.winner.genome == second.winner.genome
        assert first.winner.spec_keys == second.winner.spec_keys
        assert first.to_dict() == second.to_dict()

    def test_generation_two_runs_mostly_from_cache(self, tmp_path):
        ledger_path = tmp_path / "ledger.jsonl"
        with execution(
            cache=str(tmp_path / "cache"), ledger=str(ledger_path)
        ):
            result = run_search(self._config())
        rates = _batch_hit_rates(ledger_path)
        assert len(rates) == 3  # one run_specs batch per generation
        batches = sorted(rates)
        assert rates[batches[0]] == 0.0  # cold start
        for batch in batches[1:]:
            # Elites (and scheduler-only mutations) re-resolve from
            # the warm cache: the PR's >= 50% criterion.
            assert rates[batch] >= 0.5, rates
        ledger = Ledger.load(ledger_path)
        frames = [e for e in ledger.events if e.event == "generation"]
        assert [e.fields["index"] for e in frames] == [0, 1, 2]
        assert frames[-1].fields["best_genome"] == result.winner.genome.key()

    def test_search_runs_without_context(self):
        # No execution() frame: no cache, no ledger, still correct.
        result = run_search(
            SearchConfig(generations=1, population=2, elites=1, length=64)
        )
        assert len(result.generations) == 1
        assert result.winner.score == result.generations[0].best.score

    def test_config_validation(self):
        with pytest.raises(ConfigurationError, match="generation"):
            SearchConfig(generations=0)
        with pytest.raises(ConfigurationError, match="population"):
            SearchConfig(population=1)
        with pytest.raises(ConfigurationError, match="elites"):
            SearchConfig(population=4, elites=4)
        with pytest.raises(ConfigurationError, match="kernel"):
            SearchConfig(kernels=())

    def test_normalization_collapses_inert_knobs(self):
        import random

        noisy = PolicyGenome(scheduler="fcfs", window=8, age_cap=128)
        assert noisy.normalized() == PolicyGenome()
        live = PolicyGenome(scheduler="mars", age_cap=128)
        assert live.normalized().age_cap == 128
        rng = random.Random(3)
        for _ in range(32):
            genome = mutate(PolicyGenome(), rng)
            assert genome != PolicyGenome()
