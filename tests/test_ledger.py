"""Tests for the append-only run ledger.

Covers the lifecycle invariants (first event queued, monotonic
timestamps, nothing after a terminal event), replay reconstruction
(the ledger alone recovers the spec set and cache-hit count),
bit-neutrality (a ledgered run changes no results and no cache keys),
the crash/retry path, and multiple runs appended to one file.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import ObservabilityError
from repro.exec import ResultCache, execution, run_specs
from repro.obs.ledger import Ledger, LedgerWriter
from repro.sim.runner import RunSpec

SPECS = [
    RunSpec(kernel="copy", length=length, stride=stride)
    for length in (128, 256)
    for stride in (1, 2)
]


class TestWriter:
    def test_opens_with_versioned_header(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with LedgerWriter(path) as writer:
            writer.record("queued", batch=0, index=0, key="k")
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        assert lines[0]["event"] == "ledger_open"
        assert lines[0]["version"] == 1
        assert lines[0]["pid"] == os.getpid()
        assert lines[1]["event"] == "queued"

    def test_rejects_unknown_event(self, tmp_path):
        with LedgerWriter(tmp_path / "run.jsonl") as writer:
            with pytest.raises(ObservabilityError):
                writer.record("teleported", batch=0, index=0)

    def test_rejects_writes_after_close(self, tmp_path):
        writer = LedgerWriter(tmp_path / "run.jsonl")
        writer.close()
        writer.close()  # idempotent
        with pytest.raises(ObservabilityError):
            writer.record("queued", batch=0, index=0)

    def test_unwritable_path_raises(self, tmp_path):
        with pytest.raises(ObservabilityError):
            LedgerWriter(tmp_path / "missing-dir" / "run.jsonl")


class TestReader:
    def test_rejects_malformed_lines(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ObservabilityError):
            Ledger.load(path)

    def test_rejects_event_before_open(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(json.dumps({"event": "queued", "t": 0.0}) + "\n")
        with pytest.raises(ObservabilityError):
            Ledger.load(path)


class TestSweepLifecycle:
    def _run(self, tmp_path, workers):
        path = tmp_path / "run.jsonl"
        cache = ResultCache(tmp_path / "cache")
        with execution(workers=workers, cache=cache, ledger=path):
            cold = run_specs(SPECS)
            warm = run_specs(SPECS)
        assert cold == warm
        return Ledger.load(path), cache

    @pytest.mark.parametrize("workers", [1, 2])
    def test_invariants_and_counts(self, tmp_path, workers):
        ledger, _ = self._run(tmp_path, workers)
        assert ledger.verify() == []
        counts = ledger.counts()
        assert counts["queued"] == 2 * len(SPECS)
        assert counts["completed"] == len(SPECS)
        assert counts["cache_hit"] == len(SPECS)
        assert counts["batch"] == 2

    @pytest.mark.parametrize("workers", [1, 2])
    def test_replay_reconstructs_run(self, tmp_path, workers):
        ledger, cache = self._run(tmp_path, workers)
        # The ledger alone recovers the executed spec set...
        expected = [spec.canonical_key() for spec in SPECS]
        assert ledger.spec_keys() == expected + expected
        # ...and the cache-hit count agrees with the cache itself.
        assert ledger.cache_hits == cache.hits

    def test_bit_neutral(self, tmp_path):
        plain = run_specs(SPECS)
        with execution(ledger=tmp_path / "run.jsonl"):
            ledgered = run_specs(SPECS)
        assert plain == ledgered

    def test_worker_utilization_and_critical_path(self, tmp_path):
        ledger, _ = self._run(tmp_path, workers=2)
        utilization = ledger.worker_utilization()
        assert utilization
        assert all(0.0 <= u <= 1.0 for u in utilization.values())
        batches = ledger.batch_summaries()
        assert len(batches) == 2
        assert batches[0].completed == len(SPECS)
        assert batches[0].critical_label is not None
        assert batches[1].cache_hits == len(SPECS)
        assert "critical path" in ledger.summary()

    def test_multiple_runs_in_one_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        for _ in range(2):
            with execution(ledger=path):
                run_specs(SPECS[:2])
        ledger = Ledger.load(path)
        assert ledger.runs == 2
        assert ledger.verify() == []
        assert ledger.counts()["queued"] == 4


class TestCrashPath:
    def test_retried_and_failed_events(self, tmp_path, monkeypatch):
        path = tmp_path / "run.jsonl"
        monkeypatch.setenv("REPRO_EXEC_CRASH_KERNEL", "copy")
        with pytest.raises(Exception):
            with execution(workers=2, ledger=path):
                run_specs(SPECS, retries=1)
        ledger = Ledger.load(path)
        counts = ledger.counts()
        assert counts.get("retried", 0) > 0
        assert counts.get("failed", 0) > 0
        assert ledger.verify() == []

    def test_crash_once_recovers_with_retried_event(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "run.jsonl"
        monkeypatch.setenv("REPRO_EXEC_CRASH_KERNEL", "copy")
        monkeypatch.setenv(
            "REPRO_EXEC_CRASH_ONCE", str(tmp_path / "crashed")
        )
        with execution(workers=2, ledger=path):
            results = run_specs(SPECS)
        assert all(result is not None for result in results)
        ledger = Ledger.load(path)
        counts = ledger.counts()
        assert counts["completed"] == len(SPECS)
        assert counts.get("retried", 0) > 0
        assert counts.get("failed", 0) == 0
        assert ledger.verify() == []
