"""Hand-checked values for the verbatim Section 5 equations."""

from __future__ import annotations

import pytest

from repro.analytic import equations as eq
from repro.rdram.timing import RdramTiming

L_C = 4   # 64-bit words per 32-byte cacheline
L_P = 128  # words per 1 KB page
W_P = 2   # words per DATA packet


@pytest.fixture
def t():
    return RdramTiming()


class TestClosedPage:
    def test_eq_5_2_t_lcc(self, t):
        # t_RAC + t_PACK * (L_c/w_p - 1) = 20 + 4*1 = 24.
        assert eq.eq_5_2_t_lcc(t, L_C, W_P) == 24

    def test_eq_5_3_unit_stride(self, t):
        # 24 cycles / 4 useful words = 6 cycles per word.
        assert eq.eq_5_3_single_stream_closed(t, L_C, W_P, 1) == pytest.approx(6.0)

    def test_eq_5_3_stride_two(self, t):
        assert eq.eq_5_3_single_stream_closed(t, L_C, W_P, 2) == pytest.approx(12.0)

    def test_eq_5_3_saturates_beyond_cacheline(self, t):
        beyond = eq.eq_5_3_single_stream_closed(t, L_C, W_P, 8)
        far_beyond = eq.eq_5_3_single_stream_closed(t, L_C, W_P, 32)
        assert beyond == far_beyond == pytest.approx(24.0)

    def test_eq_5_4_three_streams_matches_figure5(self, t):
        # Figure 5: t_RR + t_RAC + t_RR = 36 for the three-stream loop.
        assert eq.eq_5_4_t_pipe_closed(t, L_C, W_P, 3) == 36

    def test_eq_5_4_longer_lines_bound_by_data(self, t):
        # 64-byte lines: 4 packets = 16 cycles > t_RR per stream.
        assert eq.eq_5_4_t_pipe_closed(t, 8, W_P, 3) == 20 + 16 * 2

    def test_eq_5_5_t_last(self, t):
        # t_RR*(s-2) + t_RAC + T_LCC = 8 + 20 + 24 for s = 3.
        assert eq.eq_5_5_t_last_closed(t, L_C, W_P, 3) == 52

    def test_eq_5_6_total_cycles(self, t):
        # (Ls/Lc - 1) * T_pipe + T_last for Ls = 8, s = 3.
        assert eq.eq_5_6_cycles_closed(t, L_C, W_P, 3, 8) == 36 + 52


class TestOpenPage:
    def test_eq_5_7_t_lco(self, t):
        # t_CAC + t_PACK * (L_c/w_p - 1) = 8 + 4 = 12.
        assert eq.eq_5_7_t_lco(t, L_C, W_P) == 12

    def test_eq_5_8_unit_stride(self, t):
        # (t_RP + T_LCC + 31*T_LCO) / 128 = (10+24+372)/128.
        assert eq.eq_5_8_single_stream_open(t, L_C, L_P, W_P, 1) == pytest.approx(
            406 / 128
        )

    def test_eq_5_8_without_t_rp(self, t):
        assert eq.eq_5_8_single_stream_open(
            t, L_C, L_P, W_P, 1, include_t_rp=False
        ) == pytest.approx(396 / 128)

    def test_eq_5_8_strided_touches_fewer_lines(self, t):
        # Stride 8: 16 lines per page, 16 useful words.
        expected = (10 + 24 + 12 * 15) / 16
        assert eq.eq_5_8_single_stream_open(t, L_C, L_P, W_P, 8) == pytest.approx(
            expected
        )

    def test_eq_5_9_degenerate_saturation(self, t):
        # As printed, T_pipe equals the raw data time for any s — the
        # documented degeneracy.
        for s in (2, 3, 4, 8):
            assert eq.eq_5_9_t_pipe_open(t, L_C, W_P, s) == 8 * s

    def test_eq_5_10_t_init(self, t):
        # 2*t_RP + t_RAC + T_LCC + (t_RP + t_RR)*(s-2), s = 4.
        assert eq.eq_5_10_t_init_open(t, L_C, W_P, 4) == 20 + 20 + 24 + 36

    def test_eq_5_11_total_cycles(self, t):
        expected = eq.eq_5_10_t_init_open(t, L_C, W_P, 2) + 1 * 16
        assert eq.eq_5_11_cycles_open(t, L_C, W_P, 2, 8) == expected


class TestSmcBounds:
    def test_eq_5_15_no_delay_is_peak(self, t):
        assert eq.eq_5_15_percent_peak(t, 1024, 2, W_P, 0.0) == 100.0

    def test_eq_5_15_copy_short_vector(self, t):
        # copy, 128 elements: base = 128*2*2 = 512 cycles; with the
        # t_RAC startup the limit is about 96% ("about 95% of peak").
        limit = eq.eq_5_15_percent_peak(t, 128, 2, W_P, t.t_rac)
        assert limit == pytest.approx(100 * 512 / 532)

    def test_eq_5_16_copy_reduces_to_t_rac(self, t):
        assert eq.eq_5_16_startup_delay_cli(t, 1, 128, W_P) == t.t_rac

    def test_eq_5_16_scales_with_depth_and_readers(self, t):
        assert eq.eq_5_16_startup_delay_cli(t, 3, 64, W_P) == 2 * 64 * 2 + 20

    def test_eq_5_17_adds_precharge(self, t):
        cli = eq.eq_5_16_startup_delay_cli(t, 2, 32, W_P)
        pi = eq.eq_5_17_startup_delay_pi(t, 2, 32, W_P)
        assert pi - cli == t.t_rp

    def test_eq_5_18_turnaround(self, t):
        # t_RW * Ls * (s-1) / (f*s) for daxpy at f = 32.
        assert eq.eq_5_18_turnaround_delay(t, 1024, 3, 32) == pytest.approx(
            6 * 1024 * 2 / (32 * 3)
        )

    def test_eq_5_18_single_stream_has_no_turnaround(self, t):
        assert eq.eq_5_18_turnaround_delay(t, 1024, 1, 32) == 0.0

    def test_eq_5_18_decreases_with_depth(self, t):
        shallow = eq.eq_5_18_turnaround_delay(t, 1024, 3, 8)
        deep = eq.eq_5_18_turnaround_delay(t, 1024, 3, 128)
        assert deep < shallow

    def test_eq_5_1_inverts_peak_time(self, t):
        # Two cycles per word is exactly peak.
        assert eq.eq_5_1_percent_peak(2.0, W_P, t.t_pack) == 100.0
        with pytest.raises(ValueError):
            eq.eq_5_1_percent_peak(0.0, W_P, t.t_pack)
