"""Tests for CLI and PI address decomposition."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.memsys.address import AddressMap, Location
from repro.memsys.config import MemorySystemConfig


@pytest.fixture
def cli_map(cli_config):
    return AddressMap(cli_config)


@pytest.fixture
def pi_map(pi_config):
    return AddressMap(pi_config)


class TestCliMap:
    def test_consecutive_cachelines_hit_consecutive_banks(self, cli_map, cli_config):
        line = cli_config.cacheline_bytes
        banks = [cli_map.decompose(i * line).bank for i in range(16)]
        assert banks == [0, 1, 2, 3, 4, 5, 6, 7, 0, 1, 2, 3, 4, 5, 6, 7]

    def test_within_line_same_location_row(self, cli_map):
        first = cli_map.decompose(0)
        second = cli_map.decompose(16)
        assert (first.bank, first.row) == (second.bank, second.row)
        assert second.column == first.column + 1

    def test_bank_stride_of_eight_lines_shares_bank(self, cli_map, cli_config):
        line = cli_config.cacheline_bytes
        a = cli_map.decompose(0)
        b = cli_map.decompose(8 * line)
        assert a.bank == b.bank
        assert b.column == a.column + cli_config.packets_per_cacheline

    def test_row_advances_after_page_worth_of_lines(self, cli_map, cli_config):
        line = cli_config.cacheline_bytes
        lines_per_page = cli_config.cachelines_per_page
        banks = cli_config.geometry.num_banks
        a = cli_map.decompose(0)
        b = cli_map.decompose(lines_per_page * banks * line)
        assert b.bank == a.bank
        assert b.row == a.row + 1


class TestPiMap:
    def test_consecutive_pages_hit_consecutive_banks(self, pi_map, pi_config):
        page = pi_config.geometry.page_bytes
        banks = [pi_map.decompose(i * page).bank for i in range(10)]
        assert banks == [0, 1, 2, 3, 4, 5, 6, 7, 0, 1]

    def test_within_page_same_bank_row(self, pi_map, pi_config):
        locations = {
            (pi_map.decompose(addr).bank, pi_map.decompose(addr).row)
            for addr in range(0, pi_config.geometry.page_bytes, 16)
        }
        assert len(locations) == 1

    def test_column_counts_packets(self, pi_map):
        assert pi_map.decompose(0).column == 0
        assert pi_map.decompose(16).column == 1
        assert pi_map.decompose(1008).column == 63

    def test_row_advances_after_full_rotation(self, pi_map, pi_config):
        rotation = pi_config.geometry.num_banks * pi_config.geometry.page_bytes
        a = pi_map.decompose(0)
        b = pi_map.decompose(rotation)
        assert (b.bank, b.row) == (a.bank, a.row + 1)


class TestErrors:
    def test_address_out_of_range(self, cli_map):
        with pytest.raises(ConfigurationError, match="outside"):
            cli_map.decompose(cli_map.capacity_bytes)
        with pytest.raises(ConfigurationError):
            cli_map.decompose(-1)

    def test_compose_rejects_bad_coordinates(self, cli_map):
        with pytest.raises(ConfigurationError):
            cli_map.compose(Location(bank=8, row=0, column=0))
        with pytest.raises(ConfigurationError):
            cli_map.compose(Location(bank=0, row=1024, column=0))
        with pytest.raises(ConfigurationError):
            cli_map.compose(Location(bank=0, row=0, column=64))
        with pytest.raises(ConfigurationError):
            cli_map.compose(Location(bank=0, row=0, column=0), byte_offset=16)


addresses = st.integers(min_value=0, max_value=8 * 1024 * 1024 - 1)


class TestRoundTrip:
    @given(address=addresses)
    @settings(max_examples=200)
    def test_cli_round_trip(self, address):
        mapping = AddressMap(MemorySystemConfig.cli())
        packet_base = address - address % 16
        location = mapping.decompose(address)
        assert mapping.compose(location, address % 16) == address
        assert mapping.compose(location) == packet_base

    @given(address=addresses)
    @settings(max_examples=200)
    def test_pi_round_trip(self, address):
        mapping = AddressMap(MemorySystemConfig.pi())
        location = mapping.decompose(address)
        assert mapping.compose(location, address % 16) == address

    @given(address=addresses)
    @settings(max_examples=100)
    def test_maps_disagree_only_on_arrangement(self, address):
        # Both maps must place every address somewhere valid; they are
        # permutations of the same location space.
        cli_loc = AddressMap(MemorySystemConfig.cli()).decompose(address)
        pi_loc = AddressMap(MemorySystemConfig.pi()).decompose(address)
        for loc in (cli_loc, pi_loc):
            assert 0 <= loc.bank < 8
            assert 0 <= loc.row < 1024
            assert 0 <= loc.column < 64
