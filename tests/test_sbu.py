"""Tests for the Stream Buffer Unit."""

from __future__ import annotations

import pytest

from repro.errors import StreamError
from repro.core.sbu import StreamBufferUnit
from repro.cpu.kernels import DAXPY
from repro.cpu.streams import Direction, StreamDescriptor, place_streams


@pytest.fixture
def sbu(cli_config):
    descriptors = place_streams(DAXPY.streams, cli_config, length=32)
    return StreamBufferUnit.from_descriptors(descriptors, cli_config, fifo_depth=8)


class TestConstruction:
    def test_one_fifo_per_stream(self, sbu):
        assert len(sbu) == 3
        names = [fifo.descriptor.name for fifo in sbu]
        assert names == ["x", "y.rd", "y.wr"]

    def test_empty_sbu_rejected(self):
        with pytest.raises(StreamError, match="at least one"):
            StreamBufferUnit([])

    def test_duplicate_names_rejected(self, cli_config):
        descriptor = StreamDescriptor(
            "x", base=0, stride=1, length=8, direction=Direction.READ
        )
        fifos = StreamBufferUnit.from_descriptors(
            [descriptor], cli_config, fifo_depth=8
        ).fifos
        with pytest.raises(StreamError, match="duplicate"):
            StreamBufferUnit(fifos + fifos)

    def test_indexing_and_iteration(self, sbu):
        assert sbu[0] is list(sbu)[0]


class TestStreamPort:
    def test_pop_path(self, sbu):
        assert not sbu.cpu_can_pop(0)
        sbu[0].note_issue()
        sbu[0].note_arrival(2)
        assert sbu.cpu_can_pop(0)
        sbu.cpu_pop(0)
        assert sbu[0].occupancy == 1

    def test_push_path(self, sbu):
        assert sbu.cpu_can_push(2)
        sbu.cpu_push(2)
        assert sbu[2].occupancy == 1

    def test_all_drained(self, cli_config):
        descriptors = place_streams(DAXPY.streams, cli_config, length=4)
        sbu = StreamBufferUnit.from_descriptors(descriptors, cli_config, fifo_depth=8)
        assert not sbu.all_drained
        for fifo in sbu:
            if fifo.is_read:
                while not fifo.exhausted:
                    fifo.note_issue()
                fifo.note_arrival(4)
                for __ in range(4):
                    fifo.cpu_pop()
            else:
                for __ in range(4):
                    fifo.cpu_push()
                while not fifo.exhausted:
                    fifo.note_issue()
        assert sbu.all_drained
