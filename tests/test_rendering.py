"""Tests for table and chart rendering."""

from __future__ import annotations


from repro.experiments.rendering import ExperimentTable, render_chart


def sample_table():
    table = ExperimentTable("Sweep", ("x", "low", "high"))
    table.add_row(1, 0.0, 100.0)
    table.add_row(2, 25.0, 75.0)
    table.add_row(3, 50.0, 50.0)
    return table


class TestRenderChart:
    def test_axis_labels_and_legend(self):
        text = render_chart(sample_table())
        assert "(chart)" in text
        assert " 100.0 |" in text
        assert "* = low" in text
        assert "o = high" in text
        assert "x: 1..3" in text

    def test_extremes_land_on_border_rows(self):
        text = render_chart(sample_table(), height=10)
        lines = text.splitlines()
        top = next(line for line in lines if line.startswith(" 100.0"))
        bottom = next(line for line in lines if line.startswith("   0.0"))
        assert "o" in top     # high series at x=1 is 100
        assert "*" in bottom  # low series at x=1 is 0

    def test_overlap_marker(self):
        text = render_chart(sample_table(), height=10)
        # At x=3 both series are 50: rendered as the overlap glyph.
        mid = next(
            line for line in text.splitlines() if line.startswith("  50.0")
        )
        assert "=" in mid

    def test_values_clamped_to_range(self):
        table = ExperimentTable("T", ("x", "y"))
        table.add_row(1, 250.0)
        table.add_row(2, -10.0)
        text = render_chart(table, height=4)
        assert text  # no exception; both rows clamp into range

    def test_none_cells_skipped(self):
        table = ExperimentTable("T", ("x", "y"))
        table.add_row(1, None)
        table.add_row(2, 40.0)
        assert "*" in render_chart(table)

    def test_empty_table(self):
        assert "(no data)" in render_chart(ExperimentTable("T", ("x", "y")))


class TestCliCharts:
    def test_charts_flag(self, capsys):
        from repro.experiments.cli import main

        main(["figure8", "--charts"])
        out = capsys.readouterr().out
        assert "(chart)" in out

    def test_non_chartable_experiments_skip_charts(self, capsys):
        from repro.experiments.cli import main

        main(["figure1", "--charts"])
        out = capsys.readouterr().out
        assert "(chart)" not in out
