"""CLI coverage for the policy-layer flags on both console scripts."""

from __future__ import annotations

import json

import pytest

from repro.experiments import policy_matrix
from repro.experiments.cli import main as experiments_main
from repro.search.cli import main as search_main
from repro.sim.cli import main as simulate_main


class TestSimulateCli:
    def test_list_policies(self, capsys):
        # One unified listing across every registry: mappings (incl.
        # the stateful dream map), page policies, MSU policies,
        # traffic schedulers, and simulation engines.
        assert simulate_main(["--list-policies"]) == 0
        out = capsys.readouterr().out
        for name in ("cli", "pi", "swizzle", "dream", "closed", "open",
                     "timeout", "hybrid", "round-robin",
                     "fcfs", "frfcfs", "mars", "event", "batch", "auto"):
            assert name in out
        for section in ("address mappings", "page policies",
                        "traffic schedulers", "simulation engines"):
            assert section in out

    def test_kernel_required_without_list(self, capsys):
        assert simulate_main([]) == 1
        assert "kernel" in capsys.readouterr().err

    def test_unknown_page_policy_lists_names(self, capsys):
        assert simulate_main(["daxpy", "--page-policy", "zorp"]) == 1
        err = capsys.readouterr().err
        assert "zorp" in err and "timeout" in err

    def test_override_flags_change_the_run(self, capsys):
        assert simulate_main(
            ["daxpy", "--org", "cli", "--length", "64",
             "--fifo-depth", "16", "--page-policy", "open"]
        ) == 0
        out = capsys.readouterr().out
        assert "CLI / open-page" in out

    def test_stats_reports_the_access_mix(self, capsys):
        assert simulate_main(
            ["daxpy", "--org", "pi", "--length", "64",
             "--fifo-depth", "16", "--stats"]
        ) == 0
        out = capsys.readouterr().out
        assert "row buffer" in out
        assert "access mix" in out
        assert "page hits" in out

    def test_json_reports_the_access_mix(self, capsys):
        assert simulate_main(
            ["copy", "--org", "pi", "--length", "64",
             "--fifo-depth", "16", "--json",
             "--interleaving", "swizzle"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        mix = report["access_mix"]
        assert mix["page_hits"] + mix["page_misses"] > 0
        assert 0.0 <= mix["page_hit_rate"] <= 1.0
        assert report["result"]["page_hits"] == mix["page_hits"]


@pytest.fixture
def reset_matrix_filters():
    yield
    policy_matrix.configure(None, None)


class TestExperimentsCli:
    def test_list_policies(self, capsys):
        assert experiments_main(["--list-policies"]) == 0
        out = capsys.readouterr().out
        assert "swizzle" in out
        assert "traffic schedulers" in out
        assert "simulation engines" in out

    def test_policy_matrix_filters(self, capsys, reset_matrix_filters):
        assert experiments_main(
            ["policy_matrix", "--interleaving", "swizzle",
             "--page-policy", "timeout"]
        ) == 0
        out = capsys.readouterr().out
        assert "swizzle" in out
        assert "timeout" in out
        assert "ran 2 tables" in out

    def test_unknown_filter_name_fails_with_the_registry(
        self, capsys, reset_matrix_filters
    ):
        with pytest.raises(SystemExit, match="swizzle"):
            experiments_main(["policy_matrix", "--interleaving", "zorp"])


class TestSearchCli:
    SMALL = ["--generations", "1", "--population", "2",
             "--elites", "1", "--length", "64"]

    def test_summary_output(self, capsys):
        assert search_main(self.SMALL) == 0
        out = capsys.readouterr().out
        assert "gen 0: best" in out
        assert "winner:" in out

    def test_json_output(self, capsys, tmp_path):
        assert search_main(
            self.SMALL + ["--json", "--cache", str(tmp_path / "cache")]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["winner"]["genome"]
        assert len(report["generations"]) == 1

    def test_bad_config_is_a_clean_error(self, capsys):
        assert search_main(["--generations", "0"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:") and "generation" in err
