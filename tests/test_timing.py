"""Tests for RDRAM and classic-DRAM timing parameters (Figures 1-2)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.rdram.timing import (
    BYTES_PER_CYCLE_PEAK,
    DATA_PACKET_BYTES,
    DRAM_FAMILIES,
    INTERFACE_CLOCK_MHZ,
    PEAK_BANDWIDTH_BYTES_PER_SEC,
    ClassicDramTiming,
    RdramTiming,
    figure2_rows,
)


class TestRdramTiming:
    def test_default_values_match_figure2(self):
        t = RdramTiming()
        assert t.t_pack == 4
        assert t.t_rcd == 11
        assert t.t_rp == 10
        assert t.t_cpol == 1
        assert t.t_cac == 8
        assert t.t_rac == 20
        assert t.t_rc == 34
        assert t.t_rr == 8
        assert t.t_rdly == 2
        assert t.t_rw == 6

    def test_rac_decomposition_enforced(self):
        with pytest.raises(ConfigurationError, match="t_rac"):
            dataclasses.replace(RdramTiming(), t_rac=21)

    def test_rw_decomposition_enforced(self):
        with pytest.raises(ConfigurationError, match="t_rw"):
            dataclasses.replace(RdramTiming(), t_rw=7)

    def test_precharge_overlap_inequality_enforced(self):
        # t_ras + t_rp must stay below 2*t_rr + t_rac (Section 5).
        with pytest.raises(ConfigurationError, match="t_ras"):
            dataclasses.replace(RdramTiming(), t_ras=30)

    def test_positive_fields_enforced(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(RdramTiming(), t_rr=0)

    def test_cycles_to_ns(self):
        assert RdramTiming().cycles_to_ns(4) == pytest.approx(10.0)

    def test_read_data_delay_includes_roundtrip(self):
        t = RdramTiming()
        assert t.read_data_delay() == t.t_cac + t.t_rdly == 10

    def test_write_data_delay_excludes_roundtrip(self):
        t = RdramTiming()
        assert t.write_data_delay() == t.t_cac == 8

    def test_scaled_part_accepted(self):
        # A faster hypothetical part with consistent derived values.
        t = RdramTiming(
            t_cycle_ns=2.0,
            t_rcd=10,
            t_cac=7,
            t_rac=18,
            t_rw=6,
            t_rdly=2,
            t_pack=4,
        )
        assert t.t_rac == 18

    def test_peak_bandwidth_constants(self):
        assert PEAK_BANDWIDTH_BYTES_PER_SEC == 1_600_000_000
        assert BYTES_PER_CYCLE_PEAK == 4
        assert DATA_PACKET_BYTES == 16
        assert INTERFACE_CLOCK_MHZ == 400
        # 4 bytes/cycle at 400 MHz is the 1.6 GB/s headline.
        assert BYTES_PER_CYCLE_PEAK * INTERFACE_CLOCK_MHZ * 1e6 == (
            PEAK_BANDWIDTH_BYTES_PER_SEC
        )


class TestFigure2Rows:
    def test_row_count_and_names(self):
        rows = figure2_rows()
        names = [row[0] for row in rows]
        assert names == [
            "t_CYCLE", "t_PACK", "t_RCD", "t_RP", "t_CPOL", "t_CAC",
            "t_RAC", "t_RC", "t_RR", "t_RDLY", "t_RW",
        ]

    def test_nanosecond_column(self):
        rows = {row[0]: row for row in figure2_rows()}
        assert rows["t_RAC"][3] == pytest.approx(50.0)
        assert rows["t_RC"][3] == pytest.approx(85.0)
        assert rows["t_PACK"][3] == pytest.approx(10.0)
        assert rows["t_CYCLE"][3] == pytest.approx(2.5)


class TestClassicDramFamilies:
    def test_figure1_families_present(self):
        assert set(DRAM_FAMILIES) == {
            "fast-page-mode", "edo", "burst-edo", "sdram", "direct-rdram"
        }

    def test_figure1_values(self):
        fpm = DRAM_FAMILIES["fast-page-mode"]
        assert (fpm.t_rac_ns, fpm.t_cac_ns, fpm.t_rc_ns, fpm.t_pc_ns) == (
            50, 13, 95, 30
        )
        sdram = DRAM_FAMILIES["sdram"]
        assert sdram.max_freq_mhz == 100
        assert sdram.t_pc_ns == 10

    def test_rdram_peak_bandwidth_recovered(self):
        rdram = DRAM_FAMILIES["direct-rdram"]
        assert rdram.peak_bandwidth_bytes_per_sec == pytest.approx(1.6e9)

    def test_page_mode_speedup_ordering(self):
        # Each successive generation cycles pages faster.
        order = ["fast-page-mode", "edo", "burst-edo", "sdram"]
        cycles = [DRAM_FAMILIES[k].t_pc_ns for k in order]
        assert cycles == sorted(cycles, reverse=True)

    def test_latencies(self):
        edo = DRAM_FAMILIES["edo"]
        assert edo.page_hit_latency_ns() == 13
        assert edo.page_miss_latency_ns() == 50

    def test_custom_family(self):
        fam = ClassicDramTiming(
            name="test", t_rac_ns=40, t_cac_ns=10, t_rc_ns=80,
            t_pc_ns=20, max_freq_mhz=50,
        )
        assert fam.peak_bandwidth_bytes_per_sec == pytest.approx(4e8)
